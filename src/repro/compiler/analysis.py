"""Static analysis of operator specifications (§3.1-§3.3).

Given an :class:`~repro.compiler.spec.OperatorSpec`, the analysis derives
what the paper's compiler derives from application source:

* the data-flow direction (all spec-expressible operators flow
  source -> destination, the case §3.2 analyzes);
* which synchronization patterns (reduce and/or broadcast) each
  partitioning strategy needs for this operator; and
* which strategies are *legal* for it (§3.1's operator/strategy matrix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.compiler.spec import OperatorSpec, ProgramSpec, derive_endpoints
from repro.errors import StrategyError
from repro.partition.strategy import (
    PartitionStrategy,
    check_strategy_legal,
)


@dataclass(frozen=True)
class SyncRequirements:
    """What one (operator, strategy) pair needs per synchronization."""

    strategy: PartitionStrategy
    needs_reduce: bool
    needs_broadcast: bool
    legal: bool


#: §3.2's per-strategy pattern table for source->destination data flow.
_PATTERNS: Dict[PartitionStrategy, Tuple[bool, bool]] = {
    PartitionStrategy.UVC: (True, True),  # gather-apply-scatter
    PartitionStrategy.CVC: (True, True),  # both, on restricted subsets
    PartitionStrategy.IEC: (False, True),  # halo exchange
    PartitionStrategy.OEC: (True, False),  # reduce + local reset
}


def required_patterns(
    strategy: PartitionStrategy,
) -> Tuple[bool, bool]:
    """(needs_reduce, needs_broadcast) for src->dst flow under ``strategy``."""
    return _PATTERNS[strategy]


def analyze_operator(spec: OperatorSpec) -> Dict[PartitionStrategy, SyncRequirements]:
    """Derive sync requirements and legality for every strategy.

    The reduction test: every spec field reduces through a named
    :class:`ReductionOp`, so ``is_reduction`` is always true here — the
    spec language cannot express non-reduction updates (they would need
    OEC/IEC anyway, which the legality check reflects).
    """
    results = {}
    for strategy in PartitionStrategy:
        needs_reduce, needs_broadcast = required_patterns(strategy)
        try:
            check_strategy_legal(
                strategy,
                spec.style,
                is_reduction=True,
                single_value_push=spec.single_value_push,
            )
            legal = True
        except StrategyError:
            legal = False
        results[strategy] = SyncRequirements(
            strategy=strategy,
            needs_reduce=needs_reduce,
            needs_broadcast=needs_broadcast,
            legal=legal,
        )
    return results


def check_spec_legal_for(
    spec: OperatorSpec, strategy: PartitionStrategy
) -> None:
    """Raise :class:`StrategyError` if ``strategy`` cannot run ``spec``."""
    check_strategy_legal(
        strategy,
        spec.style,
        is_reduction=True,
        single_value_push=spec.single_value_push,
    )


def data_flow_description(spec: OperatorSpec) -> str:
    """Human-readable summary of the inferred synchronization plan."""
    lines = [f"operator {spec.name}: {spec.style.value}-style, "
             f"field {spec.field.name!r} ({spec.field.reduce}-reduction)"]
    lines.extend(_strategy_lines(spec.style, spec.single_value_push))
    return "\n".join(lines)


def _strategy_lines(style, single_value_push: bool):
    """The per-strategy plan table shared by both describe flavors."""
    lines = []
    for strategy in PartitionStrategy:
        needs_reduce, needs_broadcast = required_patterns(strategy)
        patterns = []
        if needs_reduce:
            patterns.append("reduce")
        if needs_broadcast:
            patterns.append("broadcast")
        try:
            check_strategy_legal(
                strategy,
                style,
                is_reduction=True,
                single_value_push=single_value_push,
            )
            legality = ""
        except StrategyError:
            legality = "  [ILLEGAL for this operator]"
        lines.append(
            f"  {strategy.value:>4}: {' + '.join(patterns)}{legality}"
        )
    return lines


def describe_program(spec: ProgramSpec) -> str:
    """Human-readable summary of a multi-phase program spec.

    Shows the phase pipeline, the *derived* sync endpoints per wire (the
    part the paper's compiler extracts from application source), and the
    per-strategy synchronization plan.
    """
    lines = [
        f"program {spec.name}: {spec.operator_class.value}-style, "
        f"{len(spec.phases)} phase(s), {len(spec.fields)} field(s)"
    ]
    for phase in spec.phases:
        detail = []
        if phase.guard:
            detail.append(f"guard: {phase.guard}")
        if phase.pull_targets:
            detail.append(f"targets: {phase.pull_targets}")
        if phase.uses_weights:
            detail.append("weighted")
        if phase.orientation != "forward":
            detail.append(phase.orientation)
        suffix = f"  ({'; '.join(detail)})" if detail else ""
        lines.append(
            f"  phase {phase.name} [{phase.kind}] -> {phase.target}{suffix}"
        )
    endpoints = derive_endpoints(spec)
    for decl in spec.sync:
        writes, reads = endpoints[decl.wire_name]
        reduce = spec.field_decl(decl.field).reduce
        pair = (
            f", broadcast {decl.broadcast!r}"
            if decl.broadcast is not None
            else ""
        )
        lines.append(
            f"  sync {decl.wire_name}: {reduce}-reduction of "
            f"{decl.field!r}{pair} — derived writes="
            f"{sorted(writes)} reads={sorted(reads)}"
        )
    lines.extend(_strategy_lines(spec.operator_class, True))
    return "\n".join(lines)
