"""ProgramSpec -> generated Python source -> runnable VertexProgram.

This is the paper's preprocessor made literal: :func:`compile_program`
renders a :class:`~repro.compiler.spec.ProgramSpec` into *real Python
source* — a ``VertexProgram`` subclass whose ``make_state``,
``make_fields``, and phase-major ``step`` are emitted from the three
kernel templates (frontier push / sparse pull / dense pull), with the
sync endpoints in every generated ``FieldSpec`` coming from
:func:`~repro.compiler.spec.derive_endpoints`, never from the spec.

The source is executed into a registered module whose text is seeded
into :mod:`linecache`, so the generated class is a first-class citizen:
tracebacks show generated lines, ``inspect.getsource`` works, and —
the point of the exercise — the GL001–GL011 AST lint rules of
:mod:`repro.analysis.astlint` run over the generated code exactly as
they do over handwritten apps (``repro lint --compiled``).  The
templates deliberately emit the same idioms the linter infers endpoint
provenance from: ``x = state["key"]`` aliasing, tuple-unpacked
``gather_frontier_edges`` calls, ``src, dst = part.graph.edges()``
pre-gathers, and ``np.<op>.at`` scatter-combines.
"""

from __future__ import annotations

import itertools
import linecache
import re
import sys
import types
from typing import Dict, List, Optional, Tuple

from repro.compiler.spec import (
    _DST_REF,
    _SRC_REF,
    CompileError,
    PhaseSpec,
    ProgramSpec,
    derive_endpoints,
)
from repro.core.sync_structures import REDUCTIONS
from repro.errors import StrategyError
from repro.partition.strategy import (
    OperatorClass,
    PartitionStrategy,
    check_strategy_legal,
)

#: Scatter-combine source text per reduction (mirrors codegen._SCATTER).
_SCATTER_SRC: Dict[str, str] = {
    "min": "np.minimum.at",
    "max": "np.maximum.at",
    "add": "np.add.at",
    "bor": "np.bitwise_or.at",
}

#: Generated-module global name per reduction.
_REDUCE_NAME: Dict[str, str] = {
    "min": "MIN",
    "max": "MAX",
    "add": "ADD",
    "bor": "BOR",
    "assign": "ASSIGN",
}

_COMPILE_COUNTER = itertools.count()


def _ident(name: str) -> str:
    """A safe Python identifier fragment for ``name``."""
    return "".join(ch if ch.isalnum() else "_" for ch in name)


def _class_name(spec: ProgramSpec) -> str:
    parts = [p for p in _ident(spec.name).split("_") if p]
    return "Compiled" + "".join(p.capitalize() for p in parts)


def _frozenset_literal(values) -> str:
    inner = ", ".join(repr(v) for v in sorted(values))
    return "frozenset({%s})" % inner


def _render_fragment(
    text: str,
    *,
    src: Optional[str] = None,
    dst: Optional[str] = None,
    local: str = "{f}",
    weights: str = "weights",
    mask: str = "usable",
) -> str:
    """Substitute the placeholder grammar into concrete source text."""
    if src is not None:
        text = _SRC_REF.sub(lambda m: src.format(f=m.group(1)), text)
    if dst is not None:
        text = _DST_REF.sub(lambda m: dst.format(f=m.group(1)), text)
    text = text.replace("{w}", weights).replace("{mask}", mask)
    # Whole-array references last, so {src.f}/{dst.f} are long gone.
    return re.sub(
        r"\{([A-Za-z_]\w*)\}", lambda m: local.format(f=m.group(1)), text
    )


class _Emitter:
    def __init__(self) -> None:
        self.lines: List[str] = []

    def emit(self, indent: int, text: str = "") -> None:
        if text:
            self.lines.append("    " * indent + text)
        else:
            self.lines.append("")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _target_reduce(spec: ProgramSpec, phase: PhaseSpec) -> str:
    """The reduction combining scatters into ``phase.target``."""
    reduce = spec.field_decl(phase.target).reduce
    if reduce is None:
        raise CompileError(
            f"{spec.name}/{phase.name}: scatter target {phase.target!r} "
            "declares no reduction"
        )
    if reduce not in _SCATTER_SRC:
        raise CompileError(
            f"{spec.name}: reduction {reduce!r} has no deterministic "
            f"scatter-combine; compiled programs support "
            f"{sorted(_SCATTER_SRC)}"
        )
    return reduce


def _phase_aliases(spec: ProgramSpec, phase: PhaseSpec) -> List[str]:
    """State keys the phase method aliases, in declaration order."""
    wanted = phase.referenced_fields()
    ordered = [f.name for f in spec.fields if f.name in wanted]
    ordered += [key for key, _ in spec.scalars if key in wanted]
    return ordered


def _emit_aliases(out: _Emitter, names: List[str]) -> None:
    for name in names:
        out.emit(2, f'{name} = state["{name}"]')


def _emit_scatter(
    out: _Emitter,
    spec: ProgramSpec,
    phase: PhaseSpec,
    indent: int,
    index_var: str,
    candidate: str,
    accumulate: bool = False,
) -> None:
    """The reduction-specific scatter + updated-mask idiom.

    ``accumulate`` ORs into an existing ``updated`` mask instead of
    rebinding it — the form a GL302-fused method needs, where several
    phases share one mask exactly as the unfused driver ORs their
    separate outcome masks.
    """
    reduce = _target_reduce(spec, phase)
    target = phase.target
    scatter = _SCATTER_SRC[reduce]
    if REDUCTIONS[reduce].idempotent:
        out.emit(indent, f"before = {target}.copy()")
        out.emit(indent, f"{scatter}({target}, {index_var}, {candidate})")
        op = "|=" if accumulate else "="
        out.emit(indent, f"updated {op} {target} != before")
    else:
        out.emit(indent, f"{scatter}({target}, {index_var}, {candidate})")
        out.emit(indent, f"updated[{index_var}] = True")


def _emit_frontier_push(
    out: _Emitter, spec: ProgramSpec, phase: PhaseSpec, method: str
) -> None:
    out.emit(1, f"def {method}(self, part, state, frontier):")
    _emit_aliases(out, _phase_aliases(spec, phase))
    if phase.guard:
        guard = _render_fragment(phase.guard, local="{f}")
        out.emit(2, f"usable = frontier & ({guard})")
    else:
        out.emit(2, "usable = frontier")
    out.emit(
        2,
        "src_rep, dst, positions = gather_frontier_edges("
        "part.graph, usable)",
    )
    for line in phase.post_gather:
        out.emit(2, _render_fragment(line, local="{f}", mask="usable"))
    out.emit(2, "updated = np.zeros(part.num_nodes, dtype=bool)")
    out.emit(2, "work = WorkStats(")
    out.emit(
        2, "    edges_processed=len(dst), nodes_processed=int(usable.sum())"
    )
    out.emit(2, ")")
    out.emit(2, "if len(dst):")
    if phase.uses_weights:
        out.emit(3, "if part.graph.weights is None:")
        out.emit(4, "weights = np.ones(len(positions), dtype=np.int64)")
        out.emit(3, "else:")
        out.emit(
            4, "weights = part.graph.weights[positions].astype(np.int64)"
        )
    kernel = _render_fragment(
        phase.kernel, src="{f}[src_rep]", dst="{f}[dst]", local="{f}"
    )
    out.emit(3, f"candidate = {kernel}")
    _emit_scatter(out, spec, phase, 3, "dst", "candidate")
    for line in phase.post_scatter:
        out.emit(2, _render_fragment(line, local="{f}", mask="usable"))
    out.emit(2, "return StepOutcome(updated=updated, work=work)")


def _emit_fused_push(
    out: _Emitter, spec: ProgramSpec, phases: List[PhaseSpec], method: str
) -> None:
    """One gather driving every phase's scatter (a GL302 fusion group).

    :func:`repro.analysis.dataflow.fusible` guarantees the phases
    gather identically (same guard/weights, no post lines) and that no
    later phase reads an earlier phase's target, so replaying the
    scatters against a single ``gather_frontier_edges`` pass is
    bitwise-identical to the unfused phase-major driver — including the
    work counters, which are scaled by the number of fused phases.
    """
    lead = phases[0]
    wanted = set()
    for phase in phases:
        wanted.update(_phase_aliases(spec, phase))
    ordered = [f.name for f in spec.fields if f.name in wanted]
    ordered += [key for key, _ in spec.scalars if key in wanted]
    out.emit(1, f"def {method}(self, part, state, frontier):")
    _emit_aliases(out, ordered)
    if lead.guard:
        guard = _render_fragment(lead.guard, local="{f}")
        out.emit(2, f"usable = frontier & ({guard})")
    else:
        out.emit(2, "usable = frontier")
    out.emit(
        2,
        "src_rep, dst, positions = gather_frontier_edges("
        "part.graph, usable)",
    )
    out.emit(2, "updated = np.zeros(part.num_nodes, dtype=bool)")
    out.emit(2, "work = WorkStats(")
    out.emit(2, f"    edges_processed=len(dst) * {len(phases)},")
    out.emit(
        2, f"    nodes_processed=int(usable.sum()) * {len(phases)},"
    )
    out.emit(2, ")")
    out.emit(2, "if len(dst):")
    if lead.uses_weights:
        out.emit(3, "if part.graph.weights is None:")
        out.emit(4, "weights = np.ones(len(positions), dtype=np.int64)")
        out.emit(3, "else:")
        out.emit(
            4, "weights = part.graph.weights[positions].astype(np.int64)"
        )
    for phase in phases:
        kernel = _render_fragment(
            phase.kernel, src="{f}[src_rep]", dst="{f}[dst]", local="{f}"
        )
        out.emit(3, f"candidate = {kernel}")
        _emit_scatter(out, spec, phase, 3, "dst", "candidate",
                      accumulate=True)
    out.emit(2, "return StepOutcome(updated=updated, work=work)")


def _fusion_groups(
    phases: List[PhaseSpec], fused_pairs: List[Tuple[str, str]]
) -> List[List[PhaseSpec]]:
    """Partition a direction's phases into emission groups.

    Greedy and non-overlapping: a ``(earlier, later)`` pair from
    :func:`repro.analysis.dataflow.fusion_candidates` becomes one
    two-phase group; chains fuse their first pair only (the analyzer
    proved adjacency pairwise, not transitively).
    """
    pairs = set(fused_pairs)
    groups: List[List[PhaseSpec]] = []
    i = 0
    while i < len(phases):
        if (
            i + 1 < len(phases)
            and (phases[i].name, phases[i + 1].name) in pairs
        ):
            groups.append([phases[i], phases[i + 1]])
            i += 2
        else:
            groups.append([phases[i]])
            i += 1
    return groups


def _emit_sparse_pull(
    out: _Emitter, spec: ProgramSpec, phase: PhaseSpec, method: str
) -> None:
    if phase.post_gather or phase.post_scatter:
        raise CompileError(
            f"{spec.name}/{phase.name}: post lines are only supported in "
            "frontier_push phases"
        )
    out.emit(1, f"def {method}(self, part, state, frontier):")
    _emit_aliases(out, _phase_aliases(spec, phase))
    if phase.pull_targets:
        targets = _render_fragment(phase.pull_targets, local="{f}")
        out.emit(2, f"targets = {targets}")
    else:
        out.emit(2, "targets = np.ones(part.num_nodes, dtype=bool)")
    out.emit(2, "transpose = part.graph.transpose()")
    out.emit(
        2,
        "node_rep, neighbor, positions = gather_frontier_edges("
        "transpose, targets)",
    )
    out.emit(2, "updated = np.zeros(part.num_nodes, dtype=bool)")
    out.emit(2, "work = WorkStats(")
    out.emit(
        2,
        "    edges_processed=len(neighbor), "
        "nodes_processed=int(targets.sum())",
    )
    out.emit(2, ")")
    out.emit(2, "if len(neighbor):")
    if phase.guard:
        guard = _render_fragment(phase.guard, local="{f}[neighbor]")
        out.emit(3, f"active = frontier[neighbor] & ({guard})")
    else:
        out.emit(3, "active = frontier[neighbor]")
    out.emit(3, "if np.any(active):")
    out.emit(4, "node_rep = node_rep[active]")
    kernel = _render_fragment(
        phase.kernel, src="{f}[neighbor[active]]", local="{f}"
    )
    out.emit(4, f"candidate = {kernel}")
    _emit_scatter(out, spec, phase, 4, "node_rep", "candidate")
    out.emit(2, "return StepOutcome(updated=updated, work=work)")


def _emit_dense_pull(
    out: _Emitter, spec: ProgramSpec, phase: PhaseSpec, method: str
) -> None:
    if phase.post_gather or phase.post_scatter:
        raise CompileError(
            f"{spec.name}/{phase.name}: post lines are only supported in "
            "frontier_push phases"
        )
    out.emit(1, f"def {method}(self, part, state, frontier):")
    _emit_aliases(out, _phase_aliases(spec, phase))
    out.emit(2, 'src = state["edge_src"]')
    out.emit(2, 'dst = state["edge_dst"]')
    if phase.source_rows is not None:
        out.emit(
            2,
            f"aggregate_neighbor_rows({phase.target}, "
            f"{phase.source_rows}, src, dst)",
        )
        out.emit(2, "updated = np.zeros(part.num_nodes, dtype=bool)")
        out.emit(2, "updated[dst] = True")
    else:
        reduce = _target_reduce(spec, phase)
        kernel = _render_fragment(phase.kernel, src="{f}[src]", local="{f}")
        if REDUCTIONS[reduce].idempotent:
            out.emit(2, f"before = {phase.target}.copy()")
            out.emit(
                2, f"{_SCATTER_SRC[reduce]}({phase.target}, dst, {kernel})"
            )
            out.emit(2, f"updated = {phase.target} != before")
        else:
            out.emit(
                2, f"{_SCATTER_SRC[reduce]}({phase.target}, dst, {kernel})"
            )
            out.emit(2, "updated = np.zeros(part.num_nodes, dtype=bool)")
            out.emit(2, "updated[dst] = True")
    out.emit(2, "work = WorkStats(")
    out.emit(
        2, "    edges_processed=len(dst), nodes_processed=part.num_nodes"
    )
    out.emit(2, ")")
    out.emit(2, "return StepOutcome(updated=updated, work=work)")


def _emit_make_state(out: _Emitter, spec: ProgramSpec) -> None:
    out.emit(1, "def make_state(self, part, ctx):")
    out.emit(2, "n = part.num_nodes")
    if spec.wide_dim:
        out.emit(2, f"dim = {spec.wide_dim}")
    if spec.needs_global_degrees:
        out.emit(2, "if ctx.global_out_degree is None:")
        out.emit(
            3,
            f'raise ValueError("{spec.name}@compiled requires '
            'ctx.global_out_degree")',
        )
    if spec.needs_global_in_degrees:
        out.emit(2, "if ctx.global_in_degree is None:")
        out.emit(
            3,
            f'raise ValueError("{spec.name}@compiled requires '
            'ctx.global_in_degree")',
        )
    out.emit(2, "state = {}")
    for decl in spec.fields:
        if isinstance(decl.init, str):
            out.emit(2, f'state["{decl.name}"] = {decl.init}')
        else:
            out.emit(
                2,
                f'state["{decl.name}"] = _INIT_{_ident(decl.name)}'
                f"(part, ctx, _DTYPE_{_ident(decl.name)})",
            )
        if decl.source_value is not None:
            out.emit(2, "if part.has_proxy(ctx.source):")
            out.emit(
                3,
                f'state["{decl.name}"][part.to_local(ctx.source)] = '
                f"{decl.source_value}",
            )
        for line in decl.extra_init:
            out.emit(2, line)
    if any(p.kind == "dense_pull" for p in spec.phases):
        out.emit(2, "src, dst = part.graph.edges()")
        out.emit(2, 'state["edge_src"] = src.astype(np.int64)')
        out.emit(2, 'state["edge_dst"] = dst.astype(np.int64)')
    for key, expr in spec.scalars:
        out.emit(2, f'state["{key}"] = {expr}')
    out.emit(2, "return state")


def _emit_dead_sync_table(
    out: _Emitter, dead_table: Dict[str, Dict[str, Tuple[str, ...]]]
) -> None:
    """The module-level GL301 elimination table.

    ``{strategy value: {wire: frozenset(dead sync phases)}}`` — emitted
    only by ``compile_program(optimize=True)``, consumed by the
    generated ``make_fields`` via the partition's stamped strategy.
    """
    out.emit(0, "#: GL301 dead-sync table (repro.analysis.dataflow).")
    out.emit(0, "_DEAD_SYNC = {")
    for strategy in sorted(dead_table):
        per_wire = dead_table[strategy]
        inner = ", ".join(
            f'"{wire}": {_frozenset_literal(per_wire[wire])}'
            for wire in sorted(per_wire)
        )
        out.emit(1, f'"{strategy}": {{{inner}}},')
    out.emit(0, "}")


def _emit_make_fields(
    out: _Emitter,
    spec: ProgramSpec,
    dead_table: Optional[Dict[str, Dict[str, Tuple[str, ...]]]] = None,
) -> None:
    endpoints = derive_endpoints(spec)
    dead_wires = set()
    for per_wire in (dead_table or {}).values():
        dead_wires.update(per_wire)
    out.emit(1, "def make_fields(self, part, state):")
    if dead_wires:
        out.emit(2, '_strategy = getattr(part, "strategy", None)')
        out.emit(2, "_dead = _DEAD_SYNC.get(")
        out.emit(
            3, "_strategy.value if _strategy is not None else None, {}"
        )
        out.emit(2, ")")
    out.emit(2, "fields = []")
    for decl in spec.sync:
        wire = decl.wire_name
        ident = _ident(wire)
        field_decl = spec.field_decl(decl.field)
        reduce_name = _REDUCE_NAME[field_decl.reduce]
        writes, reads = endpoints[wire]
        if decl.hook is not None:
            out.emit(0, "")
            out.emit(2, f"def _after_{ident}(changed_mask):")
            out.emit(3, f"return _HOOK_{ident}(part, state)")
        out.emit(0, "")
        out.emit(2, "fields.append(FieldSpec(")
        out.emit(3, f'name="{wire}",')
        out.emit(3, f'values=state["{decl.field}"],')
        out.emit(3, f"reduce_op={reduce_name},")
        if decl.broadcast is not None:
            out.emit(3, f'broadcast_values=state["{decl.broadcast}"],')
        if decl.hook is not None:
            out.emit(3, f"on_master_after_reduce=_after_{ident},")
        if field_decl.compression is not None:
            out.emit(3, f'compression=state["{field_decl.compression}"],')
        out.emit(3, f"writes={_frozenset_literal(writes)},")
        out.emit(3, f"reads={_frozenset_literal(reads)},")
        if wire in dead_wires:
            out.emit(
                3,
                'sync_phases=frozenset({"broadcast", "reduce"}) '
                f'- _dead.get("{wire}", frozenset()),',
            )
        out.emit(2, "))")
    out.emit(2, "return fields")


def render_program(spec: ProgramSpec, optimize: bool = False) -> str:
    """Render the complete generated module source for ``spec``.

    With ``optimize=True`` the whole-program dataflow analyzer
    (:mod:`repro.analysis.dataflow`) feeds two transforms into the
    emitted source: a ``_DEAD_SYNC`` table that strips GL301-dead sync
    phases from the generated ``FieldSpec``\\ s per partition strategy,
    and GL302 phase fusion that drives adjacent compatible push
    scatters off one edge gather.  A spec pinning
    ``endpoint_overrides`` (GL305) is rendered unoptimized — a
    tampered contract proves nothing.
    """
    dead_table: Dict[str, Dict[str, Tuple[str, ...]]] = {}
    fused_pairs: List[Tuple[str, str]] = []
    if optimize:
        from repro.analysis.dataflow import (
            dead_sync_table,
            fusion_candidates,
            graph_from_spec,
        )

        graph = graph_from_spec(spec)
        dead_table = dead_sync_table(graph)
        fused_pairs = [
            (a.name, b.name) for a, b in fusion_candidates(graph)
        ]
    push_phases = [p for p in spec.phases if p.kind == "frontier_push"]
    pull_phases = [p for p in spec.phases if p.kind != "frontier_push"]
    cls = _class_name(spec)
    out = _Emitter()
    out.emit(0, f'"""Generated vertex program for spec {spec.name!r}.')
    out.emit(0, "")
    out.emit(0, "Emitted by repro.compiler.compile_program; do not edit.")
    out.emit(
        0,
        "The sync endpoints below are DERIVED from the spec's phase",
    )
    out.emit(0, 'access sets (repro.compiler.spec.derive_endpoints).')
    if dead_table or fused_pairs:
        out.emit(0, "Optimized: GL301 dead-sync elimination"
                    + (" + GL302 phase fusion" if fused_pairs else "")
                    + " (repro.analysis.dataflow).")
    out.emit(0, '"""')
    out.emit(0, "import numpy as np")
    out.emit(0, "")
    out.emit(
        0,
        "from repro.apps.base import StepOutcome, VertexProgram, "
        "gather_frontier_edges",
    )
    out.emit(
        0,
        "from repro.core.sync_structures import "
        "ADD, BOR, MAX, MIN, FieldSpec",
    )
    out.emit(0, "from repro.partition.strategy import OperatorClass")
    out.emit(0, "from repro.runtime.timing import WorkStats")
    if any(p.source_rows is not None for p in spec.phases):
        out.emit(
            0,
            "from repro.features.kernels import aggregate_neighbor_rows",
        )
    for statement in spec.imports:
        out.emit(0, statement)
    if dead_table:
        out.emit(0, "")
        _emit_dead_sync_table(out, dead_table)
    out.emit(0, "")
    out.emit(0, "")
    out.emit(0, f"class {cls}(VertexProgram):")
    suffix = "@optimized" if (dead_table or fused_pairs) else "@compiled"
    out.emit(1, f'name = "{spec.name}{suffix}"')
    out.emit(1, f"needs_weights = {spec.needs_weights}")
    out.emit(1, f"symmetrize_input = {spec.symmetrize_input}")
    out.emit(1, f"operator_class = OperatorClass.{spec.operator_class.name}")
    out.emit(1, "is_reduction = True")
    out.emit(1, f"iterate_locally = {spec.iterate_locally}")
    out.emit(1, f"uses_frontier = {spec.uses_frontier}")
    out.emit(1, f"supports_pull = {spec.supports_pull}")
    out.emit(1, f"supports_migration = {spec.supports_migration}")
    out.emit(1, f"needs_global_degrees = {spec.needs_global_degrees}")
    out.emit(1, f"needs_global_in_degrees = {spec.needs_global_in_degrees}")
    out.emit(0, "")
    _emit_make_state(out, spec)
    out.emit(0, "")
    _emit_make_fields(out, spec, dead_table)
    out.emit(0, "")
    out.emit(1, "def initial_frontier(self, part, state, ctx):")
    if spec.frontier == "all":
        out.emit(2, "return np.ones(part.num_nodes, dtype=bool)")
    else:
        out.emit(2, "frontier = np.zeros(part.num_nodes, dtype=bool)")
        out.emit(2, "if part.has_proxy(ctx.source):")
        out.emit(3, "frontier[part.to_local(ctx.source)] = True")
        out.emit(2, "return frontier")
    out.emit(0, "")
    # -- the phase-major step ------------------------------------------------
    default = "pull" if spec.operator_class is OperatorClass.PULL else "push"
    out.emit(
        1,
        f'def step(self, part, state, frontier, direction: str = '
        f'"{default}"):',
    )
    if push_phases and pull_phases:
        out.emit(2, 'if direction == "pull":')
        out.emit(3, "return self._step_pull(part, state, frontier)")
        out.emit(2, "return self._step_push(part, state, frontier)")
    elif push_phases:
        out.emit(2, "return self._step_push(part, state, frontier)")
    else:
        out.emit(2, "return self._step_pull(part, state, frontier)")
    out.emit(0, "")

    def _emit_group(group: List[PhaseSpec], method: str) -> None:
        if len(group) > 1:
            _emit_fused_push(out, spec, group, method)
        elif group[0].kind == "frontier_push":
            _emit_frontier_push(out, spec, group[0], method)
        elif group[0].kind == "sparse_pull":
            _emit_sparse_pull(out, spec, group[0], method)
        else:
            _emit_dense_pull(out, spec, group[0], method)
        out.emit(0, "")

    def _emit_direction(phases: List[PhaseSpec], method: str) -> None:
        groups = _fusion_groups(phases, fused_pairs)
        if len(groups) == 1:
            _emit_group(groups[0], method)
            return
        # Phase-major: run the direction's groups in declared order,
        # merging their outcome masks and work counters.
        out.emit(1, f"def {method}(self, part, state, frontier):")
        out.emit(2, "updated = np.zeros(part.num_nodes, dtype=bool)")
        out.emit(2, "edges = 0")
        out.emit(2, "nodes = 0")
        subs = []
        for group in groups:
            sub = "_phase_" + "__".join(_ident(p.name) for p in group)
            subs.append(sub)
            out.emit(2, f"outcome = self.{sub}(part, state, frontier)")
            out.emit(2, "updated |= outcome.updated")
            out.emit(2, "edges += outcome.work.edges_processed")
            out.emit(2, "nodes += outcome.work.nodes_processed")
        out.emit(2, "work = WorkStats(")
        out.emit(2, "    edges_processed=edges, nodes_processed=nodes")
        out.emit(2, ")")
        out.emit(2, "return StepOutcome(updated=updated, work=work)")
        out.emit(0, "")
        for group, sub in zip(groups, subs):
            _emit_group(group, sub)

    if push_phases:
        _emit_direction(push_phases, "_step_push")
    if pull_phases:
        _emit_direction(pull_phases, "_step_pull")
    if spec.residual is not None:
        out.emit(1, "def local_residual(self, state):")
        out.emit(2, f'return float(state["{spec.residual}"])')
        out.emit(0, "")
    if spec.converged is not None:
        out.emit(
            1,
            "def is_globally_converged(self, residual_sum, round_index, "
            "ctx):",
        )
        out.emit(
            2, "return bool(_CONVERGED(residual_sum, round_index, ctx))"
        )
        out.emit(0, "")
    return out.source()


def _seed_globals(spec: ProgramSpec) -> Dict:
    """Opaque objects the generated source references by name."""
    import numpy as np

    seeds: Dict = dict(spec.constants)
    for decl in spec.fields:
        if not isinstance(decl.init, str):
            seeds[f"_INIT_{_ident(decl.name)}"] = decl.init
            seeds[f"_DTYPE_{_ident(decl.name)}"] = np.dtype(decl.dtype)
    for decl in spec.sync:
        if decl.hook is not None:
            seeds[f"_HOOK_{_ident(decl.wire_name)}"] = decl.hook
    if spec.converged is not None:
        seeds["_CONVERGED"] = spec.converged
    return seeds


def _materialize(spec: ProgramSpec, source: str) -> types.ModuleType:
    """Exec the generated source as a registered, inspectable module.

    The module lands in ``sys.modules`` with a virtual ``__file__`` whose
    text is seeded into :mod:`linecache`, so :func:`inspect.getsource`
    (and therefore the AST linter) reads the generated code verbatim.
    """
    serial = next(_COMPILE_COUNTER)
    modname = f"repro.apps._compiled.{_ident(spec.name)}_{serial}"
    filename = f"<compiled:{spec.name}#{serial}>"
    module = types.ModuleType(modname)
    module.__file__ = filename
    module.__dict__.update(_seed_globals(spec))
    linecache.cache[filename] = (
        len(source),
        None,
        source.splitlines(True),
        filename,
    )
    sys.modules[modname] = module
    try:
        code = compile(source, filename, "exec")
        exec(code, module.__dict__)
    except Exception as exc:
        del sys.modules[modname]
        del linecache.cache[filename]
        raise CompileError(
            f"{spec.name}: generated source failed to execute: {exc}"
        ) from exc
    return module


def compile_program(
    spec: ProgramSpec, verify: bool = False, optimize: bool = False
):
    """Compile a :class:`ProgramSpec` into a runnable vertex program.

    Returns an *instance* of the generated class (the shape ``make_app``
    hands out).  The class itself carries ``spec`` and
    ``generated_source`` attributes; pass ``verify=True`` to run the
    GL001–GL011 sweep over the generated code and fail the compile on
    any error-severity finding (``repro lint --compiled`` runs the same
    sweep standalone).

    ``optimize=True`` first runs the GL3xx whole-program dataflow
    sweep (:mod:`repro.analysis.dataflow`) and refuses to compile a
    program with error-severity static sync hazards (GL304); it then
    renders with GL301 dead-sync elimination and GL302 phase fusion
    enabled.  Results are bitwise-identical to the unoptimized build —
    only provably-dead messages are dropped.
    """
    if optimize:
        from repro.analysis.dataflow import analyze_spec

        hazards = [
            f for f in analyze_spec(spec) if f.severity == "error"
        ]
        if hazards:
            detail = "; ".join(
                f"{f.rule_id}: {f.message}" for f in hazards
            )
            raise CompileError(
                f"{spec.name}: refusing to optimize a program with "
                f"static sync hazards — {detail}"
            )
    source = render_program(spec, optimize=optimize)
    module = _materialize(spec, source)
    cls = module.__dict__[_class_name(spec)]
    cls.spec = spec
    cls.generated_source = source
    cls.optimized = optimize
    # At least one partitioning strategy must be able to run the
    # program's operator class (§3.1's legality matrix).
    legal_somewhere = False
    for strategy in PartitionStrategy:
        try:
            check_strategy_legal(
                strategy,
                spec.operator_class,
                is_reduction=True,
                single_value_push=True,
            )
            legal_somewhere = True
        except StrategyError:
            continue
    if not legal_somewhere:
        raise CompileError(
            f"{spec.name}: no partitioning strategy can run this program"
        )
    if verify:
        findings = verify_compiled(cls)
        errors = [f for f in findings if f.severity == "error"]
        if errors:
            detail = "; ".join(
                f"{f.rule_id}: {f.message}" for f in errors
            )
            raise CompileError(
                f"{spec.name}: generated program failed the sync-contract "
                f"sweep — {detail}"
            )
    return cls()


def verify_compiled(program_cls) -> List:
    """Run the sync-contract lint sweep over one generated class."""
    from repro.analysis.linter import lint_programs

    return lint_programs([program_cls])
