"""The Gluon sync compiler (§3.3).

The paper's applications do not write communication code: a compiler
statically analyzes the operator — which fields it reads and writes, in
which direction data flows, what reduction combines concurrent writes —
and generates the synchronization structures plus the sync call placement
("we have implemented this in a compiler for Galois").

This subpackage is the Python rendering of that compiler.  An application
is written as a *declarative operator specification*
(:class:`~repro.compiler.spec.OperatorSpec`): field declarations and a
vectorized edge kernel.  :func:`compile_operator` then generates a complete
:class:`~repro.apps.base.VertexProgram` — state allocation, the local
super-step, the Gluon field specs, and the strategy-legality analysis —
from application-agnostic templates.

Example (sssp in six declarative lines)::

    spec = OperatorSpec(
        name="sssp",
        style=OperatorClass.PUSH,
        field=FieldDecl("dist", np.uint32, reduce="min",
                        init=Init.infinity_except_source()),
        edge_kernel=lambda source_values, weights: source_values + weights,
        needs_weights=True,
    )
    sssp = compile_operator(spec)   # a ready-to-run VertexProgram

The full pipeline is the multi-field, multi-phase
:class:`~repro.compiler.spec.ProgramSpec` language:
:func:`compile_program` renders real Python source from templates, the
sync endpoints of every generated ``FieldSpec`` are *derived* from the
phases' declared access sets (:func:`derive_endpoints`), and the
GL001–GL011 lint rules verify the generated code (``repro lint
--compiled``).  All migrated benchmark apps live as specs in
:mod:`repro.apps.specs`, registered as ``<app>@compiled``.
"""

from repro.compiler.analysis import (
    SyncRequirements,
    analyze_operator,
    describe_program,
    required_patterns,
)
from repro.compiler.codegen import CompiledVertexProgram, compile_operator
from repro.compiler.program_codegen import (
    compile_program,
    render_program,
    verify_compiled,
)
from repro.compiler.spec import (
    FieldDecl,
    Init,
    OperatorSpec,
    PhaseSpec,
    ProgramSpec,
    SyncDecl,
    derive_endpoints,
    derive_phase_access,
)

__all__ = [
    "OperatorSpec",
    "FieldDecl",
    "Init",
    "compile_operator",
    "CompiledVertexProgram",
    "analyze_operator",
    "SyncRequirements",
    "required_patterns",
    "ProgramSpec",
    "PhaseSpec",
    "SyncDecl",
    "derive_endpoints",
    "derive_phase_access",
    "compile_program",
    "render_program",
    "verify_compiled",
    "describe_program",
]
