"""Declarative program specifications — the compiler's input language.

Two spec layers live here:

* :class:`OperatorSpec` — the original single-field, single-phase form:
  one synchronized label, one reduction, one vectorized edge kernel.
  Compiled by :class:`repro.compiler.codegen.CompiledVertexProgram`.

* :class:`ProgramSpec` — the full multi-field, multi-phase language.
  A program is an ordered tuple of :class:`PhaseSpec` compute phases
  (push / sparse-pull / dense-pull, each a textual vectorized kernel
  over declared :class:`FieldDecl` fields) plus :class:`SyncDecl`
  synchronization pairings.  Crucially the sync *endpoints* — which
  edge end a field is written at and which end it is read at, the
  ``WriteAtDestination`` / ``ReadAtSource`` parameters of the paper's
  Figure 4 — are **derived** from the phases' access sets by
  :func:`derive_endpoints`; specs never hand-declare them.  Compiled to
  real Python source by :func:`repro.compiler.program_codegen.compile_program`.

Kernel/guard strings reference fields through placeholders:

* ``{src.dist}`` — the field gathered at the edge *source* endpoint
  (renders ``dist[src_rep]`` in a push phase, ``dist[neighbor[active]]``
  in a sparse pull phase, ``dist[src]`` in a dense pull phase);
* ``{dst.dist}`` — the field gathered at the edge *destination*;
* ``{dist}`` — the whole local array (guards; active-side reads);
* ``{w}`` — the per-edge weights; ``{mask}`` — the active-node mask
  (post lines only).

The placeholders double as the access sets the endpoint derivation
consumes: a field appearing as ``{src.f}`` (or whole-array on the
active side) is *read at source*; the phase's scatter ``target`` is
*written at destination* (both flipped for ``orientation="transpose"``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Optional, Tuple, Union

import numpy as np

from repro.core.sync_structures import REDUCTIONS, ReductionOp
from repro.errors import ReproError
from repro.partition.strategy import OperatorClass


class CompileError(ReproError):
    """Raised when an operator specification is inconsistent."""


class Init:
    """Field initializers: how a label starts before round 1.

    Each factory returns a callable ``(partition, ctx, dtype) -> ndarray``
    producing the per-host local array.
    """

    @staticmethod
    def constant(value) -> Callable:
        """Every proxy starts at ``value``."""

        def build(part, ctx, dtype):
            return np.full(part.num_nodes, value, dtype=dtype)

        return build

    @staticmethod
    def global_id() -> Callable:
        """Every proxy starts at its node's global ID (cc-style)."""

        def build(part, ctx, dtype):
            return part.local_to_global.astype(dtype).copy()

        return build

    @staticmethod
    def infinity_except_source() -> Callable:
        """Min-reduction start: identity everywhere, 0 at ``ctx.source``."""

        def build(part, ctx, dtype):
            identity = REDUCTIONS["min"].identity(np.dtype(dtype))
            values = np.full(part.num_nodes, identity, dtype=dtype)
            if part.has_proxy(ctx.source):
                values[part.to_local(ctx.source)] = 0
            return values

        return build

    @staticmethod
    def zero_except_source(source_value) -> Callable:
        """Max-reduction start: zero everywhere, ``source_value`` at the
        source (widest-path-style)."""

        def build(part, ctx, dtype):
            values = np.zeros(part.num_nodes, dtype=dtype)
            if part.has_proxy(ctx.source):
                values[part.to_local(ctx.source)] = source_value
            return values

        return build


@dataclass(frozen=True)
class FieldDecl:
    """One node label (synchronized or local).

    Attributes:
        name: Field name (the state-dict key).
        dtype: numpy dtype of the label.
        reduce: Reduction name from
            :data:`repro.core.sync_structures.REDUCTIONS`, or ``None``
            for a local (never-synchronized) field.
        init: Initializer.  Either a callable ``(part, ctx, dtype) ->
            ndarray`` (the :class:`Init` factories; the only form the
            legacy :class:`OperatorSpec` path accepts) or a Python
            *source expression* rendered verbatim into the generated
            ``make_state`` (:class:`ProgramSpec` path).  Expressions may
            reference ``part``, ``ctx``, ``n`` (local node count),
            ``dim`` (the program's wide dimension), previously declared
            fields via ``state["..."]``, spec constants, and ``np``.
        width: For wide ``(n, d)`` fields, the source expression of the
            column count (e.g. ``"ctx.feature_dim"``); ``None`` for 1-D.
        compression: Wire payload encoding for the synchronized field —
            a state key holding the mode (e.g. the ``"compression"``
            scalar mirroring ``ctx.compression``), or ``None``.
        source_value: Optional source expression assigned to the
            ``ctx.source`` proxy after ``init`` (bfs/sssp-style seeds).
        extra_init: Extra ``make_state`` statements emitted after the
            base initialization (may reference ``state``).
    """

    name: str
    dtype: type
    reduce: Optional[str]
    init: Union[Callable, str]
    width: Optional[str] = None
    compression: Optional[str] = None
    source_value: Optional[str] = None
    extra_init: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.reduce is not None and self.reduce not in REDUCTIONS:
            known = ", ".join(sorted(REDUCTIONS))
            raise CompileError(
                f"field {self.name!r}: unknown reduction {self.reduce!r} "
                f"(known: {known})"
            )
        if not callable(self.init) and not isinstance(self.init, str):
            raise CompileError(
                f"field {self.name!r}: init must be callable or a source "
                "expression"
            )

    @property
    def reduction(self) -> Optional[ReductionOp]:
        """The resolved reduction operation (``None`` for local fields)."""
        if self.reduce is None:
            return None
        return REDUCTIONS[self.reduce]


@dataclass(frozen=True)
class OperatorSpec:
    """A complete operator description, ready to compile.

    Attributes:
        name: Application name.
        style: Push (writes out-neighbors) or pull (writes the active node).
        field: The synchronized label.
        edge_kernel: Vectorized kernel.  For push: maps
            ``(source_values, weights) -> candidate values`` written (via
            the reduction) to each edge's destination.  For pull: maps
            ``(neighbor_values, weights) -> contributions`` reduced into
            the active node.
        source_guard: Optional vectorized predicate over label values;
            active nodes failing it do not apply the operator this step
            (e.g. unreached nodes in sssp).
        pull_targets: Optional vectorized predicate over label values
            selecting the *destination* nodes a pull step gathers
            in-edges for (e.g. still-unreached nodes).  ``None`` gathers
            every local node each round (cc-style: any label can still
            improve).
        needs_weights: Whether the input must be edge-weighted.
        symmetrize_input: Whether the input is symmetrized first (cc).
        single_value_push: Whether the kernel pushes the same value on all
            out-edges *modulo weights* — true for all kernels expressible
            in this spec language; kept explicit for the legality analysis.
        iterate_locally: Whether async engines may run the step to a local
            fixpoint (legal for idempotent reductions only; forced False
            otherwise).
        uses_frontier: Data-driven (frontier) vs topology-driven.
    """

    name: str
    style: OperatorClass
    field: FieldDecl
    edge_kernel: Callable
    source_guard: Optional[Callable] = None
    pull_targets: Optional[Callable] = None
    needs_weights: bool = False
    symmetrize_input: bool = False
    single_value_push: bool = True
    iterate_locally: bool = True
    uses_frontier: bool = True

    def __post_init__(self) -> None:
        if self.field.reduce is None:
            raise CompileError(
                f"{self.name}: the operator's field must declare a reduction"
            )
        if not callable(self.field.init):
            raise CompileError(
                f"{self.name}: operator field initializers must be callable "
                "(source-expression inits are a ProgramSpec feature)"
            )
        if not callable(self.edge_kernel):
            raise CompileError(f"{self.name}: edge_kernel must be callable")
        if self.source_guard is not None and not callable(self.source_guard):
            raise CompileError(f"{self.name}: source_guard must be callable")
        if self.pull_targets is not None and not callable(self.pull_targets):
            raise CompileError(f"{self.name}: pull_targets must be callable")
        if self.iterate_locally and not self.field.reduction.idempotent:
            # Re-applying an ADD-combined operator within a round would
            # double-count contributions; the compiler forbids it rather
            # than trusting the author.
            object.__setattr__(self, "iterate_locally", False)


# ---------------------------------------------------------------------------
# The multi-field, multi-phase program language.
# ---------------------------------------------------------------------------

#: Kernel/guard placeholder grammar (see module docstring).
_SRC_REF = re.compile(r"\{src\.([A-Za-z_]\w*)\}")
_DST_REF = re.compile(r"\{dst\.([A-Za-z_]\w*)\}")
_LOCAL_REF = re.compile(r"\{([A-Za-z_]\w*)\}")

#: Placeholder names that are template variables, not fields.
RESERVED_REFS = frozenset({"w", "mask"})

#: Phase kinds the codegen templates implement.
PHASE_KINDS = ("frontier_push", "sparse_pull", "dense_pull")


def _local_refs(text: str) -> FrozenSet[str]:
    """Whole-array field references in a kernel/guard fragment."""
    return frozenset(
        name
        for name in _LOCAL_REF.findall(text or "")
        if name not in RESERVED_REFS
    )


def _src_refs(text: str) -> FrozenSet[str]:
    return frozenset(_SRC_REF.findall(text or ""))


def _dst_refs(text: str) -> FrozenSet[str]:
    return frozenset(_DST_REF.findall(text or ""))


@dataclass(frozen=True)
class PhaseSpec:
    """One ordered compute phase of a :class:`ProgramSpec`.

    Attributes:
        name: Phase name (for descriptions and generated method names).
        kind: Which codegen template runs the phase —

            * ``"frontier_push"``: gather out-edges of guarded frontier
              nodes, scatter-combine the kernel's candidates into the
              destinations (bfs/sssp/cc/kcore/pr-push);
            * ``"sparse_pull"``: gather in-edges of the ``pull_targets``
              destinations, adopt candidates from frontier in-neighbors
              (bfs/cc pull directions);
            * ``"dense_pull"``: scatter-combine over *all* local edges,
              pre-gathered once in ``make_state`` (pagerank, and — with
              ``source_rows`` — the wide SpMM aggregations).
        target: The field the phase's reduction writes.
        kernel: Candidate-value source expression (placeholder grammar in
            the module docstring).  ``None`` only for wide dense pulls,
            where ``source_rows`` names the row matrix to aggregate.
        guard: Source-side predicate expression; push phases apply it to
            the frontier, sparse pulls to the gathered in-neighbors.
        pull_targets: Destination mask expression for sparse pulls;
            ``None`` gathers every local node.
        uses_weights: Whether the kernel references ``{w}``.
        source_rows: Wide dense pull only — the field whose rows feed
            ``aggregate_neighbor_rows`` into ``target``.
        post_gather: Statements emitted right after the edge gather
            (one-shot flags; may use ``{field}`` and ``{mask}``).
        post_scatter: Statements emitted after the scatter, *outside*
            the non-empty-edge-set branch (pr-push's delta clearing).
        orientation: ``"forward"`` iterates the stored edge direction;
            ``"transpose"`` flips which endpoint the derivation calls
            source/destination (bc's backward sweep).
    """

    name: str
    kind: str
    target: str
    kernel: Optional[str] = None
    guard: Optional[str] = None
    pull_targets: Optional[str] = None
    uses_weights: bool = False
    source_rows: Optional[str] = None
    post_gather: Tuple[str, ...] = ()
    post_scatter: Tuple[str, ...] = ()
    orientation: str = "forward"

    def __post_init__(self) -> None:
        if self.kind not in PHASE_KINDS:
            raise CompileError(
                f"phase {self.name!r}: unknown kind {self.kind!r} "
                f"(known: {', '.join(PHASE_KINDS)})"
            )
        if self.orientation not in ("forward", "transpose"):
            raise CompileError(
                f"phase {self.name!r}: orientation must be 'forward' or "
                f"'transpose', not {self.orientation!r}"
            )
        if self.kind == "dense_pull":
            if (self.kernel is None) == (self.source_rows is None):
                raise CompileError(
                    f"phase {self.name!r}: dense pulls take exactly one "
                    "of kernel= (scalar) or source_rows= (wide)"
                )
        elif self.kernel is None:
            raise CompileError(f"phase {self.name!r}: kernel is required")
        if self.uses_weights and self.kind != "frontier_push":
            raise CompileError(
                f"phase {self.name!r}: weighted kernels are only "
                "supported in frontier_push phases"
            )
        if self.pull_targets is not None and self.kind != "sparse_pull":
            raise CompileError(
                f"phase {self.name!r}: pull_targets only applies to "
                "sparse_pull phases"
            )

    # -- access sets (what the endpoint derivation consumes) -----------------

    @property
    def source_endpoint(self) -> str:
        """Which edge end the *active* (computing) node sits at."""
        return "source" if self.orientation == "forward" else "destination"

    @property
    def dest_endpoint(self) -> str:
        """Which edge end the phase's reduction writes."""
        return "destination" if self.orientation == "forward" else "source"

    def reads_at_source(self) -> FrozenSet[str]:
        """Fields the phase reads on the active side (incl. guards)."""
        refs = set(_src_refs(self.kernel))
        refs |= _local_refs(self.kernel)
        refs |= _local_refs(self.guard)
        if self.source_rows is not None:
            refs.add(self.source_rows)
        return frozenset(refs)

    def reads_at_destination(self) -> FrozenSet[str]:
        """Fields the phase reads on the written side."""
        return _dst_refs(self.kernel) | _dst_refs(self.guard)

    def referenced_fields(self) -> FrozenSet[str]:
        """Every field the phase touches (for alias emission/validation)."""
        refs = set(self.reads_at_source() | self.reads_at_destination())
        refs.add(self.target)
        refs |= _local_refs(self.pull_targets)
        for line in self.post_gather + self.post_scatter:
            refs |= _local_refs(line)
        return frozenset(refs)


@dataclass(frozen=True)
class SyncDecl:
    """One synchronized field pairing: reduce surface + broadcast surface.

    The *endpoints* (``writes``/``reads`` of the generated
    :class:`~repro.core.sync_structures.FieldSpec`) are not declared
    here — :func:`derive_endpoints` computes them from the phases.

    Attributes:
        field: The reduced field (must carry a ``reduce`` in its decl).
        name: Wire name of the field (defaults to ``field``).
        broadcast: For derived broadcasts, the field whose values flow
            master -> mirrors after the reduce (pagerank's ``contrib``).
        hook: Master-side apply ``(part, state) -> dirty_mask`` run
            after the reduce phase (required iff ``broadcast`` is set).
    """

    field: str
    name: Optional[str] = None
    broadcast: Optional[str] = None
    hook: Optional[Callable] = None

    def __post_init__(self) -> None:
        if (self.broadcast is None) != (self.hook is None):
            raise CompileError(
                f"sync {self.field!r}: derived broadcasts need both "
                "broadcast= and hook= (or neither)"
            )

    @property
    def wire_name(self) -> str:
        return self.name if self.name is not None else self.field

    @property
    def read_surface(self) -> str:
        """The field mirrors actually *read* (broadcast pair or values)."""
        return self.broadcast if self.broadcast is not None else self.field


@dataclass(frozen=True)
class ProgramSpec:
    """A complete multi-phase vertex program, ready to compile.

    Attributes:
        name: Application name; the compiled program registers as
            ``"<name>@compiled"``.
        fields: Ordered field declarations (``make_state`` emits them in
            this order, so inits may reference earlier fields).
        phases: Ordered compute phases.  Push-direction steps run every
            ``frontier_push`` phase; pull-direction steps run every
            ``sparse_pull``/``dense_pull`` phase.
        sync: Synchronization pairings (endpoints derived, never given).
        constants: ``(name, value)`` pairs bound in the generated
            module's namespace (e.g. ``("INFINITY", np.uint32(...))``).
        scalars: ``(state_key, source_expression)`` pairs for non-array
            state entries (``ctx`` mirrors, residual accumulators).
        imports: Extra import statements for the generated module (for
            kernels like ``feature_rows``).
        frontier: Initial frontier — ``"all"`` proxies or the
            ``"source"`` node only.
        residual: State key returned by the generated
            ``local_residual`` (topology-driven apps), or ``None``.
        converged: Optional ``(residual_sum, round_index, ctx) -> bool``
            global convergence test.
        wide_dim: Column-count expression bound as ``dim`` in
            ``make_state`` when any field is wide.
        endpoint_overrides: **Testing hook** — ``(wire_name, (writes,
            reads))`` pairs substituted for the derived endpoints, so the
            lint suite can prove ``repro lint --compiled`` catches a
            tampered contract.  Never set this in a real spec.
    """

    name: str
    fields: Tuple[FieldDecl, ...]
    phases: Tuple[PhaseSpec, ...]
    sync: Tuple[SyncDecl, ...]
    constants: Tuple[Tuple[str, Any], ...] = ()
    scalars: Tuple[Tuple[str, str], ...] = ()
    imports: Tuple[str, ...] = ()
    frontier: str = "all"
    residual: Optional[str] = None
    converged: Optional[Callable] = None
    wide_dim: Optional[str] = None
    needs_weights: bool = False
    symmetrize_input: bool = False
    needs_global_degrees: bool = False
    needs_global_in_degrees: bool = False
    endpoint_overrides: Tuple[
        Tuple[str, Tuple[FrozenSet[str], FrozenSet[str]]], ...
    ] = ()

    def __post_init__(self) -> None:
        if not self.phases:
            raise CompileError(f"{self.name}: a program needs >= 1 phase")
        if not self.fields:
            raise CompileError(f"{self.name}: a program needs >= 1 field")
        if self.frontier not in ("all", "source"):
            raise CompileError(
                f"{self.name}: frontier must be 'all' or 'source', not "
                f"{self.frontier!r}"
            )
        declared = {f.name for f in self.fields}
        if len(declared) != len(self.fields):
            raise CompileError(f"{self.name}: duplicate field declarations")
        scalar_keys = {key for key, _ in self.scalars}
        known = declared | scalar_keys
        by_name = {f.name: f for f in self.fields}
        for phase in self.phases:
            unknown = phase.referenced_fields() - known
            if unknown:
                raise CompileError(
                    f"{self.name}/{phase.name}: kernel references "
                    f"undeclared fields {sorted(unknown)}"
                )
            if phase.target not in declared:
                raise CompileError(
                    f"{self.name}/{phase.name}: scatter target "
                    f"{phase.target!r} is not a declared field"
                )
        wire_names = set()
        for decl in self.sync:
            if decl.field not in declared:
                raise CompileError(
                    f"{self.name}: sync field {decl.field!r} undeclared"
                )
            if by_name[decl.field].reduce is None:
                raise CompileError(
                    f"{self.name}: sync field {decl.field!r} declares no "
                    "reduction"
                )
            if decl.broadcast is not None and decl.broadcast not in declared:
                raise CompileError(
                    f"{self.name}: broadcast field {decl.broadcast!r} "
                    "undeclared"
                )
            if decl.wire_name in wire_names:
                raise CompileError(
                    f"{self.name}: duplicate wire name {decl.wire_name!r}"
                )
            wire_names.add(decl.wire_name)
        if self.residual is not None and self.residual not in scalar_keys:
            raise CompileError(
                f"{self.name}: residual key {self.residual!r} is not a "
                "declared scalar"
            )
        if any(f.width is not None for f in self.fields) and not self.wide_dim:
            raise CompileError(
                f"{self.name}: wide fields need wide_dim= (the column "
                "count expression)"
            )
        # Endpoints are derived, never declared — validate they derive
        # to something coherent for every synchronized field.
        derive_endpoints(self)

    # -- derived program shape (mirrors the handwritten class flags) ---------

    @property
    def operator_class(self) -> OperatorClass:
        """PULL iff every phase is topology-driven dense pull."""
        if all(p.kind == "dense_pull" for p in self.phases):
            return OperatorClass.PULL
        return OperatorClass.PUSH

    @property
    def supports_pull(self) -> bool:
        return any(p.kind in ("sparse_pull", "dense_pull") for p in self.phases)

    @property
    def uses_frontier(self) -> bool:
        return any(p.kind == "frontier_push" for p in self.phases)

    @property
    def iterate_locally(self) -> bool:
        """Chaotic local re-application is legal only for data-driven
        programs whose reductions are all idempotent (§2.3)."""
        if not self.uses_frontier:
            return False
        by_name = {f.name: f for f in self.fields}
        return all(
            by_name[d.field].reduction.idempotent for d in self.sync
        )

    @property
    def supports_migration(self) -> bool:
        """One-shot per-proxy flags (post lines) pin proxies to hosts."""
        return not any(p.post_gather or p.post_scatter for p in self.phases)

    def field_decl(self, name: str) -> FieldDecl:
        for decl in self.fields:
            if decl.name == name:
                return decl
        raise KeyError(name)


def derive_phase_access(
    phase: PhaseSpec, field: str, read_surface: Optional[str] = None
) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """Derive one phase's ``(writes, reads)`` endpoints for ``field``.

    This is the per-phase core of :func:`derive_endpoints`, exported so
    handwritten programs (bc's two-pass sweeps, the feature apps) can
    derive their ``FieldSpec`` endpoints from a declarative phase
    description instead of hand-writing location sets.
    """
    surface = read_surface if read_surface is not None else field
    writes = set()
    reads = set()
    if phase.target == field:
        writes.add(phase.dest_endpoint)
    if surface in phase.reads_at_source():
        reads.add(phase.source_endpoint)
    if surface in phase.reads_at_destination():
        reads.add(phase.dest_endpoint)
    return frozenset(writes), frozenset(reads)


def derive_endpoints(
    spec: ProgramSpec,
) -> Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]]:
    """Derive every synchronized field's ``(writes, reads)`` endpoints.

    The union over phases of :func:`derive_phase_access` — writes where
    a phase scatters the field, reads where a phase consumes its read
    surface (the broadcast pair for derived broadcasts).  Raises
    :class:`CompileError` when a sync declaration derives an empty set:
    a field nothing writes needs no reduce, one nothing reads needs no
    broadcast, so an empty side means the spec's access sets are wrong.
    """
    overrides = dict(spec.endpoint_overrides)
    derived: Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]] = {}
    for decl in spec.sync:
        writes: set = set()
        reads: set = set()
        for phase in spec.phases:
            w, r = derive_phase_access(
                phase, decl.field, read_surface=decl.read_surface
            )
            writes |= w
            reads |= r
        if not writes:
            raise CompileError(
                f"{spec.name}: no phase writes sync field {decl.field!r} "
                "— the reduce would ship nothing"
            )
        if not reads:
            raise CompileError(
                f"{spec.name}: no phase reads {decl.read_surface!r} — "
                "the broadcast would feed nothing"
            )
        derived[decl.wire_name] = overrides.get(
            decl.wire_name, (frozenset(writes), frozenset(reads))
        )
    return derived
