#!/usr/bin/env python
"""Dependency-free approximation of the repo's ruff configuration.

CI runs real ruff (``E``, ``F``, ``W``, ``B`` minus the pyproject ignore
list); this script re-implements the mechanizable core of those families
so contributors without ruff installed can still gate locally:

* E401 multiple imports on one line
* E501 line too long (line-length = 100)
* E711/E712 comparisons to None/True/False
* E722 bare except
* E731 lambda assignment
* E741 ambiguous single-letter names (l, O, I)
* W291/W293 trailing whitespace, W292 missing final newline
* W605 invalid escape sequence
* F401 unused import (module scope, no __all__ re-export heuristics
  beyond names listed in __all__)
* F811 redefinition of an imported name by another import
* F841 unused local variable (simple assignments only)
* B006 mutable default argument
* B904 raise without ``from`` inside an except handler

Usage: python tools/check_lint.py [paths...]
(default: src tests tools benchmarks)
"""

from __future__ import annotations

import ast
import re
import sys
import tokenize
from pathlib import Path

MAX_LINE = 100
AMBIGUOUS = {"l", "O", "I"}
VALID_ESCAPES = set("\n\\'\"abfnrtv01234567xNuU")


def _iter_files(paths):
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def _line_checks(path, lines, problems):
    for index, line in enumerate(lines, start=1):
        body = line.rstrip("\n")
        if len(body) > MAX_LINE:
            problems.append((path, index, "E501", f"line too long ({len(body)} > {MAX_LINE})"))
        if body != body.rstrip():
            code = "W293" if not body.strip() else "W291"
            problems.append((path, index, code, "trailing whitespace"))
    if lines and not lines[-1].endswith("\n"):
        problems.append((path, len(lines), "W292", "no newline at end of file"))


def _string_escapes(path, source, problems):
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for token in tokens:
            if token.type != tokenize.STRING:
                continue
            text = token.string
            prefix = re.match(r"[A-Za-z]*", text).group(0).lower()
            if "r" in prefix or "b" in prefix:
                continue
            stripped = re.sub(r"^[A-Za-z]*('''|\"\"\"|'|\")", "", text)
            position = 0
            while True:
                position = stripped.find("\\", position)
                if position == -1 or position + 1 >= len(stripped):
                    break
                if stripped[position + 1] not in VALID_ESCAPES:
                    problems.append(
                        (path, token.start[0], "W605",
                         f"invalid escape sequence '\\{stripped[position + 1]}'")
                    )
                position += 2
    except tokenize.TokenError:
        pass


class _AstChecker(ast.NodeVisitor):
    def __init__(self, path, source, problems):
        self.path = path
        self.problems = problems
        self.tree = ast.parse(source)
        self.used_names = {
            node.id
            for node in ast.walk(self.tree)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
        }
        self.used_attr_roots = {
            node.value.id
            for node in ast.walk(self.tree)
            if isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
        }
        self.exported = self._exported_names()
        self.in_except = 0

    def _exported_names(self):
        names = set()
        for node in self.tree.body:
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in node.targets
                )
                and isinstance(node.value, (ast.List, ast.Tuple))
            ):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant):
                        names.add(str(element.value))
        return names

    def report(self, node, code, message):
        self.problems.append((self.path, node.lineno, code, message))

    def run(self):
        self._check_module_imports()
        self.visit(self.tree)

    def _check_module_imports(self):
        seen = {}
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                if len(node.names) > 1:
                    self.report(node, "E401", "multiple imports on one line")
                for alias in node.names:
                    self._check_import_use(node, alias, alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self._check_import_use(node, alias, alias.name)
            else:
                continue
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if bound in seen and bound not in self.used_names:
                    self.report(node, "F811", f"redefinition of unused {bound!r}")
                seen[bound] = node.lineno

    def _check_import_use(self, node, alias, default_bound):
        bound = alias.asname or default_bound
        if bound.startswith("_") or bound in self.exported:
            return
        if alias.asname is not None and alias.asname == alias.name.split(".")[-1]:
            return  # "import x as x" / "from m import x as x" re-export idiom
        if alias.asname is None and alias.name != default_bound:
            # "import a.b" binds "a"; usage through attributes counts.
            pass
        if (
            bound not in self.used_names
            and bound not in self.used_attr_roots
        ):
            self.report(node, "F401", f"{bound!r} imported but unused")

    def visit_Compare(self, node):
        for comparator, op in zip(node.comparators, node.ops):
            if isinstance(op, (ast.Eq, ast.NotEq)) and isinstance(
                comparator, ast.Constant
            ):
                if comparator.value is None:
                    self.report(node, "E711", "comparison to None (use 'is')")
                elif comparator.value is True or comparator.value is False:
                    self.report(node, "E712", "comparison to bool (use 'is' or bare truth)")
        self.generic_visit(node)

    def visit_ExceptHandler(self, node):
        if node.type is None:
            self.report(node, "E722", "bare 'except'")
        self.in_except += 1
        self.generic_visit(node)
        self.in_except -= 1

    def visit_Raise(self, node):
        if (
            self.in_except
            and node.exc is not None
            and node.cause is None
            and isinstance(node.exc, ast.Call)
        ):
            self.report(
                node, "B904",
                "raise inside 'except' without 'from' (exception chaining)",
            )
        self.generic_visit(node)

    def visit_Assign(self, node):
        if isinstance(node.value, ast.Lambda) and all(
            isinstance(target, ast.Name) for target in node.targets
        ):
            self.report(node, "E731", "lambda assignment (use 'def')")
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id in AMBIGUOUS:
                self.report(node, "E741", f"ambiguous variable name {target.id!r}")
        self.generic_visit(node)

    def _check_function(self, node):
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in {"list", "dict", "set"}
            ):
                self.report(default, "B006", "mutable default argument")
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            if arg.arg in AMBIGUOUS:
                self.report(arg, "E741", f"ambiguous argument name {arg.arg!r}")
        self._check_unused_locals(node)

    def _check_unused_locals(self, node):
        loads = {
            child.id
            for child in ast.walk(node)
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load)
        }
        for child in node.body:
            for sub in ast.walk(child):
                if (
                    isinstance(sub, ast.Assign)
                    and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)
                ):
                    name = sub.targets[0].id
                    if (
                        not name.startswith("_")
                        and name not in loads
                        and name not in self.exported
                    ):
                        self.problems.append(
                            (self.path, sub.lineno, "F841",
                             f"local variable {name!r} assigned but never used")
                        )

    def visit_FunctionDef(self, node):
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node):
        self._check_function(node)
        self.generic_visit(node)


def main(argv):
    targets = argv or ["src", "tests", "tools", "benchmarks"]
    problems = []
    for path in _iter_files(targets):
        source = path.read_text()
        lines = source.splitlines(True)
        _line_checks(path, lines, problems)
        _string_escapes(path, source, problems)
        try:
            _AstChecker(str(path), source, problems).run()
        except SyntaxError as exc:
            problems.append((str(path), exc.lineno or 0, "E999", str(exc)))
    problems = sorted(set(problems))
    for path, line, code, message in problems:
        print(f"{path}:{line}: {code} {message}")
    print(f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
