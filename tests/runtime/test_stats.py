"""Unit tests for run-level statistics."""

import pytest

from repro.runtime.stats import RoundRecord, RunResult


def record(idx, comp, comm=0.0, nbytes=0, messages=0, active=0):
    return RoundRecord(
        round_index=idx,
        comp_time_per_host=comp,
        comm_time=comm,
        comm_bytes=nbytes,
        comm_messages=messages,
        active_nodes=active,
    )


class TestRoundRecord:
    def test_max_and_mean(self):
        r = record(1, [1.0, 3.0, 2.0])
        assert r.comp_time_max == 3.0
        assert r.comp_time_mean == pytest.approx(2.0)

    def test_empty_hosts(self):
        r = record(1, [])
        assert r.comp_time_max == 0.0
        assert r.comp_time_mean == 0.0


class TestRunResult:
    def make(self):
        result = RunResult(
            system="d-galois", app="bfs", policy="cvc", num_hosts=2
        )
        result.rounds.append(record(1, [1.0, 2.0], comm=0.5, nbytes=100, messages=2))
        result.rounds.append(record(2, [3.0, 1.0], comm=0.5, nbytes=50, messages=1))
        return result

    def test_aggregates(self):
        result = self.make()
        assert result.num_rounds == 2
        assert result.computation_time == pytest.approx(5.0)
        assert result.communication_time == pytest.approx(1.0)
        assert result.total_time == pytest.approx(6.0)
        assert result.communication_volume == 150
        assert result.communication_messages == 3

    def test_load_imbalance(self):
        result = self.make()
        # max sums: 2 + 3 = 5; mean sums: 1.5 + 2 = 3.5.
        assert result.load_imbalance() == pytest.approx(5.0 / 3.5)

    def test_balanced_run_has_imbalance_one(self):
        result = RunResult(system="s", app="a", policy="p", num_hosts=2)
        result.rounds.append(record(1, [2.0, 2.0]))
        assert result.load_imbalance() == pytest.approx(1.0)

    def test_empty_run(self):
        result = RunResult(system="s", app="a", policy="p", num_hosts=1)
        assert result.total_time == 0.0
        assert result.load_imbalance() == 1.0

    def test_summary_keys(self):
        summary = self.make().summary()
        assert summary["system"] == "d-galois"
        assert summary["rounds"] == 2
        assert summary["hosts"] == 2
        assert "comm_MB" in summary
