"""Tests for run-trace export (round_rows / to_json)."""

import json

from repro import generators, run_app


def small_result():
    edges = generators.rmat(scale=8, edge_factor=4, seed=0)
    return run_app("d-galois", "bfs", edges, num_hosts=2, policy="cvc")


class TestRoundRows:
    def test_one_row_per_round(self):
        result = small_result()
        rows = result.round_rows()
        assert len(rows) == result.num_rounds
        assert rows[0]["round"] == 1
        assert rows[-1]["active_nodes"] == 0  # converged

    def test_rows_sum_to_totals(self):
        result = small_result()
        rows = result.round_rows()
        assert sum(r["comm_bytes"] for r in rows) == (
            result.communication_volume
        )
        assert sum(r["messages"] for r in rows) == (
            result.communication_messages
        )


class TestToJson:
    def test_roundtrips_through_json(self):
        result = small_result()
        payload = json.loads(result.to_json())
        assert payload["summary"]["system"] == "d-galois"
        assert payload["summary"]["converged"] is True
        assert len(payload["rounds"]) == result.num_rounds
        assert payload["replication_factor"] == result.replication_factor
        assert payload["construction"]["bytes"] > 0

    def test_writes_to_path(self, tmp_path):
        result = small_result()
        target = tmp_path / "trace.json"
        result.to_json(target)
        payload = json.loads(target.read_text())
        assert payload["summary"]["app"] == "bfs"

    def test_mode_counts_are_names(self):
        result = small_result()
        payload = json.loads(result.to_json())
        for key in payload["mode_counts"]:
            assert key in {"EMPTY", "FULL", "BITVEC", "INDICES", "GLOBAL_IDS"}
