"""Tests for mid-run repartitioning (§4.1 footnote) and resumable runs."""

import numpy as np
import pytest

from repro.apps import make_app
from repro.engines import make_engine
from repro.errors import ExecutionError
from repro.partition import make_partitioner
from repro.runtime.executor import DistributedExecutor
from repro.runtime.migration import gather_global, migrate_states
from repro.systems import prepare_input
from tests.conftest import reference_bfs, reference_pagerank, reference_sssp


def build(edges, app_name, policy, num_hosts=4, engine="galois"):
    prep = prepare_input(app_name, edges)
    partitioned = make_partitioner(policy).partition(prep.edges, num_hosts)
    executor = DistributedExecutor(
        partitioned, make_engine(engine), make_app(app_name), prep.ctx
    )
    return prep, executor


class TestResume:
    def test_run_resumes_after_round_cap(self, small_rmat):
        prep, executor = build(small_rmat, "bfs", "cvc")
        partial = executor.run(max_rounds=1)
        assert not partial.converged
        final = executor.run()
        assert final is partial  # same accumulated result object
        assert final.converged
        got = executor.gather_result("dist").astype(np.uint64)
        assert np.array_equal(
            got, reference_bfs(prep.edges, prep.ctx.source)
        )

    def test_resumed_rounds_are_contiguous(self, small_rmat):
        _, executor = build(small_rmat, "bfs", "cvc")
        executor.run(max_rounds=2)
        result = executor.run()
        indices = [record.round_index for record in result.rounds]
        assert indices == list(range(1, len(indices) + 1))

    def test_run_after_convergence_raises(self, small_rmat):
        """A completed executor is single-use: rerunning it must fail
        loudly instead of silently carrying state into the next answer
        (the service worker pool constructs a fresh executor per job)."""
        from repro.errors import ExecutionError, ReproError

        _, executor = build(small_rmat, "bfs", "cvc")
        result = executor.run()
        assert result.converged
        with pytest.raises(ExecutionError, match="single-use"):
            executor.run()
        # The guard is part of the library's error contract.
        assert issubclass(ExecutionError, ReproError)

    def test_resume_matches_single_shot(self, small_rmat):
        """Splitting a run into resumed chunks changes nothing."""
        _, chunked = build(small_rmat, "sssp", "cvc")
        while not chunked.run(max_rounds=1).converged:
            pass
        _, single = build(small_rmat, "sssp", "cvc")
        single_result = single.run()
        chunked_result = chunked._result
        assert chunked_result.num_rounds == single_result.num_rounds
        assert (
            chunked_result.communication_volume
            == single_result.communication_volume
        )
        assert np.array_equal(
            chunked.gather_result("dist"), single.gather_result("dist")
        )


class TestRepartition:
    @pytest.mark.parametrize(
        "app_name,key,oracle",
        [
            ("bfs", "dist", reference_bfs),
            ("sssp", "dist", reference_sssp),
        ],
    )
    def test_repartition_midrun_still_correct(
        self, small_rmat, app_name, key, oracle
    ):
        prep, executor = build(small_rmat, app_name, "oec")
        executor.run(max_rounds=2)
        new_partitioned = make_partitioner("cvc").partition(prep.edges, 4)
        executor.repartition(new_partitioned)
        result = executor.run()
        assert result.converged
        assert result.policy == "cvc"
        got = executor.gather_result(key).astype(np.uint64)
        assert np.array_equal(got, oracle(prep.edges, prep.ctx.source))

    def test_repartition_pagerank(self, small_rmat):
        prep, executor = build(small_rmat, "pr", "iec", engine="ligra")
        executor.run(max_rounds=5)
        new_partitioned = make_partitioner("hvc").partition(prep.edges, 4)
        executor.repartition(new_partitioned)
        result = executor.run()
        assert result.converged
        got = executor.gather_result("rank")
        expected = reference_pagerank(small_rmat)
        np.testing.assert_allclose(got, expected, rtol=1e-6)

    def test_repartition_cc_many_times(self, small_rmat):
        from tests.conftest import reference_cc

        prep, executor = build(small_rmat, "cc", "oec")
        expected = reference_cc(prep.edges)
        for policy in ("cvc", "hvc", "iec"):
            if executor.run(max_rounds=1).converged:
                break
            executor.repartition(
                make_partitioner(policy).partition(prep.edges, 4)
            )
        if not executor._result.converged:
            executor.run()
        got = executor.gather_result("label").astype(np.uint64)
        assert np.array_equal(got, expected)

    def test_remomoization_traffic_counted(self, small_rmat):
        prep, executor = build(small_rmat, "bfs", "oec")
        executor.run(max_rounds=1)
        before = executor._result.construction_bytes
        executor.repartition(
            make_partitioner("cvc").partition(prep.edges, 4)
        )
        assert executor._result.construction_bytes > before

    def test_repartition_before_run_rejected(self, small_rmat):
        prep, executor = build(small_rmat, "bfs", "oec")
        with pytest.raises(ExecutionError, match="started"):
            executor.repartition(
                make_partitioner("cvc").partition(prep.edges, 4)
            )

    def test_repartition_after_convergence_rejected(self, small_rmat):
        prep, executor = build(small_rmat, "bfs", "oec")
        executor.run()
        with pytest.raises(ExecutionError, match="converged"):
            executor.repartition(
                make_partitioner("cvc").partition(prep.edges, 4)
            )

    def test_host_count_change_rejected(self, small_rmat):
        prep, executor = build(small_rmat, "bfs", "oec")
        executor.run(max_rounds=1)
        with pytest.raises(ExecutionError, match="host count"):
            executor.repartition(
                make_partitioner("cvc").partition(prep.edges, 8)
            )

    def test_non_migratable_app_rejected(self, small_rmat):
        prep, executor = build(small_rmat, "kcore", "oec")
        executor.run(max_rounds=1)
        with pytest.raises(ExecutionError, match="migrated"):
            executor.repartition(
                make_partitioner("cvc").partition(prep.edges, 4)
            )


class TestMigrationPrimitives:
    def test_gather_global_collects_masters(self, small_rmat):
        prep, executor = build(small_rmat, "bfs", "cvc")
        executor.run(max_rounds=2)
        global_dist = gather_global(
            executor.partitioned, executor.states, "dist"
        )
        assert len(global_dist) == prep.edges.num_nodes
        assert global_dist[prep.ctx.source] == 0

    def test_migrate_states_preserves_masters(self, small_rmat):
        prep, executor = build(small_rmat, "bfs", "cvc")
        executor.run(max_rounds=2)
        before = gather_global(executor.partitioned, executor.states, "dist")
        new_partitioned = make_partitioner("hvc").partition(prep.edges, 4)
        new_states = migrate_states(
            executor.partitioned,
            executor.states,
            new_partitioned,
            executor.app,
            executor.ctx,
        )
        after = gather_global(new_partitioned, new_states, "dist")
        assert np.array_equal(before, after)
