"""Unit tests for overlap-headroom accounting."""

import pytest

from repro.runtime.stats import RoundRecord, RunResult


def record(comp, comm):
    return RoundRecord(
        round_index=1,
        comp_time_per_host=[comp],
        comm_time=comm,
        comm_bytes=0,
        comm_messages=0,
        active_nodes=0,
    )


def test_overlapped_time_is_per_round_max():
    result = RunResult(system="s", app="a", policy="p", num_hosts=1)
    result.rounds = [record(3.0, 1.0), record(1.0, 4.0)]
    assert result.total_time == pytest.approx(9.0)
    assert result.total_time_overlapped == pytest.approx(7.0)
    assert result.overlap_headroom() == pytest.approx(2.0 / 9.0)


def test_headroom_zero_when_one_phase_dominates_everywhere():
    result = RunResult(system="s", app="a", policy="p", num_hosts=1)
    result.rounds = [record(5.0, 0.0), record(2.0, 0.0)]
    assert result.overlap_headroom() == pytest.approx(0.0)


def test_headroom_bounded_by_half():
    """max(a, b) >= (a + b)/2, so headroom can never exceed 50%."""
    result = RunResult(system="s", app="a", policy="p", num_hosts=1)
    result.rounds = [record(2.0, 2.0), record(1.0, 1.0)]
    assert result.overlap_headroom() == pytest.approx(0.5)


def test_empty_run():
    result = RunResult(system="s", app="a", policy="p", num_hosts=1)
    assert result.total_time_overlapped == 0.0
    assert result.overlap_headroom() == 0.0
