"""Unit tests for migration key selection."""

import numpy as np
import pytest

from repro.apps import make_app
from repro.errors import ExecutionError
from repro.partition import make_partitioner
from repro.runtime.migration import migratable_keys, migrate_states
from repro.systems import prepare_input


class TestMigratableKeys:
    def test_default_selects_node_sized_arrays(self):
        app = make_app("bfs")
        state = {
            "dist": np.zeros(10, dtype=np.uint32),
            "edge_cache": np.zeros(37, dtype=np.int64),  # edge-sized
            "scalar": 3.0,
            "feat": np.zeros((10, 2)),  # wide node rows migrate too
            "stack": np.zeros((10, 2, 2)),  # >2-D is rebuilt, not moved
        }
        assert migratable_keys(app, state, num_nodes=10) == ["dist", "feat"]

    def test_declared_attribute_wins(self):
        app = make_app("bfs")
        app_declared = type(app)()
        app_declared.migratable_node_arrays = ("dist",)
        state = {
            "dist": np.zeros(10, dtype=np.uint32),
            "other": np.zeros(10, dtype=np.uint32),
        }
        assert migratable_keys(app_declared, state, 10) == ["dist"]

    def test_pagerank_keys_exclude_edge_caches(self, small_rmat):
        prep = prepare_input("pr", small_rmat)
        part = make_partitioner("cvc").partition(prep.edges, 3).partitions[0]
        app = make_app("pr")
        state = app.make_state(part, prep.ctx)
        keys = set(migratable_keys(app, state, part.num_nodes))
        assert {"rank", "contrib", "acc", "out_degree"} <= keys
        assert "edge_src" not in keys
        assert "edge_dst" not in keys


class TestMigrateStatesValidation:
    def test_node_count_mismatch_rejected(self, small_rmat, small_grid):
        prep_a = prepare_input("bfs", small_rmat)
        prep_b = prepare_input("bfs", small_grid)
        old = make_partitioner("oec").partition(prep_a.edges, 2)
        new = make_partitioner("oec").partition(prep_b.edges, 2)
        app = make_app("bfs")
        states = [app.make_state(p, prep_a.ctx) for p in old.partitions]
        with pytest.raises(ExecutionError, match="same global node set"):
            migrate_states(old, states, new, app, prep_a.ctx)
