"""Unit tests for the distributed executor."""

import numpy as np
import pytest

from repro.apps import make_app
from repro.core.optimization import OptimizationLevel
from repro.engines import make_engine
from repro.errors import ExecutionError, StrategyError
from repro.partition import make_partitioner
from repro.runtime.executor import DistributedExecutor
from repro.systems import prepare_input


def build_executor(edges, app_name="bfs", policy="cvc", num_hosts=4, **kwargs):
    prep = prepare_input(app_name, edges)
    partitioned = make_partitioner(policy).partition(prep.edges, num_hosts)
    return DistributedExecutor(
        partitioned,
        make_engine("galois"),
        make_app(app_name),
        prep.ctx,
        **kwargs,
    )


class TestLifecycle:
    def test_run_produces_rounds(self, small_rmat):
        result = build_executor(small_rmat).run()
        assert result.num_rounds >= 1
        assert result.converged
        assert len(result.rounds[0].comp_time_per_host) == 4

    def test_construction_traffic_separated(self, small_rmat):
        result = build_executor(small_rmat).run()
        assert result.construction_bytes > 0
        # Memoization bytes do not count toward execution volume.
        assert result.communication_volume < result.construction_bytes + sum(
            r.comm_bytes for r in result.rounds
        ) + 1

    def test_max_rounds_caps_execution(self, small_rmat):
        result = build_executor(small_rmat).run(max_rounds=1)
        assert result.num_rounds == 1
        assert not result.converged

    def test_replication_factor_recorded(self, small_rmat):
        result = build_executor(small_rmat).run()
        assert result.replication_factor > 1.0

    def test_sync_disabled_requires_single_host(self, small_rmat):
        with pytest.raises(ExecutionError):
            build_executor(small_rmat, num_hosts=2, enable_sync=False)

    def test_sync_disabled_single_host_works(self, small_rmat):
        from tests.conftest import reference_bfs

        prep = prepare_input("bfs", small_rmat)
        partitioned = make_partitioner("oec").partition(prep.edges, 1)
        executor = DistributedExecutor(
            partitioned,
            make_engine("galois"),
            make_app("bfs"),
            prep.ctx,
            enable_sync=False,
        )
        result = executor.run()
        assert result.communication_volume == 0
        got = executor.gather_result("dist").astype(np.uint64)
        assert np.array_equal(got, reference_bfs(prep.edges, prep.ctx.source))

    def test_sync_disabled_runs_hooks(self, small_rmat):
        """Pagerank's master-side apply must run even without sync."""
        from tests.conftest import reference_pagerank

        prep = prepare_input("pr", small_rmat)
        partitioned = make_partitioner("oec").partition(prep.edges, 1)
        executor = DistributedExecutor(
            partitioned,
            make_engine("ligra"),
            make_app("pr"),
            prep.ctx,
            enable_sync=False,
        )
        result = executor.run()
        assert result.converged
        np.testing.assert_allclose(
            executor.gather_result("rank"),
            reference_pagerank(small_rmat),
            rtol=1e-9,
        )

    def test_illegal_strategy_rejected(self, small_rmat):
        """A non-reduction pull operator cannot use OEC (§3.1)."""
        prep = prepare_input("pr", small_rmat)
        partitioned = make_partitioner("oec").partition(prep.edges, 2)
        app = make_app("pr")
        app_backup = app.is_reduction
        try:
            app.is_reduction = False
            with pytest.raises(StrategyError):
                DistributedExecutor(
                    partitioned, make_engine("galois"), app, prep.ctx
                )
        finally:
            app.is_reduction = app_backup


class TestDeterminism:
    def test_repeat_runs_identical(self, small_rmat):
        a = build_executor(small_rmat).run()
        b = build_executor(small_rmat).run()
        assert a.num_rounds == b.num_rounds
        assert a.communication_volume == b.communication_volume
        assert a.communication_messages == b.communication_messages
        # Simulated times are deterministic too (wall-clock is only in
        # construction_time).
        assert a.total_time == pytest.approx(b.total_time)

    def test_per_round_traffic_deterministic(self, small_rmat):
        a = build_executor(small_rmat).run()
        b = build_executor(small_rmat).run()
        assert [r.comm_bytes for r in a.rounds] == [
            r.comm_bytes for r in b.rounds
        ]


class TestOptimizationLevels:
    @pytest.mark.parametrize("level", list(OptimizationLevel))
    def test_all_levels_converge_identically(self, small_rmat, level):
        from tests.conftest import reference_bfs

        prep = prepare_input("bfs", small_rmat)
        executor = build_executor(small_rmat, level=level)
        executor.run()
        got = executor.gather_result("dist").astype(np.uint64)
        assert np.array_equal(
            got, reference_bfs(prep.edges, prep.ctx.source)
        )

    def test_temporal_levels_have_zero_translations(self, small_rmat):
        result = build_executor(
            small_rmat, level=OptimizationLevel.OSTI
        ).run()
        assert result.translations == 0

    def test_unopt_translates(self, small_rmat):
        result = build_executor(
            small_rmat, level=OptimizationLevel.UNOPT
        ).run()
        assert result.translations > 0


class TestGpuAccounting:
    def test_gpu_device_transfer_adds_comm_time(self, small_rmat):
        prep = prepare_input("bfs", small_rmat)
        partitioned = make_partitioner("cvc").partition(prep.edges, 4)

        def run_with(engine_name):
            executor = DistributedExecutor(
                partitioned,
                make_engine(engine_name),
                make_app("bfs"),
                prep.ctx,
            )
            return executor.run()

        gpu = run_with("irgl")
        assert gpu.converged
        # Same traffic, nonzero device transfer folded into comm time.
        assert gpu.communication_time > 0
