"""Single-host execution with the sync layer disabled entirely.

The shared-memory baselines (Table 4's Ligra/Galois/IrGL rows) run this
way; every application must still be correct because the master-side
apply hooks are the only sync-phase work that carries algorithmic
meaning on one host.
"""

import numpy as np
import pytest

from repro.apps import make_app
from repro.engines import make_engine
from repro.partition import make_partitioner
from repro.runtime.executor import DistributedExecutor
from repro.systems import prepare_input
from tests.conftest import (
    reference_bfs,
    reference_cc,
    reference_kcore,
    reference_pagerank,
    reference_sssp,
)

ORACLES = {
    "bfs": ("dist", lambda prep: reference_bfs(prep.edges, prep.ctx.source)),
    "sssp": ("dist", lambda prep: reference_sssp(prep.edges, prep.ctx.source)),
    "cc": ("label", lambda prep: reference_cc(prep.edges)),
    "kcore": ("alive", lambda prep: reference_kcore(prep.edges, prep.ctx.k)),
}


@pytest.mark.parametrize("app_name", sorted(ORACLES))
@pytest.mark.parametrize("engine_name", ["galois", "ligra", "irgl"])
def test_sync_disabled_matches_oracle(small_rmat, app_name, engine_name):
    key, oracle = ORACLES[app_name]
    prep = prepare_input(app_name, small_rmat)
    partitioned = make_partitioner("oec").partition(prep.edges, 1)
    executor = DistributedExecutor(
        partitioned,
        make_engine(engine_name),
        make_app(app_name),
        prep.ctx,
        enable_sync=False,
    )
    result = executor.run()
    assert result.converged
    assert result.communication_volume == 0
    got = executor.gather_result(key).astype(np.uint64)
    assert np.array_equal(got, oracle(prep))


def test_push_pagerank_sync_disabled(small_rmat):
    prep = prepare_input("pr-push", small_rmat, tolerance=1e-10)
    partitioned = make_partitioner("oec").partition(prep.edges, 1)
    app = make_app("pr-push")
    executor = DistributedExecutor(
        partitioned, make_engine("galois"), app, prep.ctx, enable_sync=False
    )
    executor.run()
    got = app.gather_rank(partitioned.partitions, executor.states)
    np.testing.assert_allclose(
        got, reference_pagerank(small_rmat, tolerance=1e-12), atol=1e-6
    )


def test_bc_sync_disabled(small_rmat):
    from repro.apps.base import AppContext
    from repro.oracles import bc_dependencies
    from repro.systems import default_source

    prep = prepare_input("bc", small_rmat)
    partitioned = make_partitioner("oec").partition(prep.edges, 1)
    app = make_app("bc")
    result = app.run_phases(
        partitioned, make_engine("ligra"), prep.ctx, enable_sync=False
    )
    assert result.converged
    got = result.executor.gather_result("delta")
    expected = bc_dependencies(prep.edges, prep.ctx.source)
    np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)
