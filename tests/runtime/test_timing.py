"""Unit tests for the simulated-time accounting."""

import pytest

from repro.network.cost_model import CostModel, NetworkParameters
from repro.network.stats import RoundTraffic
from repro.runtime.timing import (
    ComputeCostParameters,
    WorkStats,
    round_communication_time,
)


class TestWorkStats:
    def test_merge(self):
        merged = WorkStats(10, 2, 1).merge(WorkStats(5, 3, 1))
        assert merged.edges_processed == 15
        assert merged.nodes_processed == 5
        assert merged.inner_steps == 2

    def test_defaults(self):
        work = WorkStats()
        assert work.edges_processed == 0
        assert work.inner_steps == 1


class TestComputeCost:
    def test_linear_composition(self):
        cost = ComputeCostParameters(
            per_edge_s=2.0, per_node_s=3.0, step_overhead_s=10.0
        )
        assert cost.compute_time(WorkStats(4, 5, 2)) == pytest.approx(
            4 * 2.0 + 5 * 3.0 + 2 * 10.0
        )

    def test_zero_work_costs_overhead_only(self):
        cost = ComputeCostParameters(
            per_edge_s=1.0, per_node_s=1.0, step_overhead_s=7.0
        )
        assert cost.compute_time(WorkStats(0, 0, 1)) == pytest.approx(7.0)


class TestRoundCommunicationTime:
    def model(self):
        return CostModel(
            NetworkParameters("t", latency_s=0.0, bandwidth_bytes_per_s=1.0)
        )

    def test_critical_path(self):
        traffic = RoundTraffic(messages=[(0, 1, 10), (2, 1, 10)])
        # Host 1 receives 20; hosts 0 and 2 each send 10.
        t = round_communication_time(traffic, 3, self.model())
        assert t == pytest.approx(20.0)

    def test_per_host_extras_shift_critical_path(self):
        traffic = RoundTraffic(messages=[(0, 1, 10)])
        base = round_communication_time(traffic, 2, self.model())
        shifted = round_communication_time(
            traffic, 2, self.model(), per_host_extra_s=[100.0, 0.0]
        )
        assert shifted == pytest.approx(base + 100.0)

    def test_barrier_term_grows_with_hosts(self):
        model = CostModel(
            NetworkParameters("t", latency_s=1.0, bandwidth_bytes_per_s=1e9)
        )
        empty = RoundTraffic()
        t2 = round_communication_time(empty, 2, model)
        t16 = round_communication_time(empty, 16, model)
        assert t16 > t2 > 0

    def test_single_host_is_free(self):
        t = round_communication_time(RoundTraffic(), 1, self.model())
        assert t == 0.0
