"""Tests for the public oracles and the verify_run API."""

import numpy as np
import pytest

from repro import oracles
from repro.systems import prepare_input, run_app
from repro.verify import Verification, VerificationError, verify_run
from tests.conftest import (
    reference_bfs,
    reference_cc,
    reference_kcore,
    reference_pagerank,
    reference_sssp,
)


class TestOraclesAgreeWithTestReferences:
    """The library oracles and the (independently written) test-suite
    references must agree — a cross-validation of both."""

    def test_bfs(self, small_rmat):
        prep = prepare_input("bfs", small_rmat)
        assert np.array_equal(
            oracles.bfs_distances(prep.edges, prep.ctx.source),
            reference_bfs(prep.edges, prep.ctx.source),
        )

    def test_sssp(self, small_rmat):
        prep = prepare_input("sssp", small_rmat)
        assert np.array_equal(
            oracles.sssp_distances(prep.edges, prep.ctx.source),
            reference_sssp(prep.edges, prep.ctx.source),
        )

    def test_cc(self, small_rmat):
        prep = prepare_input("cc", small_rmat)
        assert np.array_equal(
            oracles.component_labels(prep.edges), reference_cc(prep.edges)
        )

    def test_pagerank(self, small_rmat):
        np.testing.assert_allclose(
            oracles.pagerank_values(small_rmat),
            reference_pagerank(small_rmat),
            rtol=1e-12,
        )

    def test_kcore(self, small_rmat):
        prep = prepare_input("kcore", small_rmat, k=3)
        assert np.array_equal(
            oracles.kcore_membership(prep.edges, 3),
            reference_kcore(prep.edges, 3),
        )


class TestVerifyRun:
    @pytest.mark.parametrize(
        "app", ["bfs", "sssp", "cc", "pr", "pr-push", "kcore", "bc"]
    )
    def test_every_app_verifies(self, small_rmat, app):
        result = run_app("d-galois", app, small_rmat, num_hosts=4, policy="cvc")
        outcome = verify_run(result, small_rmat)
        assert isinstance(outcome, Verification)
        assert outcome.matched, outcome

    @pytest.mark.parametrize("system", ["gemini", "gunrock", "d-hybrid"])
    def test_baselines_verify(self, small_rmat, system):
        result = run_app(system, "bfs", small_rmat, num_hosts=4)
        assert verify_run(result, small_rmat).matched

    def test_detects_corruption(self, small_rmat):
        result = run_app("d-galois", "bfs", small_rmat, num_hosts=4)
        # Corrupt one master value post-hoc.
        state = result.executor.states[0]
        state["dist"][0] += 1
        with pytest.raises(VerificationError, match="diverged"):
            verify_run(result, small_rmat)
        outcome = verify_run(result, small_rmat, raise_on_mismatch=False)
        assert not outcome.matched
        assert outcome.max_abs_error >= 1

    def test_requires_executor(self, small_rmat):
        from repro.runtime.stats import RunResult

        bare = RunResult(system="s", app="bfs", policy="p", num_hosts=1)
        with pytest.raises(VerificationError, match="executor"):
            verify_run(bare, small_rmat)

    def test_unknown_app_rejected(self, small_rmat):
        result = run_app("d-galois", "bfs", small_rmat, num_hosts=2)
        result.app = "mystery"
        with pytest.raises(VerificationError, match="no oracle"):
            verify_run(result, small_rmat)
