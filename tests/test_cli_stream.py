"""CLI tests for the streaming surface: `repro mutate`, `run --stream`,
and `serve --stream`."""

import json

import pytest

from repro.cli import main

# rmat22s is base scale 12; -4 => 256 nodes, small but non-degenerate.
_MUTATE = [
    "mutate",
    "--app", "bfs",
    "--workload", "rmat22s",
    "--scale-delta", "-4",
    "--hosts", "4",
    "--policy", "oec",
]


@pytest.fixture()
def stream_file(tmp_path):
    path = tmp_path / "stream.json"
    path.write_text(json.dumps({
        "batches": [
            {"delete_edges": [[0, 1]]},
            {"add_nodes": 1, "insert": [[256, 0]]},
        ]
    }))
    return str(path)


class TestMutateValidation:
    def test_requires_stream_or_generate(self, capsys):
        with pytest.raises(SystemExit):
            main(_MUTATE)
        assert "--stream" in capsys.readouterr().err

    def test_stream_and_generate_mutually_exclusive(
        self, stream_file, capsys
    ):
        with pytest.raises(SystemExit):
            main(_MUTATE + ["--stream", stream_file, "--generate", "2"])
        assert "not allowed with" in capsys.readouterr().err

    def test_zero_generate_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(_MUTATE + ["--generate", "0"])
        assert "--generate must be at least 1" in capsys.readouterr().err

    def test_bad_fraction_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(
                _MUTATE
                + ["--generate", "1", "--delete-fraction", "1.5"]
            )
        assert "delete-fraction" in capsys.readouterr().err

    def test_save_requires_generate(self, stream_file, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(
                _MUTATE
                + ["--stream", stream_file,
                   "--save", str(tmp_path / "out.json")]
            )
        assert "--save only applies to --generate" in capsys.readouterr().err


class TestMutate:
    def test_generated_stream_verifies_bitwise_vs_cold(self, capsys):
        assert main(
            _MUTATE + ["--generate", "2", "--seed", "7", "--verify-cold"]
        ) == 0
        out = capsys.readouterr().out
        assert "mutation stream" in out
        assert "bitwise vs cold    : identical" in out
        assert "final version      : 2" in out

    def test_save_then_replay_round_trips(self, tmp_path, capsys):
        saved = str(tmp_path / "replay.json")
        assert main(
            _MUTATE + ["--generate", "2", "--seed", "3", "--save", saved]
        ) == 0
        first = capsys.readouterr()
        assert "stream written to" in first.err
        assert main(
            _MUTATE + ["--stream", saved, "--verify-cold", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["verify"]["identical"] is True
        assert len(doc["steps"]) == 2
        # Deterministic replay: same batches => same content hashes.
        assert doc["steps"][0]["content_hash"]

    def test_json_mode_reports_cache_turnover(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(
            _MUTATE
            + ["--generate", "1", "--cache-dir", cache, "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        step = doc["steps"][0]
        assert step["hosts_reused"] + step["hosts_rebuilt"] == 4
        partition = doc["cache"]["partition"]
        assert partition["reuses"] == step["cache_reuses"]
        assert partition["invalidations"] == step["cache_invalidations"]

    def test_incremental_strategy_reported_for_cc(self, capsys):
        assert main([
            "mutate", "--app", "cc", "--workload", "rmat22s",
            "--scale-delta", "-4", "--hosts", "2", "--policy", "iec",
            "--generate", "1", "--verify-cold", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["steps"][0]["strategy"] == "component"
        assert doc["verify"]["identical"] is True

    def test_trace_and_metrics_exports(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(
            _MUTATE
            + ["--generate", "1",
               "--trace", str(trace), "--metrics", str(metrics)]
        ) == 0
        capsys.readouterr()
        trace_doc = json.loads(trace.read_text())
        names = {event.get("name") for event in trace_doc["traceEvents"]}
        assert "delta-partition" in names
        assert "affected-frontier" in names
        metrics_doc = json.loads(metrics.read_text())
        counter_names = {
            name.split("{")[0] for name in metrics_doc["counters"]
        }
        assert "streaming_mutations_total" in counter_names


class TestRunStream:
    def test_run_stream_replays_and_summarizes(self, stream_file, capsys):
        assert main([
            "run", "--system", "d-galois", "--app", "bfs",
            "--workload", "rmat22s", "--scale-delta", "-4",
            "--hosts", "4", "--policy", "oec", "--stream", stream_file,
        ]) == 0
        out = capsys.readouterr().out
        assert "base run (version 0)" in out
        assert "mutation stream" in out
        assert "final version      : 2" in out

    def test_run_stream_json(self, stream_file, capsys):
        assert main([
            "run", "--system", "d-galois", "--app", "bfs",
            "--workload", "rmat22s", "--scale-delta", "-4",
            "--hosts", "2", "--stream", stream_file, "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["steps"]) == 2
        assert doc["steps"][1]["version"] == 2

    def test_incompatible_with_process_runtime(self, stream_file, capsys):
        with pytest.raises(SystemExit):
            main([
                "run", "--system", "d-galois", "--app", "bfs",
                "--workload", "rmat22s", "--stream", stream_file,
                "--runtime", "process",
            ])
        assert "--stream is incompatible" in capsys.readouterr().err

    def test_incompatible_with_fault_injection(self, stream_file, capsys):
        with pytest.raises(SystemExit):
            main([
                "run", "--system", "d-galois", "--app", "bfs",
                "--workload", "rmat22s", "--stream", stream_file,
                "--inject-fault", "crash:0@1",
            ])
        assert "--stream is incompatible" in capsys.readouterr().err

    def test_missing_stream_file_is_a_parser_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main([
                "run", "--system", "d-galois", "--app", "bfs",
                "--workload", "rmat22s", "--scale-delta", "-4",
                "--stream", str(tmp_path / "nope.json"),
            ])


class TestServeStream:
    def test_requires_serial_backend(self, stream_file, tmp_path, capsys):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            {"app": "bfs", "workload": "rmat22s", "scale_delta": -4,
             "hosts": 2},
        ]))
        with pytest.raises(SystemExit):
            main([
                "serve", str(jobs), "--stream", stream_file,
                "--backend", "process",
            ])
        assert "serial" in capsys.readouterr().err

    def test_live_graph_serving_shares_the_cache(
        self, stream_file, tmp_path, capsys
    ):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            {"app": "bfs", "workload": "rmat22s", "scale_delta": -4,
             "hosts": 4, "policy": "oec"},
            {"app": "pagerank", "workload": "rmat22s", "scale_delta": -4,
             "hosts": 4, "policy": "oec"},
        ]))
        assert main(["serve", str(jobs), "--stream", stream_file]) == 0
        out = capsys.readouterr().out
        assert "live-graph serve summary" in out
        assert out.count(" ok ") >= 2
        assert "partition cache" in out

    def test_json_mode_reports_per_job_steps(
        self, stream_file, tmp_path, capsys
    ):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            {"app": "bfs", "workload": "rmat22s", "scale_delta": -4,
             "hosts": 2},
        ]))
        assert main([
            "serve", str(jobs), "--stream", stream_file, "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["jobs"][0]["status"] == "ok"
        assert len(doc["jobs"][0]["steps"]) == 2
        assert "partition" in doc["stats"]

    def test_failing_job_reported_not_fatal(
        self, stream_file, tmp_path, capsys
    ):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            {"app": "bc", "workload": "rmat22s", "scale_delta": -4,
             "hosts": 2},  # multi-phase: streaming rejects it
            {"app": "bfs", "workload": "rmat22s", "scale_delta": -4,
             "hosts": 2},
        ]))
        assert main([
            "serve", str(jobs), "--stream", stream_file, "--json",
        ]) == 1
        doc = json.loads(capsys.readouterr().out)
        statuses = {job["job"]: job["status"] for job in doc["jobs"]}
        assert "failed" in statuses.values()
        assert "ok" in statuses.values()
