"""Tests for edge-list/CSR structural validation (streaming satellite)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    CSRGraph,
    EdgeList,
    find_dangling_vertices,
    find_duplicate_edges,
    find_isolated_vertices,
    validate_edge_list,
    validate_graph,
)


def make(num_nodes, pairs, weight=None):
    src = np.array([p[0] for p in pairs], dtype=np.uint32)
    dst = np.array([p[1] for p in pairs], dtype=np.uint32)
    return EdgeList(num_nodes, src, dst, weight)


class TestDuplicateEdges:
    def test_clean_list_has_none(self):
        edges = make(4, [(0, 1), (1, 2), (2, 3)])
        assert len(find_duplicate_edges(edges)) == 0

    def test_reports_repeats_not_first_occurrence(self):
        edges = make(4, [(0, 1), (1, 2), (0, 1), (0, 1)])
        assert find_duplicate_edges(edges).tolist() == [2, 3]

    def test_reverse_direction_is_not_a_duplicate(self):
        edges = make(3, [(0, 1), (1, 0)])
        assert len(find_duplicate_edges(edges)) == 0

    def test_empty_list(self):
        assert len(find_duplicate_edges(make(3, []))) == 0

    def test_no_aliasing_across_distinct_pairs(self):
        # (0, n-1) and (1, 0) must not collide under the packed key.
        n = 5
        edges = make(n, [(0, n - 1), (1, 0)])
        assert len(find_duplicate_edges(edges)) == 0


class TestIsolatedVertices:
    def test_reports_degree_zero_only(self):
        edges = make(5, [(0, 1), (1, 2)])
        assert find_isolated_vertices(edges).tolist() == [3, 4]

    def test_edgeless_graph_all_isolated(self):
        assert find_isolated_vertices(make(3, [])).tolist() == [0, 1, 2]

    def test_in_edge_suffices(self):
        edges = make(3, [(0, 2)])
        assert find_isolated_vertices(edges).tolist() == [1]


class TestDanglingVertices:
    def test_sink_with_in_edges_reported(self):
        edges = make(4, [(0, 1), (1, 2)])
        assert find_dangling_vertices(edges).tolist() == [2]

    def test_isolated_is_not_dangling(self):
        edges = make(4, [(0, 1), (1, 0)])
        assert len(find_dangling_vertices(edges)) == 0

    def test_self_loop_is_not_dangling(self):
        edges = make(2, [(0, 0)])
        assert len(find_dangling_vertices(edges)) == 0


class TestValidateEdgeList:
    def test_duplicates_rejected_by_default(self):
        edges = make(3, [(0, 1), (0, 1)])
        with pytest.raises(GraphError, match="duplicate"):
            validate_edge_list(edges)

    def test_duplicates_allowed_when_opted_in(self):
        edges = make(3, [(0, 1), (0, 1)])
        validate_edge_list(edges, allow_duplicates=True)

    def test_isolated_allowed_by_default(self):
        validate_edge_list(make(5, [(0, 1)]))

    def test_isolated_rejected_when_opted_out(self):
        with pytest.raises(GraphError, match="isolated"):
            validate_edge_list(make(5, [(0, 1)]), allow_isolated=False)

    def test_clean_list_passes_strict(self):
        edges = make(3, [(0, 1), (1, 2), (2, 0)])
        validate_edge_list(edges, allow_isolated=False)


class TestValidateGraph:
    def test_valid_csr_passes(self):
        edges = make(4, [(0, 1), (1, 2), (2, 3)])
        validate_graph(CSRGraph.from_edgelist(edges))

    def test_corrupted_indptr_rejected(self):
        graph = CSRGraph.from_edgelist(make(4, [(0, 1), (1, 2)]))
        graph.indptr[0] = 1
        with pytest.raises(GraphError, match="indptr"):
            validate_graph(graph)

    def test_out_of_range_destination_rejected(self):
        graph = CSRGraph.from_edgelist(make(3, [(0, 1)]))
        graph.indices[0] = 99
        with pytest.raises(GraphError, match="out of range"):
            validate_graph(graph)
