"""Unit tests for repro.graph.io."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.edgelist import EdgeList
from repro.graph.generators import rmat
from repro.graph.io import (
    read_binary,
    read_edgelist,
    write_binary,
    write_edgelist,
)


def sample(weighted=False):
    src = np.array([0, 1, 2], dtype=np.uint32)
    dst = np.array([1, 2, 0], dtype=np.uint32)
    w = np.array([5, 6, 7], dtype=np.uint32) if weighted else None
    return EdgeList(4, src, dst, w)


class TestTextFormat:
    def test_roundtrip_unweighted(self, tmp_path):
        path = tmp_path / "g.txt"
        edges = sample()
        write_edgelist(edges, path)
        back = read_edgelist(path)
        assert back.num_nodes == 4
        assert np.array_equal(back.src, edges.src)
        assert np.array_equal(back.dst, edges.dst)
        assert back.weight is None

    def test_roundtrip_weighted(self, tmp_path):
        path = tmp_path / "g.txt"
        edges = sample(weighted=True)
        write_edgelist(edges, path)
        back = read_edgelist(path)
        assert np.array_equal(back.weight, edges.weight)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n\n0 1\n# another\n1 2\n")
        back = read_edgelist(path)
        assert back.num_edges == 2
        assert back.num_nodes == 3  # inferred max endpoint + 1

    def test_node_header_respected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nodes: 10\n0 1\n")
        assert read_edgelist(path).num_nodes == 10

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nodes: lots\n0 1\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path)

    def test_bad_field_count_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path)

    def test_mixed_weighting_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2 5\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 x\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path)


class TestBinaryFormat:
    def test_roundtrip_unweighted(self, tmp_path):
        path = tmp_path / "g.bin"
        edges = sample()
        write_binary(edges, path)
        back = read_binary(path)
        assert back.num_nodes == edges.num_nodes
        assert np.array_equal(back.src, edges.src)
        assert np.array_equal(back.dst, edges.dst)

    def test_roundtrip_weighted(self, tmp_path):
        path = tmp_path / "g.bin"
        edges = sample(weighted=True)
        write_binary(edges, path)
        back = read_binary(path)
        assert np.array_equal(back.weight, edges.weight)

    def test_roundtrip_generated_graph(self, tmp_path):
        path = tmp_path / "g.bin"
        edges = rmat(scale=8, edge_factor=4, seed=9)
        write_binary(edges, path)
        back = read_binary(path)
        assert np.array_equal(back.src, edges.src)
        assert np.array_equal(back.dst, edges.dst)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "g.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 30)
        with pytest.raises(GraphFormatError):
            read_binary(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "g.bin"
        path.write_bytes(b"GLUG")
        with pytest.raises(GraphFormatError):
            read_binary(path)

    def test_truncated_body_rejected(self, tmp_path):
        path = tmp_path / "g.bin"
        write_binary(sample(), path)
        data = path.read_bytes()
        path.write_bytes(data[:-2])
        with pytest.raises(GraphFormatError):
            read_binary(path)

    def test_empty_graph_roundtrip(self, tmp_path):
        path = tmp_path / "g.bin"
        edges = EdgeList(5, np.array([], np.uint32), np.array([], np.uint32))
        write_binary(edges, path)
        back = read_binary(path)
        assert back.num_nodes == 5
        assert back.num_edges == 0
