"""Unit tests for repro.graph.properties and validation."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import star_graph
from repro.graph.properties import compute_properties
from repro.graph.validation import validate_graph


class TestProperties:
    def test_star_graph_properties(self):
        props = compute_properties(star_graph(11), name="star")
        assert props.name == "star"
        assert props.num_nodes == 11
        assert props.num_edges == 10
        assert props.max_out_degree == 10
        assert props.max_in_degree == 1

    def test_accepts_edgelist_and_csr(self):
        edges = star_graph(5)
        from_list = compute_properties(edges)
        from_csr = compute_properties(CSRGraph.from_edgelist(edges))
        assert from_list.num_edges == from_csr.num_edges

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            compute_properties([[0, 1]])

    def test_empty_graph(self):
        edges = EdgeList(0, np.array([], np.uint32), np.array([], np.uint32))
        props = compute_properties(edges)
        assert props.num_nodes == 0
        assert props.avg_degree == 0.0
        assert props.max_out_degree == 0

    def test_as_row_keys(self):
        row = compute_properties(star_graph(4), name="s").as_row()
        assert set(row) == {
            "input",
            "|V|",
            "|E|",
            "|E|/|V|",
            "max Dout",
            "max Din",
        }

    def test_avg_degree(self):
        props = compute_properties(star_graph(5))
        assert props.avg_degree == pytest.approx(4 / 5)


class TestValidation:
    def test_valid_graph_passes(self):
        g = CSRGraph.from_edges(
            3, np.array([0, 1], np.uint32), np.array([1, 2], np.uint32)
        )
        validate_graph(g)  # must not raise

    def test_detects_corrupted_indices(self):
        g = CSRGraph.from_edges(
            3, np.array([0, 1], np.uint32), np.array([1, 2], np.uint32)
        )
        g.indices[0] = 99  # corrupt in place
        with pytest.raises(GraphError):
            validate_graph(g)

    def test_detects_corrupted_indptr(self):
        g = CSRGraph.from_edges(
            3, np.array([0, 1], np.uint32), np.array([1, 2], np.uint32)
        )
        g.indptr[1] = 5
        with pytest.raises(GraphError):
            validate_graph(g)
