"""Unit tests for repro.graph.edgelist."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.edgelist import EdgeList


def make(num_nodes, pairs, weights=None):
    src = np.array([p[0] for p in pairs], dtype=np.uint32)
    dst = np.array([p[1] for p in pairs], dtype=np.uint32)
    w = None if weights is None else np.array(weights, dtype=np.uint32)
    return EdgeList(num_nodes, src, dst, w)


class TestConstruction:
    def test_basic(self):
        edges = make(3, [(0, 1), (1, 2)])
        assert edges.num_nodes == 3
        assert edges.num_edges == 2
        assert not edges.has_weights

    def test_empty(self):
        edges = make(5, [])
        assert edges.num_edges == 0
        assert edges.num_nodes == 5

    def test_zero_nodes(self):
        edges = make(0, [])
        assert edges.num_nodes == 0

    def test_negative_nodes_rejected(self):
        with pytest.raises(GraphError):
            EdgeList(-1, np.array([], np.uint32), np.array([], np.uint32))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(GraphError):
            EdgeList(
                3,
                np.array([0, 1], np.uint32),
                np.array([1], np.uint32),
            )

    def test_endpoint_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            make(2, [(0, 2)])

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(GraphError):
            make(3, [(0, 1), (1, 2)], weights=[5])

    def test_arrays_coerced_to_uint32(self):
        edges = EdgeList(3, np.array([0, 1]), np.array([1, 2]))
        assert edges.src.dtype == np.uint32
        assert edges.dst.dtype == np.uint32


class TestWeights:
    def test_with_unit_weights(self):
        edges = make(3, [(0, 1), (1, 2)]).with_unit_weights()
        assert edges.has_weights
        assert np.all(edges.weight == 1)

    def test_with_unit_weights_is_noop_when_weighted(self):
        edges = make(3, [(0, 1)], weights=[7])
        assert edges.with_unit_weights() is edges

    def test_with_random_weights_in_range(self):
        rng = np.random.default_rng(0)
        edges = make(4, [(0, 1), (1, 2), (2, 3)]).with_random_weights(
            rng, low=2, high=9
        )
        assert edges.weight.min() >= 2
        assert edges.weight.max() <= 9

    def test_with_random_weights_bad_range(self):
        rng = np.random.default_rng(0)
        with pytest.raises(GraphError):
            make(2, [(0, 1)]).with_random_weights(rng, low=5, high=3)


class TestDeduplicate:
    def test_removes_duplicates(self):
        edges = make(3, [(0, 1), (0, 1), (1, 2)]).deduplicate()
        assert edges.num_edges == 2

    def test_keeps_min_weight_among_duplicates(self):
        edges = make(
            3, [(0, 1), (0, 1), (1, 2)], weights=[9, 4, 7]
        ).deduplicate()
        assert edges.num_edges == 2
        pairs = {
            (int(s), int(d)): int(w)
            for s, d, w in zip(edges.src, edges.dst, edges.weight)
        }
        assert pairs[(0, 1)] == 4
        assert pairs[(1, 2)] == 7

    def test_empty_noop(self):
        edges = make(3, [])
        assert edges.deduplicate().num_edges == 0


class TestTransforms:
    def test_remove_self_loops(self):
        edges = make(3, [(0, 0), (0, 1), (2, 2)]).remove_self_loops()
        assert edges.num_edges == 1
        assert (int(edges.src[0]), int(edges.dst[0])) == (0, 1)

    def test_symmetrize_adds_reverse(self):
        edges = make(3, [(0, 1)]).symmetrize()
        pairs = set(zip(edges.src.tolist(), edges.dst.tolist()))
        assert pairs == {(0, 1), (1, 0)}

    def test_symmetrize_deduplicates(self):
        edges = make(2, [(0, 1), (1, 0)]).symmetrize()
        assert edges.num_edges == 2

    def test_symmetrize_preserves_weights(self):
        edges = make(2, [(0, 1)], weights=[5]).symmetrize()
        assert edges.has_weights
        assert np.all(edges.weight == 5)

    def test_reversed_flips_direction(self):
        edges = make(3, [(0, 1), (1, 2)]).reversed()
        pairs = set(zip(edges.src.tolist(), edges.dst.tolist()))
        assert pairs == {(1, 0), (2, 1)}

    def test_reversed_twice_is_identity(self):
        edges = make(3, [(0, 1), (1, 2)])
        back = edges.reversed().reversed()
        assert np.array_equal(back.src, edges.src)
        assert np.array_equal(back.dst, edges.dst)
