"""Unit tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    kronecker,
    path_graph,
    rmat,
    star_graph,
    twitter_like,
    web_like,
)


class TestRmat:
    def test_node_count_is_power_of_two(self):
        edges = rmat(scale=6, edge_factor=4, seed=0)
        assert edges.num_nodes == 64

    def test_deterministic_for_seed(self):
        a = rmat(scale=7, edge_factor=4, seed=5)
        b = rmat(scale=7, edge_factor=4, seed=5)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dst, b.dst)

    def test_different_seeds_differ(self):
        a = rmat(scale=7, edge_factor=4, seed=5)
        b = rmat(scale=7, edge_factor=4, seed=6)
        assert not (
            np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)
        )

    def test_no_self_loops_by_default(self):
        edges = rmat(scale=7, edge_factor=8, seed=1)
        assert not np.any(edges.src == edges.dst)

    def test_no_duplicates_by_default(self):
        edges = rmat(scale=7, edge_factor=8, seed=1)
        keys = edges.src.astype(np.uint64) * edges.num_nodes + edges.dst
        assert len(np.unique(keys)) == len(keys)

    def test_degree_skew(self):
        """graph500 probabilities concentrate edges at low node IDs."""
        edges = rmat(scale=10, edge_factor=8, seed=2)
        degrees = np.bincount(edges.src, minlength=edges.num_nodes)
        assert degrees.max() > 10 * max(degrees.mean(), 1)

    def test_invalid_scale(self):
        with pytest.raises(GraphError):
            rmat(scale=-1)
        with pytest.raises(GraphError):
            rmat(scale=31)

    def test_bad_probabilities_rejected(self):
        with pytest.raises(GraphError):
            rmat(scale=5, probs=(0.5, 0.5, 0.5, 0.5))


class TestKronecker:
    def test_symmetric(self):
        edges = kronecker(scale=7, edge_factor=8, seed=0)
        pairs = set(zip(edges.src.tolist(), edges.dst.tolist()))
        assert all((d, s) in pairs for s, d in pairs)

    def test_no_self_loops(self):
        edges = kronecker(scale=7, edge_factor=8, seed=0)
        assert not np.any(edges.src == edges.dst)


class TestStandIns:
    def test_twitter_like_out_skew(self):
        edges = twitter_like(scale=10, seed=7)
        g = CSRGraph.from_edgelist(edges)
        assert g.out_degree().max() >= g.in_degree().max()

    def test_web_like_in_skew(self):
        """Web crawls have far larger max in-degree than out-degree."""
        edges = web_like(scale=10, seed=11)
        g = CSRGraph.from_edgelist(edges)
        assert g.in_degree().max() > g.out_degree().max()


class TestErdosRenyi:
    def test_average_degree_roughly_matches(self):
        edges = erdos_renyi(2000, avg_degree=5.0, seed=1)
        observed = edges.num_edges / edges.num_nodes
        assert 3.5 < observed < 5.5  # dedup removes a few

    def test_empty(self):
        assert erdos_renyi(0, 5.0).num_edges == 0
        assert erdos_renyi(10, 0.0).num_edges == 0

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            erdos_renyi(-1, 2.0)
        with pytest.raises(GraphError):
            erdos_renyi(5, -2.0)


class TestDeterministicTopologies:
    def test_path(self):
        edges = path_graph(5)
        assert edges.num_edges == 4
        assert edges.src.tolist() == [0, 1, 2, 3]
        assert edges.dst.tolist() == [1, 2, 3, 4]

    def test_path_tiny(self):
        assert path_graph(0).num_edges == 0
        assert path_graph(1).num_edges == 0

    def test_cycle(self):
        edges = cycle_graph(4)
        assert edges.num_edges == 4
        assert (int(edges.src[-1]), int(edges.dst[-1])) == (3, 0)

    def test_star(self):
        edges = star_graph(6)
        assert edges.num_edges == 5
        assert np.all(edges.src == 0)

    def test_star_requires_center(self):
        with pytest.raises(GraphError):
            star_graph(0)

    def test_complete(self):
        edges = complete_graph(4)
        assert edges.num_edges == 12
        assert not np.any(edges.src == edges.dst)

    def test_grid_symmetric_degree(self):
        edges = grid_graph(3, 3)
        g = CSRGraph.from_edgelist(edges)
        # Corner nodes have degree 2, center 4.
        assert g.out_degree(0) == 2
        assert g.out_degree(4) == 4
        assert np.array_equal(g.out_degree(), g.in_degree())

    def test_grid_single_row(self):
        edges = grid_graph(1, 4)
        assert edges.num_edges == 6  # 3 undirected edges

    def test_grid_empty(self):
        assert grid_graph(0, 5).num_edges == 0
