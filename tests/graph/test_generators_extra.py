"""Tests for the Barabási–Albert and Watts–Strogatz generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.generators import barabasi_albert, watts_strogatz
from tests.conftest import reference_cc


class TestBarabasiAlbert:
    def test_symmetric(self):
        edges = barabasi_albert(200, attach=3, seed=1)
        pairs = set(zip(edges.src.tolist(), edges.dst.tolist()))
        assert all((d, s) in pairs for s, d in pairs)

    def test_deterministic(self):
        a = barabasi_albert(100, attach=2, seed=7)
        b = barabasi_albert(100, attach=2, seed=7)
        assert np.array_equal(a.src, b.src)

    def test_degree_skew(self):
        """Preferential attachment produces hub nodes."""
        edges = barabasi_albert(500, attach=3, seed=2)
        g = CSRGraph.from_edgelist(edges)
        degrees = g.out_degree()
        assert degrees.max() > 4 * degrees.mean()

    def test_connected(self):
        """BA growth keeps the graph connected."""
        edges = barabasi_albert(150, attach=2, seed=3)
        labels = reference_cc(edges)
        assert len(np.unique(labels)) == 1

    def test_validation(self):
        with pytest.raises(GraphError):
            barabasi_albert(3, attach=3)
        with pytest.raises(GraphError):
            barabasi_albert(10, attach=0)


class TestWattsStrogatz:
    def test_symmetric(self):
        edges = watts_strogatz(100, nearest=4, rewire=0.2, seed=1)
        pairs = set(zip(edges.src.tolist(), edges.dst.tolist()))
        assert all((d, s) in pairs for s, d in pairs)

    def test_zero_rewire_is_ring_lattice(self):
        edges = watts_strogatz(20, nearest=2, rewire=0.0, seed=0)
        g = CSRGraph.from_edgelist(edges)
        # Every node has exactly 2*nearest neighbours in a pure lattice.
        assert np.all(g.out_degree() == 4)

    def test_rewiring_changes_structure(self):
        lattice = watts_strogatz(100, nearest=3, rewire=0.0, seed=5)
        rewired = watts_strogatz(100, nearest=3, rewire=0.5, seed=5)
        a = set(zip(lattice.src.tolist(), lattice.dst.tolist()))
        b = set(zip(rewired.src.tolist(), rewired.dst.tolist()))
        assert a != b

    def test_validation(self):
        with pytest.raises(GraphError):
            watts_strogatz(2, nearest=1)
        with pytest.raises(GraphError):
            watts_strogatz(10, nearest=0)
        with pytest.raises(GraphError):
            watts_strogatz(10, nearest=2, rewire=1.5)


class TestNewGeneratorsEndToEnd:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: barabasi_albert(300, attach=3, seed=9),
            lambda: watts_strogatz(300, nearest=4, rewire=0.1, seed=9),
        ],
    )
    def test_bfs_correct_on_new_shapes(self, builder):
        from repro.systems import prepare_input, run_app
        from tests.conftest import reference_bfs

        edges = builder()
        prep = prepare_input("bfs", edges)
        expected = reference_bfs(prep.edges, prep.ctx.source)
        result = run_app(
            "d-galois", "bfs", edges, num_hosts=4, policy="cvc"
        )
        got = result.executor.gather_result("dist").astype(np.uint64)
        assert np.array_equal(got, expected)
