"""Unit tests for repro.graph.csr."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList


def build(num_nodes, pairs, weights=None):
    src = np.array([p[0] for p in pairs], dtype=np.uint32)
    dst = np.array([p[1] for p in pairs], dtype=np.uint32)
    w = None if weights is None else np.array(weights, dtype=np.uint32)
    return CSRGraph.from_edges(num_nodes, src, dst, w)


class TestConstruction:
    def test_from_edges_counts(self):
        g = build(4, [(0, 1), (0, 2), (2, 3)])
        assert g.num_nodes == 4
        assert g.num_edges == 3

    def test_from_edgelist(self):
        edges = EdgeList(
            3, np.array([0, 1], np.uint32), np.array([1, 2], np.uint32)
        )
        g = CSRGraph.from_edgelist(edges)
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_empty_graph(self):
        g = build(3, [])
        assert g.num_edges == 0
        assert g.out_degree(0) == 0

    def test_isolated_trailing_node(self):
        g = build(5, [(0, 1)])
        assert g.out_degree(4) == 0
        assert len(g.neighbors(4)) == 0

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphError):
            build(2, [(0, 3)])

    def test_mismatched_src_dst_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(
                3, np.array([0], np.uint32), np.array([1, 2], np.uint32)
            )

    def test_bad_indptr_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0], np.uint32))

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 0, 0], np.uint32))

    def test_weight_shape_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(
                np.array([0, 1]),
                np.array([0], np.uint32),
                np.array([1, 2], np.uint32),
            )


class TestAccessors:
    def test_neighbors_sorted_per_source(self):
        g = build(4, [(1, 3), (0, 2), (1, 0)])
        assert set(g.neighbors(1).tolist()) == {3, 0}
        assert g.neighbors(0).tolist() == [2]

    def test_out_degree_array(self):
        g = build(3, [(0, 1), (0, 2), (1, 2)])
        assert g.out_degree().tolist() == [2, 1, 0]

    def test_in_degree_array(self):
        g = build(3, [(0, 1), (0, 2), (1, 2)])
        assert g.in_degree().tolist() == [0, 1, 2]

    def test_out_degree_scalar(self):
        g = build(3, [(0, 1), (0, 2)])
        assert g.out_degree(0) == 2
        assert g.in_degree(2) == 1

    def test_degree_out_of_range(self):
        g = build(2, [(0, 1)])
        with pytest.raises(IndexError):
            g.out_degree(5)
        with pytest.raises(IndexError):
            g.in_degree(-1)
        with pytest.raises(IndexError):
            g.neighbors(2)

    def test_edges_roundtrip(self):
        pairs = [(0, 1), (0, 2), (2, 3), (3, 0)]
        g = build(4, pairs)
        src, dst = g.edges()
        assert sorted(zip(src.tolist(), dst.tolist())) == sorted(pairs)

    def test_edge_weights_of(self):
        g = build(3, [(0, 1), (0, 2)], weights=[5, 9])
        assert sorted(g.edge_weights_of(0).tolist()) == [5, 9]

    def test_edge_weights_of_unweighted_defaults_to_ones(self):
        g = build(3, [(0, 1), (0, 2)])
        assert g.edge_weights_of(0).tolist() == [1, 1]


class TestTranspose:
    def test_transpose_reverses_edges(self):
        g = build(3, [(0, 1), (1, 2)])
        t = g.transpose()
        assert t.neighbors(1).tolist() == [0]
        assert t.neighbors(2).tolist() == [1]

    def test_transpose_cached(self):
        g = build(3, [(0, 1)])
        assert g.transpose() is g.transpose()

    def test_transpose_preserves_weights(self):
        g = build(3, [(0, 1)], weights=[7])
        t = g.transpose()
        assert t.has_weights
        assert t.edge_weights_of(1).tolist() == [7]

    def test_double_transpose_equals_original(self):
        g = build(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        assert g.transpose().transpose() == g


class TestEquality:
    def test_equal_graphs(self):
        a = build(3, [(0, 1), (1, 2)])
        b = build(3, [(0, 1), (1, 2)])
        assert a == b

    def test_unequal_structure(self):
        assert build(3, [(0, 1)]) != build(3, [(0, 2)])

    def test_weighted_vs_unweighted(self):
        assert build(2, [(0, 1)]) != build(2, [(0, 1)], weights=[1])

    def test_repr_mentions_counts(self):
        text = repr(build(3, [(0, 1)]))
        assert "num_nodes=3" in text and "num_edges=1" in text
