"""Chrome trace export: schema validity, process layout, summaries."""

import json

import pytest

from repro import generators, run_app
from repro.observability import (
    Observability,
    chrome_trace,
    round_table,
    write_chrome_trace,
    write_metrics,
)
from repro.observability.summary import (
    TraceFileError,
    host_rows,
    load_trace,
    phase_byte_rows,
    summarize_trace,
    top_span_rows,
)

NUM_HOSTS = 4


@pytest.fixture(scope="module")
def traced_run():
    obs = Observability()
    edges = generators.rmat(scale=8, edge_factor=8, seed=3)
    result = run_app(
        "d-galois", "bfs", edges, num_hosts=NUM_HOSTS, policy="cvc",
        observability=obs,
    )
    return result, obs


@pytest.fixture(scope="module")
def trace_doc(traced_run):
    _, obs = traced_run
    return chrome_trace(obs.tracer, run_info={"app": "bfs"})


class TestChromeTraceSchema:
    def test_document_is_json_serializable(self, trace_doc):
        json.dumps(trace_doc)

    def test_events_are_well_formed(self, trace_doc):
        events = trace_doc["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in ("X", "M")  # complete or metadata only
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                # Complete events need ts+dur; no B/E to leave unmatched.
                assert event["ts"] >= 0
                assert event["dur"] >= 0
                assert isinstance(event["name"], str) and event["name"]
                assert isinstance(event["args"], dict)

    def test_one_process_per_host_plus_driver(self, trace_doc):
        names = {
            e["pid"]: e["args"]["name"]
            for e in trace_doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[0] == "driver"
        for h in range(NUM_HOSTS):
            assert names[h + 1] == f"host {h}"
        assert len(names) == NUM_HOSTS + 1

    def test_every_round_and_phase_has_spans(self, traced_run, trace_doc):
        result, _ = traced_run
        events = [e for e in trace_doc["traceEvents"] if e["ph"] == "X"]
        round_events = [e for e in events if e["name"] == "round"]
        # One round span per host per executed round.
        assert len(round_events) == result.num_rounds * NUM_HOSTS
        rounds_seen = {e["args"]["round"] for e in round_events}
        assert rounds_seen == set(range(1, result.num_rounds + 1))
        phase_events = [e for e in events if e["cat"] == "sync-phase"]
        phase_rounds = {e["args"]["round"] for e in phase_events}
        assert phase_rounds == rounds_seen
        # Per-field spans survive aggregation (sub-message byte
        # attribution); the frames' header bytes get their own spans.
        assert {e["name"] for e in phase_events} == {
            "reduce:dist", "broadcast:dist",
            "framing:reduce", "framing:broadcast",
        }

    def test_spans_tagged_with_run_identity(self, trace_doc):
        round_events = [
            e for e in trace_doc["traceEvents"] if e["name"] == "round"
        ]
        for event in round_events:
            assert event["args"]["app"] == "bfs"
            assert event["args"]["policy"] == "cvc"

    def test_phase_spans_nest_inside_sync_window(self, traced_run):
        _, obs = traced_run
        tracer = obs.tracer
        for sync in tracer.spans_named("sync"):
            phases = [
                s
                for s in tracer.spans_for_host(sync.host)
                if s.cat == "sync-phase"
                and s.tags.get("round") == sync.tags.get("round")
            ]
            assert phases
            for phase in phases:
                assert sync.contains(phase)

    def test_write_reads_back(self, traced_run, tmp_path):
        _, obs = traced_run
        path = tmp_path / "trace.json"
        written = write_chrome_trace(obs.tracer, path)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(written))
        assert loaded["otherData"]["clock"].startswith("simulated")


class TestTraceSummary:
    @pytest.fixture(scope="class")
    def trace_path(self, traced_run, tmp_path_factory):
        _, obs = traced_run
        path = tmp_path_factory.mktemp("traces") / "trace.json"
        write_chrome_trace(obs.tracer, path)
        return path

    def test_host_rows_cover_all_hosts(self, trace_path):
        rows = host_rows(load_trace(trace_path))
        assert [row["host"] for row in rows] == [
            f"host {h}" for h in range(NUM_HOSTS)
        ]
        for row in rows:
            assert 0.0 <= row["busy_pct"] <= 100.0

    def test_phase_bytes_match_run_volume(self, traced_run, trace_path):
        result, _ = traced_run
        rows = phase_byte_rows(load_trace(trace_path))
        total = sum(row["KB"] * 1e3 for row in rows)
        assert round(total) == result.communication_volume

    def test_top_spans_ranked_by_total(self, trace_path):
        rows = top_span_rows(load_trace(trace_path), limit=5)
        assert len(rows) == 5
        totals = [row["total_ms"] for row in rows]
        assert totals == sorted(totals, reverse=True)

    def test_summarize_trace_bundle(self, trace_path):
        summary = summarize_trace(trace_path)
        assert set(summary) == {"hosts", "phases", "top_spans"}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceFileError, match="no trace file"):
            load_trace(tmp_path / "nope.json")

    def test_non_trace_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a trace"}')
        with pytest.raises(TraceFileError, match="traceEvents"):
            load_trace(bad)


class TestOtherExporters:
    def test_metrics_dump_picks_format_by_suffix(self, traced_run, tmp_path):
        _, obs = traced_run
        json_path = tmp_path / "m.json"
        csv_path = tmp_path / "m.csv"
        write_metrics(obs.metrics, json_path)
        write_metrics(obs.metrics, csv_path)
        assert "counters" in json.loads(json_path.read_text())
        assert csv_path.read_text().startswith("kind,name,labels,stat,value")

    def test_round_table_lists_every_round(self, traced_run):
        result, _ = traced_run
        table = round_table(result)
        lines = table.strip().splitlines()
        # title + header + separator + one line per round
        assert len(lines) == 3 + result.num_rounds

    def test_round_table_limit_truncates(self, traced_run):
        result, _ = traced_run
        table = round_table(result, limit=1)
        assert f"({result.num_rounds - 1} more rounds)" in table
