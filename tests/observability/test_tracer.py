"""Tracer unit tests: span recording, nesting, ordering, null path."""

import pytest

from repro.observability import (
    DRIVER,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)


class TestSpanRecording:
    def test_record_returns_the_span(self):
        tracer = Tracer()
        span = tracer.record(
            "compute", cat="compute", host=2, begin_s=1.0, duration_s=0.5,
            round=3,
        )
        assert span is tracer.spans[0]
        assert span.name == "compute"
        assert span.host == 2
        assert span.end_s == 1.5
        assert span.tags == {"round": 3}

    def test_recording_order_is_preserved(self):
        tracer = Tracer()
        for i in range(5):
            tracer.record(f"s{i}", begin_s=float(i), duration_s=1.0)
        assert [s.name for s in tracer.spans] == [f"s{i}" for i in range(5)]

    def test_sequential_spans_tile_the_driver_timeline(self):
        tracer = Tracer()
        a = tracer.record_sequential("partition", 2.0, cat="construction")
        b = tracer.record_sequential("memoization", 1.0, cat="construction")
        assert a.begin_s == 0.0 and a.end_s == 2.0
        assert b.begin_s == 2.0 and b.end_s == 3.0
        assert tracer.cursor == 3.0
        assert a.host == DRIVER and b.host == DRIVER

    def test_spans_for_host_filters(self):
        tracer = Tracer()
        tracer.record("a", host=0, begin_s=0, duration_s=1)
        tracer.record("b", host=1, begin_s=0, duration_s=1)
        tracer.record("c", host=0, begin_s=1, duration_s=1)
        assert [s.name for s in tracer.spans_for_host(0)] == ["a", "c"]
        assert [s.name for s in tracer.spans_named("b")] == ["b"]


class TestNesting:
    def test_containment_defines_children(self):
        tracer = Tracer()
        parent = tracer.record("round", host=0, begin_s=0.0, duration_s=10.0)
        child = tracer.record("compute", host=0, begin_s=0.0, duration_s=4.0)
        grandchild = tracer.record("sync", host=0, begin_s=4.0, duration_s=6.0)
        other_host = tracer.record("compute", host=1, begin_s=1.0, duration_s=1.0)
        outside = tracer.record("late", host=0, begin_s=9.0, duration_s=5.0)
        children = tracer.children_of(parent)
        assert child in children and grandchild in children
        assert other_host not in children  # different track
        assert outside not in children  # overlaps but not contained

    def test_contains_requires_same_host(self):
        a = Span("a", "", 0, 0.0, 10.0)
        b = Span("b", "", 1, 2.0, 1.0)
        assert not a.contains(b)


class TestNullTracer:
    def test_record_is_a_no_op(self):
        tracer = NullTracer()
        assert tracer.record("x", begin_s=0, duration_s=1) is None
        assert tracer.record_sequential("y", 1.0) is None
        assert tracer.spans == ()
        assert tracer.cursor == 0.0

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is True

    def test_null_tracer_never_allocates_spans(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("Span allocated on the no-op path")

        monkeypatch.setattr(Span, "__init__", boom)
        NULL_TRACER.record("x", begin_s=0, duration_s=1)
        NULL_TRACER.record_sequential("y", 1.0)

    def test_null_spans_tuple_rejects_append(self):
        with pytest.raises(AttributeError):
            NULL_TRACER.spans.append("x")
