"""Observability wired through the runtime: reconciliation, no-op path,
resilience spans, and executor timeline invariants."""

import pytest

from repro import generators, run_app
from repro.observability import NULL_OBSERVABILITY, Observability, Span
from repro.observability.metrics import Counter, Gauge, Histogram
from repro.resilience import FaultPlan, ResilienceConfig


def small_edges(seed=0):
    return generators.rmat(scale=8, edge_factor=8, seed=seed)


class TestMetricsReconciliation:
    @pytest.fixture(scope="class")
    def observed_bfs(self):
        obs = Observability()
        result = run_app(
            "d-galois", "bfs", small_edges(), num_hosts=4, policy="cvc",
            observability=obs,
        )
        return result, obs

    def test_byte_counters_reconcile_exactly_with_commstats(self, observed_bfs):
        result, obs = observed_bfs
        stats = result.executor.transport.stats
        assert obs.metrics.counter_total("bytes_sent_total") == stats.total_bytes
        assert obs.metrics.counter_total("bytes_recv_total") == stats.total_bytes
        assert obs.metrics.counter_total("messages_total") == stats.total_messages
        assert obs.metrics.histogram("message_size_bytes").total == (
            stats.total_bytes
        )

    def test_byte_counters_reconcile_with_run_result(self, observed_bfs):
        result, obs = observed_bfs
        assert obs.metrics.counter_total("bytes_sent_total") == (
            result.communication_volume + result.construction_bytes
        )
        assert obs.metrics.counter("construction_bytes_total").value == (
            result.construction_bytes
        )

    def test_per_host_send_counters_match_pair_bytes(self, observed_bfs):
        result, obs = observed_bfs
        stats = result.executor.transport.stats
        for h in range(4):
            expected = sum(stats.pair_bytes(h, d) for d in range(4))
            assert obs.metrics.counter("bytes_sent_total", host=h).value == (
                expected
            )

    def test_round_and_mode_metrics_match_result(self, observed_bfs):
        result, obs = observed_bfs
        assert obs.metrics.counter("rounds_total").value == result.num_rounds
        assert obs.metrics.histogram("round_bytes").total == (
            result.communication_volume
        )
        mode_counts = {
            mode.name: count for mode, count in result.mode_counts.items()
        }
        for name, count in mode_counts.items():
            assert obs.metrics.counter(
                "metadata_mode_total", mode=name
            ).value == count

    def test_metrics_snapshot_attached_to_result(self, observed_bfs):
        result, obs = observed_bfs
        assert result.metrics == obs.metrics.to_dict()
        assert result.metrics["counters"]["rounds_total"] == result.num_rounds


class TestNoOpPath:
    def test_default_executor_holds_the_null_singletons(self):
        result = run_app(
            "d-galois", "bfs", small_edges(), num_hosts=2, policy="oec"
        )
        executor = result.executor
        assert executor.obs is NULL_OBSERVABILITY
        assert executor.tracer.enabled is False
        assert executor.metrics.enabled is False
        assert executor.tracer.spans == ()
        assert executor.metrics.instruments() == []
        assert result.metrics == {}

    def test_untraced_run_allocates_no_spans_or_samples(self, monkeypatch):
        def forbid(cls):
            def boom(self, *args, **kwargs):
                raise AssertionError(
                    f"{cls.__name__} allocated during an untraced run"
                )

            return boom

        for cls in (Span, Counter, Gauge, Histogram):
            monkeypatch.setattr(cls, "__init__", forbid(cls))
        result = run_app(
            "d-galois", "bfs", small_edges(1), num_hosts=2, policy="oec"
        )
        assert result.converged

    def test_untraced_results_match_traced_results(self):
        plain = run_app(
            "d-galois", "sssp", small_edges(2), num_hosts=4, policy="iec"
        )
        traced = run_app(
            "d-galois", "sssp", small_edges(2), num_hosts=4, policy="iec",
            observability=Observability(),
        )
        assert plain.num_rounds == traced.num_rounds
        assert plain.communication_volume == traced.communication_volume
        assert plain.total_time == traced.total_time


class TestExecutorTimeline:
    @pytest.fixture(scope="class")
    def traced(self):
        obs = Observability()
        result = run_app(
            "d-galois", "bfs", small_edges(4), num_hosts=3, policy="cvc",
            observability=obs,
        )
        return result, obs.tracer

    @pytest.fixture(scope="class")
    def tracer(self, traced):
        return traced[1]

    def test_construction_precedes_rounds(self, tracer):
        partition = tracer.spans_named("partition")[0]
        memoization = tracer.spans_named("memoization")[0]
        first_round = tracer.spans_named("round")[0]
        assert partition.end_s <= memoization.begin_s + 1e-12
        assert memoization.end_s <= first_round.begin_s + 1e-12

    def test_rounds_advance_monotonically(self, tracer):
        rounds = tracer.spans_for_host(0)
        round_spans = [s for s in rounds if s.name == "round"]
        for earlier, later in zip(round_spans, round_spans[1:]):
            assert earlier.tags["round"] + 1 == later.tags["round"]
            assert later.begin_s >= earlier.end_s - 1e-12

    def test_compute_and_sync_nest_inside_round(self, tracer):
        for round_span in tracer.spans_named("round"):
            children = tracer.children_of(round_span)
            names = {c.name for c in children}
            assert "compute" in names and "sync" in names

    def test_sync_span_bytes_sum_to_round_bytes(self, traced):
        result, tracer = traced
        by_round = {}
        for span in tracer.spans_named("sync"):
            by_round.setdefault(span.tags["round"], 0)
            by_round[span.tags["round"]] += span.tags["bytes_sent"]
        assert by_round == {
            record.round_index: record.comm_bytes
            for record in result.rounds
        }


class TestResilienceObservability:
    def test_crash_recovery_emits_resilience_spans_and_metrics(self):
        obs = Observability()
        plan = FaultPlan.parse("crash:1@2", seed=0)
        result = run_app(
            "d-galois", "bfs", small_edges(5), num_hosts=4, policy="oec",
            resilience=ResilienceConfig(plan=plan, checkpoint_every=1),
            observability=obs,
        )
        assert result.num_recoveries == 1
        recovery_spans = obs.metrics  # registry
        assert recovery_spans.counter("recoveries_total").value == 1
        assert recovery_spans.counter("recovery_bytes_total").value == (
            result.recovery_events[0]["recovery_bytes"]
        )
        assert recovery_spans.counter("checkpoints_total").value == (
            result.num_checkpoints
        )
        spans = obs.tracer.spans_named("recovery")
        assert len(spans) == 1
        assert spans[0].cat == "resilience"
        assert spans[0].tags["hosts"] == [1]
        checkpoint_spans = obs.tracer.spans_named("checkpoint")
        assert len(checkpoint_spans) == result.num_checkpoints

    def test_multi_phase_apps_reject_observability(self):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError, match="multi-phase"):
            run_app(
                "d-galois", "bc", small_edges(6), num_hosts=2, policy="oec",
                observability=Observability(),
            )
