"""Metrics registry unit tests: instruments, export, null path."""

import json

import pytest

from repro.observability import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_get_or_create_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("bytes", host=0)
        b = reg.counter("bytes", host=0)
        c = reg.counter("bytes", host=1)
        assert a is b and a is not c
        a.inc(5)
        a.inc()
        assert a.value == 6
        assert c.value == 0

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.counter("x").inc(-1)

    def test_counter_total_sums_label_sets(self):
        reg = MetricsRegistry()
        reg.counter("bytes", host=0).inc(10)
        reg.counter("bytes", host=1).inc(32)
        reg.counter("other").inc(999)
        assert reg.counter_total("bytes") == 42

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("active")
        g.set(10)
        g.set(3)
        assert g.value == 3

    def test_histogram_stats_and_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes")
        for v in (0, 1, 3, 1024):
            h.observe(v)
        assert h.count == 4
        assert h.total == 1028
        assert h.min == 0 and h.max == 1024
        assert h.mean == 257.0
        # 0 -> bucket 0, 1 -> bucket 1 (< 2), 3 -> bucket 2 (< 4),
        # 1024 -> bucket 11 (< 2048)
        assert h.buckets == {0: 1, 1: 1, 2: 1, 11: 1}

    def test_histogram_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match=">= 0"):
            reg.histogram("sizes").observe(-1)


class TestExport:
    def make_registry(self):
        reg = MetricsRegistry()
        reg.counter("bytes", host=0).inc(7)
        reg.gauge("active").set(3)
        reg.histogram("sizes").observe(100)
        return reg

    def test_to_dict_shape(self):
        payload = self.make_registry().to_dict()
        assert payload["counters"] == {"bytes{host=0}": 7}
        assert payload["gauges"] == {"active": 3}
        hist = payload["histograms"]["sizes"]
        assert hist["count"] == 1 and hist["sum"] == 100

    def test_to_json_roundtrips(self, tmp_path):
        path = tmp_path / "metrics.json"
        text = self.make_registry().to_json(path)
        assert json.loads(path.read_text()) == json.loads(text)

    def test_to_csv_has_all_instruments(self, tmp_path):
        path = tmp_path / "metrics.csv"
        self.make_registry().to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "kind,name,labels,stat,value"
        kinds = {line.split(",")[0] for line in lines[1:]}
        assert kinds == {"counter", "gauge", "histogram"}


class TestNullMetrics:
    def test_disabled_and_shared_instrument(self):
        assert NULL_METRICS.enabled is False
        c = NULL_METRICS.counter("x", host=1)
        g = NULL_METRICS.gauge("y")
        h = NULL_METRICS.histogram("z")
        assert c is g is h  # one shared no-op instrument
        c.inc(5)
        g.set(2)
        h.observe(9)
        assert c.value == 0
        assert NULL_METRICS.instruments() == []

    def test_null_registry_never_allocates_instruments(self, monkeypatch):
        for cls in (Counter, Gauge, Histogram):
            monkeypatch.setattr(
                cls,
                "__init__",
                lambda self, *a, **k: (_ for _ in ()).throw(
                    AssertionError("instrument allocated on no-op path")
                ),
            )
        NULL_METRICS.counter("x").inc()
        NULL_METRICS.gauge("y").set(1)
        NULL_METRICS.histogram("z").observe(1)
