"""End-to-end recovery tests: crashed runs must finish bitwise identical."""

import numpy as np
import pytest

from repro.errors import ExecutionError, FaultPlanError
from repro.resilience import (
    CrashFault,
    FaultPlan,
    ResilienceConfig,
    confined_applicable,
)
from repro.systems import run_app
from repro.verify import verify_run
from repro.workloads import load_workload


@pytest.fixture(scope="module")
def edges():
    return load_workload("rmat22s", -3)


@pytest.fixture(scope="module")
def baseline(edges):
    return run_app("d-galois", "bfs", edges, num_hosts=4)


def crash_config(round_index=2, mode="restart", **kwargs):
    return ResilienceConfig(
        plan=FaultPlan(crashes=(CrashFault(1, round_index),), seed=7),
        checkpoint_every=1,
        recovery=mode,
        **kwargs,
    )


class TestConfig:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ExecutionError, match="recovery mode"):
            ResilienceConfig(recovery="pray")

    def test_negative_cadence_rejected(self):
        with pytest.raises(ExecutionError):
            ResilienceConfig(checkpoint_every=-1)

    def test_crash_beyond_cluster_rejected(self, edges):
        config = ResilienceConfig(
            plan=FaultPlan(crashes=(CrashFault(9, 2),))
        )
        with pytest.raises(FaultPlanError, match="cluster has 2"):
            run_app("d-galois", "bfs", edges, num_hosts=2, resilience=config)

    def test_multi_phase_app_rejected(self, edges):
        with pytest.raises(ExecutionError, match="multi-phase"):
            run_app(
                "d-galois", "bc", edges, num_hosts=2,
                resilience=crash_config(),
            )


class TestCheckpointRestart:
    def test_bitwise_identical_after_crash(self, edges, baseline):
        result = run_app(
            "d-galois", "bfs", edges, num_hosts=4,
            resilience=crash_config(mode="restart"),
        )
        assert result.num_recoveries == 1
        assert result.recovery_events[0]["mode"] == "restart"
        np.testing.assert_array_equal(
            result.executor.gather_result("dist"),
            baseline.executor.gather_result("dist"),
        )
        verify_run(result, edges)

    def test_trace_describes_logical_execution(self, edges, baseline):
        result = run_app(
            "d-galois", "bfs", edges, num_hosts=4,
            resilience=crash_config(mode="restart"),
        )
        # Replayed rounds are re-recorded, not duplicated.
        assert result.num_rounds == baseline.num_rounds
        assert [r.round_index for r in result.rounds] == list(
            range(1, result.num_rounds + 1)
        )

    def test_recovery_accounted(self, edges):
        result = run_app(
            "d-galois", "bfs", edges, num_hosts=4,
            resilience=crash_config(mode="restart"),
        )
        assert result.recovery_bytes > 0
        assert result.recovery_time > 0
        assert result.num_checkpoints >= 2
        assert result.checkpoint_bytes > 0
        assert result.total_time_resilient > result.total_time
        summary = result.summary()
        assert summary["recoveries"] == 1
        assert summary["checkpoints"] == result.num_checkpoints
        # The recovery round carries the cost in the per-round trace.
        assert any(r.recovery_bytes > 0 for r in result.rounds)

    def test_disk_checkpoints(self, edges, baseline, tmp_path):
        result = run_app(
            "d-galois", "bfs", edges, num_hosts=4,
            resilience=crash_config(
                mode="restart", checkpoint_dir=str(tmp_path)
            ),
        )
        assert list(tmp_path.glob("*.ckpt"))
        np.testing.assert_array_equal(
            result.executor.gather_result("dist"),
            baseline.executor.gather_result("dist"),
        )

    def test_fault_free_summary_keeps_paper_shape(self, baseline):
        assert "recoveries" not in baseline.summary()


class TestConfinedRecovery:
    def test_applicable_to_min_reduction_with_frontier(self, edges):
        result = run_app("d-galois", "bfs", edges, num_hosts=2)
        assert confined_applicable(result.executor)

    def test_not_applicable_to_pagerank(self, edges):
        result = run_app("d-galois", "pr", edges, num_hosts=2)
        assert not confined_applicable(result.executor)

    def test_bfs_confined_bitwise_identical(self, edges, baseline):
        result = run_app(
            "d-galois", "bfs", edges, num_hosts=4,
            resilience=crash_config(mode="confined"),
        )
        assert result.recovery_events[0]["mode"] == "confined"
        np.testing.assert_array_equal(
            result.executor.gather_result("dist"),
            baseline.executor.gather_result("dist"),
        )
        verify_run(result, edges)

    def test_pagerank_escalates_to_restart(self, edges):
        canonical = run_app("d-galois", "pr", edges, num_hosts=4)
        result = run_app(
            "d-galois", "pr", edges, num_hosts=4,
            resilience=crash_config(round_index=3, mode="confined"),
        )
        assert result.recovery_events[0]["mode"] == "confined->restart"
        np.testing.assert_array_equal(
            result.executor.gather_result("rank"),
            canonical.executor.gather_result("rank"),
        )

    def test_cc_confined_survives_late_crash(self, edges):
        canonical = run_app("d-galois", "cc", edges, num_hosts=4)
        crash_round = max(2, canonical.num_rounds)
        result = run_app(
            "d-galois", "cc", edges, num_hosts=4,
            resilience=crash_config(round_index=crash_round, mode="confined"),
        )
        np.testing.assert_array_equal(
            result.executor.gather_result("label"),
            canonical.executor.gather_result("label"),
        )
        verify_run(result, edges)


class TestTransientFaults:
    @pytest.mark.parametrize("app,key", [("bfs", "dist"), ("pr", "rank")])
    def test_lossy_fabric_never_changes_results(self, edges, app, key):
        canonical = run_app("d-galois", app, edges, num_hosts=4)
        config = ResilienceConfig(
            plan=FaultPlan(
                drop_rate=0.05, corrupt_rate=0.02, duplicate_rate=0.03,
                seed=23,
            )
        )
        result = run_app(
            "d-galois", app, edges, num_hosts=4, resilience=config
        )
        np.testing.assert_array_equal(
            result.executor.gather_result(key),
            canonical.executor.gather_result(key),
        )
        # The faults cost bytes even though they changed nothing.
        assert result.recovery_bytes > 0
        faults = result.executor.transport.faults
        assert faults.total_injected > 0

    def test_transient_faults_with_crash(self, edges, baseline):
        config = ResilienceConfig(
            plan=FaultPlan(
                crashes=(CrashFault(1, 2),),
                drop_rate=0.05, duplicate_rate=0.05, seed=31,
            ),
            checkpoint_every=1,
            recovery="confined",
        )
        result = run_app(
            "d-galois", "bfs", edges, num_hosts=4, resilience=config
        )
        assert result.num_recoveries == 1
        np.testing.assert_array_equal(
            result.executor.gather_result("dist"),
            baseline.executor.gather_result("dist"),
        )


class TestStabilizationCertificate:
    """Confined recovery is gated by the GL303 certificate, not the old
    reduce-op-only heuristic."""

    def _stub(self, app, fields_idempotent=True):
        from types import SimpleNamespace

        field = SimpleNamespace(
            reduce_op=SimpleNamespace(idempotent=fields_idempotent)
        )
        return SimpleNamespace(
            enable_sync=True,
            substrates=[object()],
            app=app,
            fields=[[field]],
        )

    def test_certificate_overrules_field_heuristic(self):
        """The regression this PR fixes: an idempotent frontier program
        whose sync hook folds master-side state passed the old field
        heuristic but is NOT safe to restart from stale checkpoints."""
        from repro.compiler import compile_program
        from tests.analysis.test_dataflow import mismatch_spec

        app = compile_program(mismatch_spec())
        executor = self._stub(app)
        # The old heuristic's inputs all say yes...
        assert app.uses_frontier
        assert all(
            f.reduce_op.idempotent for f in executor.fields[0]
        )
        # ...and the certificate still refuses.
        assert not confined_applicable(executor)

    def test_fallback_without_certificate(self, monkeypatch):
        """When no certificate is obtainable (program source
        unavailable) the old field-level heuristic remains as the
        conservative fallback."""
        from repro.analysis import dataflow

        monkeypatch.setattr(
            dataflow, "certificate_for", lambda target: None
        )
        cls = type(
            "SyntheticProgram", (), {"uses_frontier": True, "name": "syn"}
        )
        assert confined_applicable(self._stub(cls()))
        assert not confined_applicable(
            self._stub(cls(), fields_idempotent=False)
        )

    def test_applicable_to_compiled_bfs(self, edges):
        """Spec-path certificate: the generated twin is eligible too."""
        result = run_app("d-galois", "bfs@compiled", edges, num_hosts=2)
        assert confined_applicable(result.executor)

    def test_not_applicable_to_kcore(self, edges):
        """kcore's apply hook mutates master state outside the reduction
        lattice — certificate denied (no-master-hooks)."""
        result = run_app("d-galois", "kcore", edges, num_hosts=2)
        assert not confined_applicable(result.executor)
