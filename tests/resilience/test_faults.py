"""Unit tests for the fault model: plans, parsing, and the injector."""

import pytest

from repro.errors import FaultPlanError
from repro.resilience.faults import (
    CORRUPT,
    DELIVER,
    DROP,
    DUPLICATE,
    CrashFault,
    FaultInjector,
    FaultPlan,
)


class TestCrashFault:
    def test_valid(self):
        crash = CrashFault(host=2, round_index=5)
        assert (crash.host, crash.round_index) == (2, 5)

    def test_negative_host_rejected(self):
        with pytest.raises(FaultPlanError):
            CrashFault(host=-1, round_index=1)

    def test_round_zero_rejected(self):
        with pytest.raises(FaultPlanError):
            CrashFault(host=0, round_index=0)


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert not plan.has_transient

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(FaultPlanError):
            FaultPlan(corrupt_rate=-0.1)

    def test_rates_summing_past_one_rejected(self):
        with pytest.raises(FaultPlanError, match="sum"):
            FaultPlan(drop_rate=0.5, corrupt_rate=0.4, duplicate_rate=0.2)

    def test_host_crashing_twice_rejected(self):
        with pytest.raises(FaultPlanError, match="twice"):
            FaultPlan(crashes=(CrashFault(1, 2), CrashFault(1, 5)))

    def test_validate_hosts(self):
        plan = FaultPlan(crashes=(CrashFault(3, 1),))
        plan.validate_hosts(4)
        with pytest.raises(FaultPlanError, match="cluster has 2"):
            plan.validate_hosts(2)

    def test_negative_seed_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(seed=-1)


class TestParse:
    def test_full_grammar(self):
        plan = FaultPlan.parse(
            "crash:1@3, drop:0.05, corrupt:0.01, dup:0.02", seed=9
        )
        assert plan.crashes == (CrashFault(1, 3),)
        assert plan.drop_rate == pytest.approx(0.05)
        assert plan.corrupt_rate == pytest.approx(0.01)
        assert plan.duplicate_rate == pytest.approx(0.02)
        assert plan.seed == 9

    def test_crash_only(self):
        plan = FaultPlan.parse("crash:0@1")
        assert plan.crashes == (CrashFault(0, 1),)
        assert not plan.has_transient

    def test_missing_round_rejected(self):
        with pytest.raises(FaultPlanError, match="crash:HOST@ROUND"):
            FaultPlan.parse("crash:1")

    def test_non_integer_crash_rejected(self):
        with pytest.raises(FaultPlanError, match="ints"):
            FaultPlan.parse("crash:one@2")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan.parse("meteor:0.5")

    def test_missing_value_rejected(self):
        with pytest.raises(FaultPlanError, match="needs a value"):
            FaultPlan.parse("drop")

    def test_bad_rate_rejected(self):
        with pytest.raises(FaultPlanError, match="float"):
            FaultPlan.parse("drop:lots")


class TestFaultInjector:
    def test_sequence_numbers_monotonic(self):
        injector = FaultInjector(FaultPlan())
        seqs = [injector.next_seq() for _ in range(5)]
        assert seqs == sorted(set(seqs))

    def test_crashes_fire_once(self):
        plan = FaultPlan(crashes=(CrashFault(1, 3), CrashFault(0, 3)))
        injector = FaultInjector(plan)
        assert injector.take_crashes(2) == []
        assert injector.take_crashes(3) == [0, 1]
        # A replayed round 3 must not re-kill the reborn hosts.
        assert injector.take_crashes(3) == []
        assert injector.pending_crashes == []

    def test_no_transient_always_delivers(self):
        injector = FaultInjector(FaultPlan())
        assert all(injector.decide_fate() == DELIVER for _ in range(100))

    def test_fates_deterministic_per_seed(self):
        plan = FaultPlan(drop_rate=0.3, corrupt_rate=0.2, duplicate_rate=0.1,
                         seed=42)
        a = [FaultInjector(plan).decide_fate() for _ in range(1)]
        fates1 = [f for inj in [FaultInjector(plan)]
                  for f in (inj.decide_fate() for _ in range(200))]
        fates2 = [f for inj in [FaultInjector(plan)]
                  for f in (inj.decide_fate() for _ in range(200))]
        assert fates1 == fates2
        assert {DROP, CORRUPT, DUPLICATE} <= set(fates1)
        assert a[0] == fates1[0]

    def test_corrupt_flips_exactly_one_byte(self):
        injector = FaultInjector(FaultPlan(corrupt_rate=1.0, seed=1))
        frame = bytes(range(32))
        damaged = injector.corrupt(frame)
        assert len(damaged) == len(frame)
        diffs = [i for i, (x, y) in enumerate(zip(frame, damaged)) if x != y]
        assert len(diffs) == 1
        assert damaged[diffs[0]] == frame[diffs[0]] ^ 0xFF

    def test_rng_state_roundtrip_replays_fates(self):
        plan = FaultPlan(drop_rate=0.5, seed=7)
        injector = FaultInjector(plan)
        state = injector.rng_state()
        first = [injector.decide_fate() for _ in range(50)]
        injector.restore_rng_state(state)
        assert [injector.decide_fate() for _ in range(50)] == first

    def test_restore_keeps_sequence_numbers_unique(self):
        injector = FaultInjector(FaultPlan(seed=3))
        state = injector.rng_state()
        seen = [injector.next_seq() for _ in range(4)]
        injector.restore_rng_state(state)
        assert injector.next_seq() not in seen
