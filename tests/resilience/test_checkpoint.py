"""Unit tests for content-addressed checkpoints and their backends."""

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.resilience.checkpoint import (
    CheckpointManager,
    DiskCheckpointBackend,
    MemoryCheckpointBackend,
)


def snapshot(round_index=3):
    return {
        "round": round_index,
        "states": [{"dist": np.arange(4, dtype=np.uint32)}],
        "frontiers": [np.array([True, False, True, False])],
    }


class TestBackends:
    def test_memory_roundtrip(self):
        backend = MemoryCheckpointBackend()
        backend.put("abc", b"blob")
        assert backend.get("abc") == b"blob"
        assert "abc" in backend and len(backend) == 1

    def test_memory_missing_digest(self):
        with pytest.raises(CheckpointError):
            MemoryCheckpointBackend().get("nope")

    def test_put_is_idempotent(self):
        backend = MemoryCheckpointBackend()
        backend.put("d", b"first")
        backend.put("d", b"second")
        assert backend.get("d") == b"first"

    def test_disk_roundtrip(self, tmp_path):
        backend = DiskCheckpointBackend(tmp_path / "ckpts")
        backend.put("deadbeef", b"persisted")
        assert backend.get("deadbeef") == b"persisted"
        assert (tmp_path / "ckpts" / "deadbeef.ckpt").exists()
        assert len(backend) == 1

    def test_disk_missing_digest(self, tmp_path):
        with pytest.raises(CheckpointError):
            DiskCheckpointBackend(tmp_path).get("missing")


class TestCadence:
    def test_zero_disables_periodic_snapshots(self):
        manager = CheckpointManager(every=0)
        assert not any(manager.due(r) for r in range(1, 20))

    def test_cadence(self):
        manager = CheckpointManager(every=3)
        assert [r for r in range(1, 10) if manager.due(r)] == [3, 6, 9]

    def test_negative_cadence_rejected(self):
        with pytest.raises(CheckpointError):
            CheckpointManager(every=-1)


class TestSaveRestore:
    def test_roundtrip(self):
        manager = CheckpointManager()
        record = manager.save(snapshot(5))
        assert record.round_index == 5
        assert record.nbytes > 0
        restored = manager.restore()
        assert restored["round"] == 5
        np.testing.assert_array_equal(
            restored["states"][0]["dist"], np.arange(4, dtype=np.uint32)
        )

    def test_restore_returns_fresh_copies(self):
        manager = CheckpointManager()
        manager.save(snapshot())
        first = manager.restore()
        first["states"][0]["dist"][:] = 99
        second = manager.restore()
        assert second["states"][0]["dist"][0] == 0

    def test_latest_wins(self):
        manager = CheckpointManager()
        manager.save(snapshot(1))
        manager.save(snapshot(2))
        assert manager.restore()["round"] == 2
        assert manager.latest().round_index == 2

    def test_restore_specific_record(self):
        manager = CheckpointManager()
        early = manager.save(snapshot(1))
        manager.save(snapshot(2))
        assert manager.restore(early)["round"] == 1

    def test_restore_without_checkpoint_rejected(self):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            CheckpointManager().restore()

    def test_snapshot_without_round_rejected(self):
        with pytest.raises(CheckpointError, match="round"):
            CheckpointManager().save({"states": []})

    def test_bit_rot_detected(self):
        backend = MemoryCheckpointBackend()
        manager = CheckpointManager(backend)
        record = manager.save(snapshot())
        backend._blobs[record.digest] = b"corrupted" + bytes(10)
        with pytest.raises(CheckpointError, match="validation"):
            manager.restore()

    def test_disk_backend_survives_new_manager(self, tmp_path):
        backend = DiskCheckpointBackend(tmp_path)
        record = CheckpointManager(backend).save(snapshot(4))
        fresh = CheckpointManager(DiskCheckpointBackend(tmp_path))
        assert fresh.restore(record)["round"] == 4

    def test_clear(self):
        manager = CheckpointManager()
        manager.save(snapshot())
        manager.clear()
        assert manager.latest() is None
