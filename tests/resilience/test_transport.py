"""Unit tests for the fault-injecting transport and its reliability layer."""

import pytest

from repro.core.serialization import FRAME_OVERHEAD
from repro.errors import HostCrashedError, TransportError
from repro.resilience.faults import CrashFault, FaultInjector, FaultPlan
from repro.resilience.transport import FaultyTransport


def make_transport(num_hosts=2, **plan_kwargs):
    injector = FaultInjector(FaultPlan(**plan_kwargs))
    return FaultyTransport(num_hosts, injector)


class TestCleanChannel:
    def test_delivery_unchanged(self):
        t = make_transport()
        t.send(0, 1, b"alpha")
        t.send(0, 1, b"beta")
        assert [(s, p) for s, p in t.receive_all(1)] == [
            (0, b"alpha"),
            (0, b"beta"),
        ]
        assert t.faults.total_injected == 0

    def test_framing_overhead_accounted(self):
        t = make_transport()
        t.send(0, 1, b"12345")
        assert t.stats.total_bytes == 5 + FRAME_OVERHEAD
        assert t.faults.framing_bytes == FRAME_OVERHEAD
        assert t.take_round_fault_bytes() == 0

    def test_non_bytes_payload_rejected(self):
        t = make_transport()
        with pytest.raises(TransportError):
            t.send(0, 1, "not bytes")

    def test_round_lifecycle_delegates(self):
        t = make_transport()
        t.send(0, 1, b"x")
        assert t.pending(1) == 1
        t.receive_all(1)
        t.end_round()
        assert t.num_hosts == 2


class TestLossyChannel:
    def test_drops_are_retransmitted(self):
        t = make_transport(drop_rate=1.0, seed=5)
        t.send(0, 1, b"must arrive")
        assert [p for _, p in t.receive_all(1)] == [b"must arrive"]
        assert t.faults.dropped == 1
        # Wire carried the wasted copy and the retransmission.
        frame_len = len(b"must arrive") + FRAME_OVERHEAD
        assert t.stats.total_bytes == 2 * frame_len
        assert t.faults.fault_bytes == frame_len
        assert t.take_round_fault_bytes() == frame_len
        assert t.take_round_fault_bytes() == 0  # drained

    def test_corruption_detected_and_healed(self):
        t = make_transport(corrupt_rate=1.0, seed=6)
        t.send(0, 1, b"fragile")
        assert [p for _, p in t.receive_all(1)] == [b"fragile"]
        assert t.faults.corrupted == 1
        assert t.faults.checksum_failures == 1

    def test_duplicates_discarded(self):
        t = make_transport(duplicate_rate=1.0, seed=7)
        t.send(0, 1, b"once")
        assert [p for _, p in t.receive_all(1)] == [b"once"]
        assert t.faults.duplicated == 1
        assert t.faults.duplicates_discarded == 1

    def test_mixed_faults_preserve_payload_stream(self):
        t = make_transport(
            drop_rate=0.2, corrupt_rate=0.2, duplicate_rate=0.2, seed=11
        )
        sent = [bytes([i]) * 3 for i in range(64)]
        for payload in sent:
            t.send(0, 1, payload)
        received = [p for _, p in t.receive_all(1)]
        assert received == sent
        assert t.faults.total_injected > 0

    def test_total_injected_counts_all_kinds(self):
        t = make_transport(drop_rate=1.0, seed=1)
        t.send(0, 1, b"a")
        t.receive_all(1)
        stats = t.faults
        assert stats.total_injected == (
            stats.dropped + stats.duplicated + stats.corrupted
        )


class TestCrashDelegation:
    def test_crash_propagates_host_id(self):
        t = make_transport(num_hosts=3)
        t.crash(1)
        assert t.is_crashed(1)
        assert t.crashed_hosts == frozenset({1})
        with pytest.raises(HostCrashedError) as exc:
            t.receive_all(1)
        assert exc.value.host == 1

    def test_send_to_dead_host_rejected(self):
        t = make_transport(num_hosts=3, crashes=(CrashFault(2, 1),))
        t.crash(2)
        with pytest.raises(HostCrashedError):
            t.send(0, 2, b"x")


class TestSequenceContinuity:
    def test_injector_survives_transport_rebirth(self):
        # Recovery replaces the transport but keeps the injector; sequence
        # numbers must stay unique so stale frames can never be replayed.
        injector = FaultInjector(FaultPlan())
        first = FaultyTransport(2, injector)
        first.send(0, 1, b"old")
        reborn = FaultyTransport(2, injector)
        reborn.send(0, 1, b"new")
        assert injector._seq == 2
        assert [p for _, p in reborn.receive_all(1)] == [b"new"]
