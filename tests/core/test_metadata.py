"""Unit tests for adaptive metadata mode selection (§4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metadata import (
    COUNT_BYTES,
    HEADER_BYTES,
    MetadataMode,
    encoded_size,
    select_mode,
)


class TestEncodedSize:
    def test_empty(self):
        assert encoded_size(MetadataMode.EMPTY, 100, 0, 4) == HEADER_BYTES

    def test_full(self):
        assert (
            encoded_size(MetadataMode.FULL, 100, 40, 4)
            == HEADER_BYTES + COUNT_BYTES + 400
        )

    def test_bitvec(self):
        size = encoded_size(MetadataMode.BITVEC, 80, 10, 4)
        assert size == HEADER_BYTES + COUNT_BYTES + 10 + 40

    def test_indices(self):
        size = encoded_size(MetadataMode.INDICES, 80, 10, 4)
        assert size == HEADER_BYTES + COUNT_BYTES + 10 * (4 + 4)

    def test_global_ids_same_as_indices(self):
        assert encoded_size(
            MetadataMode.GLOBAL_IDS, 80, 10, 4
        ) == encoded_size(MetadataMode.INDICES, 80, 10, 4)

    def test_updates_cannot_exceed_agreed(self):
        with pytest.raises(ValueError):
            encoded_size(MetadataMode.FULL, 5, 6, 4)


class TestSelectMode:
    def test_no_updates_is_empty(self):
        assert select_mode(100, 0, 4) is MetadataMode.EMPTY

    def test_dense_updates_pick_full(self):
        """Paper rule: dense updates send all values, no metadata.

        FULL wins once the bit-vector overhead exceeds the values saved:
        for 4-byte values that is within ceil(n/8)/4 updates of everything.
        """
        assert select_mode(100, 100, 4) is MetadataMode.FULL
        assert select_mode(100, 99, 4) is MetadataMode.FULL

    def test_sparse_updates_pick_bitvec(self):
        """Paper rule: sparse updates send a bit-vector."""
        assert select_mode(1000, 300, 4) is MetadataMode.BITVEC

    def test_very_sparse_updates_pick_indices(self):
        """Paper rule: very sparse updates send explicit indices."""
        assert select_mode(10000, 3, 4) is MetadataMode.INDICES

    def test_selected_mode_is_smallest(self):
        for num_agreed in (1, 10, 64, 100, 1000):
            for num_updates in range(0, num_agreed + 1, max(num_agreed // 7, 1)):
                mode = select_mode(num_agreed, num_updates, 4)
                if num_updates == 0:
                    assert mode is MetadataMode.EMPTY
                    continue
                best = min(
                    encoded_size(m, num_agreed, num_updates, 4)
                    for m in (
                        MetadataMode.FULL,
                        MetadataMode.BITVEC,
                        MetadataMode.INDICES,
                    )
                )
                assert encoded_size(mode, num_agreed, num_updates, 4) == best

    def test_crossover_moves_with_value_size(self):
        """Bigger values shift the bitvec/indices crossover point."""
        # With 8-byte values, indices win at higher densities than with 4.
        agreed = 800
        crossover_4 = next(
            k
            for k in range(1, agreed)
            if select_mode(agreed, k, 4) is MetadataMode.BITVEC
        )
        crossover_8 = next(
            k
            for k in range(1, agreed)
            if select_mode(agreed, k, 8) is MetadataMode.BITVEC
        )
        assert crossover_4 <= crossover_8


@given(
    num_agreed=st.integers(min_value=1, max_value=5000),
    density=st.floats(min_value=0.0, max_value=1.0),
    value_size=st.sampled_from([1, 4, 8]),
)
@settings(max_examples=120, deadline=None)
def test_property_selection_minimizes_size(num_agreed, density, value_size):
    num_updates = int(round(density * num_agreed))
    mode = select_mode(num_agreed, num_updates, value_size)
    chosen = encoded_size(mode, num_agreed, num_updates, value_size)
    for other in (
        MetadataMode.FULL,
        MetadataMode.BITVEC,
        MetadataMode.INDICES,
    ):
        if num_updates == 0:
            break
        assert chosen <= encoded_size(
            other, num_agreed, num_updates, value_size
        )
