"""Unit tests for reduction operations and field specs (Figure 5's API)."""

import numpy as np
import pytest

from repro.core.sync_structures import (
    ADD,
    ASSIGN,
    BOR,
    MAX,
    MIN,
    REDUCTIONS,
    FieldSpec,
    ReductionOp,
)
from repro.errors import SyncError


class TestReductionOps:
    def test_min_identity(self):
        assert MIN.identity(np.uint32) == np.iinfo(np.uint32).max
        assert MIN.identity(np.float64) == np.inf

    def test_max_identity(self):
        assert MAX.identity(np.int32) == np.iinfo(np.int32).min
        assert MAX.identity(np.float32) == -np.inf

    def test_add_identity(self):
        assert ADD.identity(np.uint32) == 0
        assert ADD.identity(np.float64) == 0.0

    def test_combine_semantics(self):
        a = np.array([3, 8], dtype=np.uint32)
        b = np.array([5, 2], dtype=np.uint32)
        assert MIN.combine(a, b).tolist() == [3, 2]
        assert MAX.combine(a, b).tolist() == [5, 8]
        assert ADD.combine(a, b).tolist() == [8, 10]
        assert BOR.combine(a, b).tolist() == [7, 10]
        assert ASSIGN.combine(a, b).tolist() == [5, 2]

    def test_idempotence_flags(self):
        assert MIN.idempotent and MAX.idempotent and BOR.idempotent
        assert not ADD.idempotent

    def test_reset_keeps_values_for_idempotent(self):
        """§2.3: sssp mirrors keep their labels at reset."""
        values = np.array([1, 2, 3], dtype=np.uint32)
        MIN.reset_values(values, np.array([0, 2]))
        assert values.tolist() == [1, 2, 3]

    def test_reset_writes_identity_for_add(self):
        """§2.3: push-pagerank mirrors reset to 0."""
        values = np.array([1, 2, 3], dtype=np.uint32)
        ADD.reset_values(values, np.array([0, 2]))
        assert values.tolist() == [0, 2, 0]

    def test_registry(self):
        assert set(REDUCTIONS) == {"min", "max", "add", "bor", "assign"}
        assert all(isinstance(op, ReductionOp) for op in REDUCTIONS.values())


class TestFieldSpec:
    def make_field(self, values=None, **kwargs):
        if values is None:
            values = np.array([5, 9, 2, 7], dtype=np.uint32)
        return FieldSpec(name="dist", values=values, reduce_op=MIN, **kwargs)

    def test_extract(self):
        field = self.make_field()
        assert field.extract(np.array([0, 2])).tolist() == [5, 2]

    def test_reduce_applies_and_reports_changes(self):
        field = self.make_field()
        changed = field.reduce(
            np.array([0, 1]), np.array([7, 3], dtype=np.uint32)
        )
        assert changed.tolist() == [False, True]
        assert field.values.tolist() == [5, 3, 2, 7]

    def test_reduce_length_mismatch(self):
        field = self.make_field()
        with pytest.raises(SyncError):
            field.reduce(np.array([0]), np.array([1, 2], dtype=np.uint32))

    def test_set_overwrites_and_reports_changes(self):
        field = self.make_field()
        changed = field.set(
            np.array([0, 3]), np.array([5, 1], dtype=np.uint32)
        )
        assert changed.tolist() == [False, True]
        assert field.values.tolist() == [5, 9, 2, 1]

    def test_set_length_mismatch(self):
        field = self.make_field()
        with pytest.raises(SyncError):
            field.set(np.array([0, 1]), np.array([1], dtype=np.uint32))

    def test_reset_respects_reduction(self):
        field = self.make_field()
        field.reset(np.array([0, 1]))  # MIN: keep
        assert field.values.tolist() == [5, 9, 2, 7]
        acc = FieldSpec(
            name="acc",
            values=np.array([4, 5], dtype=np.uint32),
            reduce_op=ADD,
        )
        acc.reset(np.array([1]))
        assert acc.values.tolist() == [4, 0]

    def test_value_size_and_dtype(self):
        field = self.make_field()
        assert field.dtype == np.uint32
        assert field.value_size == 4

    def test_derived_broadcast_array(self):
        values = np.array([1.0, 2.0], dtype=np.float64)
        broadcast = np.array([0.5, 0.25], dtype=np.float64)
        field = FieldSpec(
            name="pr",
            values=values,
            reduce_op=ADD,
            broadcast_values=broadcast,
        )
        assert field.extract_broadcast(np.array([1])).tolist() == [0.25]
        changed = field.set(np.array([0]), np.array([0.75]))
        assert changed.tolist() == [True]
        assert broadcast[0] == 0.75
        assert values[0] == 1.0  # reduce array untouched by broadcast set

    def test_default_broadcast_is_values(self):
        field = self.make_field()
        assert field.broadcast_values is field.values

    def test_validation(self):
        with pytest.raises(SyncError):  # 3-D never allowed
            FieldSpec(name="x", values=np.zeros((2, 2, 2)), reduce_op=MIN)
        with pytest.raises(SyncError):  # degenerate (n, 1): declare it 1-D
            FieldSpec(name="x", values=np.zeros((3, 1)), reduce_op=MIN)
        with pytest.raises(SyncError):
            FieldSpec(
                name="x",
                values=np.zeros(3),
                reduce_op=MIN,
                broadcast_values=np.zeros(4),
            )

    def test_wide_field_allowed(self):
        field = FieldSpec(name="feat", values=np.zeros((3, 4)), reduce_op=ADD)
        assert field.width == 4
        assert field.value_size == 4 * 8  # four float64 columns per row

    def test_broadcast_dtype_mismatch_rejected(self):
        with pytest.raises(SyncError, match="dtype"):
            FieldSpec(
                name="x",
                values=np.zeros(3, dtype=np.float64),
                reduce_op=ADD,
                broadcast_values=np.zeros(3, dtype=np.float32),
            )

    def test_compression_validation(self):
        with pytest.raises(SyncError, match="compression"):
            FieldSpec(
                name="x", values=np.zeros(3), reduce_op=ADD, compression="zip"
            )
        with pytest.raises(SyncError, match="2-D"):
            FieldSpec(
                name="x", values=np.zeros(3), reduce_op=ADD, compression="delta"
            )
        with pytest.raises(SyncError, match="float"):
            FieldSpec(
                name="x",
                values=np.zeros((3, 4), dtype=np.int32),
                reduce_op=ADD,
                compression="fp16",
            )
        fp16 = FieldSpec(
            name="x",
            values=np.zeros((3, 4), dtype=np.float32),
            reduce_op=ADD,
            compression="fp16",
        )
        assert fp16.wire_dtype == np.float16
        assert fp16.value_size == 4 * 2  # half precision on the wire
