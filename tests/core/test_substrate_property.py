"""Property-based verification of the synchronization collective.

The oracle: after one reduce+broadcast collective over a MIN field where
arbitrary proxies were written arbitrary values, every master must hold
``min`` over all its proxies' written values (and its own), and every
reader mirror must hold the master value.  This must be true for random
graphs, every policy, and every optimization level — the substrate's
fundamental contract.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimization import OptimizationLevel
from repro.core.substrate import setup_substrates
from repro.core.sync_structures import ADD, MIN, FieldSpec
from repro.graph.edgelist import EdgeList
from repro.network.transport import InProcessTransport
from repro.partition import make_partitioner

BASE = 1000


@st.composite
def sync_scenarios(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=40))
    num_edges = draw(st.integers(min_value=1, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges, dtype=np.uint32)
    dst = rng.integers(0, num_nodes, size=num_edges, dtype=np.uint32)
    edges = EdgeList(num_nodes, src, dst).deduplicate()
    policy = draw(st.sampled_from(["oec", "iec", "cvc", "hvc"]))
    num_hosts = draw(st.integers(min_value=2, max_value=5))
    level = draw(st.sampled_from(list(OptimizationLevel)))
    write_seed = draw(st.integers(min_value=0, max_value=2**31))
    return edges, policy, num_hosts, level, write_seed


def run_collective(subs, fields, dirty_masks):
    for sub, field, dirty in zip(subs, fields, dirty_masks):
        sub.send_reduce(field, dirty)
    reduce_changed = [
        sub.receive_reduce(field) for sub, field in zip(subs, fields)
    ]
    for sub, field, dirty, changed in zip(
        subs, fields, dirty_masks, reduce_changed
    ):
        bdirty = changed | dirty
        bdirty[sub.partition.num_masters :] = False
        sub.send_broadcast(field, bdirty)
    for sub, field in zip(subs, fields):
        sub.receive_broadcast(field)


@given(scenario=sync_scenarios())
@settings(max_examples=60, deadline=None)
def test_min_collective_matches_oracle(scenario):
    edges, policy, num_hosts, level, write_seed = scenario
    partitioned = make_partitioner(policy).partition(edges, num_hosts)
    transport = InProcessTransport(num_hosts)
    subs = setup_substrates(partitioned, transport, level)
    transport.end_round()

    rng = np.random.default_rng(write_seed)
    fields = []
    dirty_masks = []
    # Oracle bookkeeping: the min over every written value per global node.
    oracle = np.full(edges.num_nodes, BASE, dtype=np.int64)
    for part, sub in zip(partitioned.partitions, subs):
        values = np.full(part.num_nodes, BASE, dtype=np.uint32)
        dirty = np.zeros(part.num_nodes, dtype=bool)
        # Random writes, but only to proxies the compute phase could
        # write: masters, plus mirrors with local in-edges.
        in_deg = part.graph.in_degree()
        writable = np.flatnonzero(
            (np.arange(part.num_nodes) < part.num_masters) | (in_deg > 0)
        )
        if len(writable):
            chosen = writable[rng.random(len(writable)) < 0.5]
            written = rng.integers(0, BASE, size=len(chosen))
            values[chosen] = written
            dirty[chosen] = True
            gids = part.local_to_global[chosen]
            np.minimum.at(oracle, gids, written)
        fields.append(FieldSpec(name="v", values=values, reduce_op=MIN))
        dirty_masks.append(dirty)

    run_collective(subs, fields, dirty_masks)

    for part, field in zip(partitioned.partitions, fields):
        # 1. Masters hold the global minimum of written values.
        master_gids = part.local_to_global[: part.num_masters]
        got = field.values[: part.num_masters].astype(np.int64)
        assert np.array_equal(got, oracle[master_gids]), (policy, level)
        # 2. Reader mirrors (out-edges) hold the master value.
        out_deg = part.graph.out_degree()
        for lid in part.mirror_locals():
            if out_deg[lid] > 0:
                gid = part.to_global(int(lid))
                assert int(field.values[lid]) == int(oracle[gid]), (
                    policy,
                    level,
                )


@given(scenario=sync_scenarios())
@settings(max_examples=40, deadline=None)
def test_add_collective_matches_oracle(scenario):
    """For ADD fields, the master total equals the sum of all written
    contributions, under every policy and level."""
    edges, policy, num_hosts, level, write_seed = scenario
    partitioned = make_partitioner(policy).partition(edges, num_hosts)
    transport = InProcessTransport(num_hosts)
    subs = setup_substrates(partitioned, transport, level)
    transport.end_round()

    rng = np.random.default_rng(write_seed)
    fields = []
    dirty_masks = []
    oracle = np.zeros(edges.num_nodes, dtype=np.int64)
    for part, sub in zip(partitioned.partitions, subs):
        values = np.zeros(part.num_nodes, dtype=np.uint32)
        dirty = np.zeros(part.num_nodes, dtype=bool)
        in_deg = part.graph.in_degree()
        writable = np.flatnonzero(
            (np.arange(part.num_nodes) < part.num_masters) | (in_deg > 0)
        )
        if len(writable):
            chosen = writable[rng.random(len(writable)) < 0.5]
            written = rng.integers(1, 10, size=len(chosen))
            values[chosen] = written
            dirty[chosen] = True
            np.add.at(oracle, part.local_to_global[chosen], written)
        fields.append(FieldSpec(name="acc", values=values, reduce_op=ADD))
        dirty_masks.append(dirty)

    # Reduce only: ADD broadcast would overwrite accumulators at mirrors
    # that are both writers and readers (the executor's apps use derived
    # broadcast arrays for that; here we check the reduction itself).
    for sub, field, dirty in zip(subs, fields, dirty_masks):
        sub.send_reduce(field, dirty)
    for sub, field in zip(subs, fields):
        sub.receive_reduce(field)

    for part, field in zip(partitioned.partitions, fields):
        master_gids = part.local_to_global[: part.num_masters]
        got = field.values[: part.num_masters].astype(np.int64)
        assert np.array_equal(got, oracle[master_gids]), (policy, level)
        # Contributing mirrors were reset to the ADD identity.
        in_deg = part.graph.in_degree()
        mirrors = part.mirror_locals()
        senders = mirrors[in_deg[mirrors] > 0]
        assert np.all(field.values[senders] == 0), (policy, level)
