"""Unit and property tests for the wire format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metadata import MetadataMode, encoded_size
from repro.core.serialization import (
    decode_message,
    dtype_code,
    encode_message,
)
from repro.errors import SerializationError


class TestDtypeCodes:
    def test_supported_dtypes_roundtrip(self):
        for dtype in (
            np.uint32,
            np.int32,
            np.float32,
            np.float64,
            np.uint64,
            np.int64,
            np.uint8,
        ):
            values = np.array([1, 2, 3], dtype=dtype)
            payload = encode_message(MetadataMode.FULL, values)
            back = decode_message(payload)
            assert back.values.dtype == np.dtype(dtype)
            assert np.array_equal(back.values, values)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(SerializationError):
            dtype_code(np.complex128)


class TestModes:
    def test_empty_roundtrip(self):
        payload = encode_message(
            MetadataMode.EMPTY, np.empty(0, dtype=np.uint32)
        )
        assert len(payload) == 2
        message = decode_message(payload)
        assert message.mode is MetadataMode.EMPTY
        assert len(message.values) == 0
        assert message.selection is None

    def test_full_roundtrip(self):
        values = np.arange(10, dtype=np.uint32)
        message = decode_message(encode_message(MetadataMode.FULL, values))
        assert message.mode is MetadataMode.FULL
        assert np.array_equal(message.values, values)
        assert message.selection is None

    def test_bitvec_roundtrip(self):
        values = np.array([7, 9], dtype=np.uint32)
        selection = np.array([1, 4], dtype=np.uint32)
        payload = encode_message(
            MetadataMode.BITVEC, values, num_agreed=6, selection=selection
        )
        message = decode_message(payload)
        assert message.mode is MetadataMode.BITVEC
        assert np.array_equal(message.selection, selection)
        assert np.array_equal(message.values, values)

    def test_indices_roundtrip(self):
        values = np.array([3.5, -1.0], dtype=np.float64)
        selection = np.array([0, 9], dtype=np.uint32)
        payload = encode_message(
            MetadataMode.INDICES, values, selection=selection
        )
        message = decode_message(payload)
        assert message.mode is MetadataMode.INDICES
        assert np.array_equal(message.selection, selection)
        assert np.array_equal(message.values, values)

    def test_global_ids_roundtrip(self):
        values = np.array([5], dtype=np.uint32)
        gids = np.array([123456], dtype=np.uint32)
        payload = encode_message(
            MetadataMode.GLOBAL_IDS, values, selection=gids
        )
        message = decode_message(payload)
        assert message.mode is MetadataMode.GLOBAL_IDS
        assert message.selection.tolist() == [123456]

    def test_sizes_match_metadata_arithmetic(self):
        """The encoder's real sizes equal the mode-selection arithmetic."""
        num_agreed, num_updates = 50, 12
        values = np.zeros(num_updates, dtype=np.uint32)
        selection = np.arange(num_updates, dtype=np.uint32)
        for mode in (MetadataMode.BITVEC, MetadataMode.INDICES):
            payload = encode_message(
                mode, values, num_agreed=num_agreed, selection=selection
            )
            assert len(payload) == encoded_size(mode, num_agreed, num_updates, 4)
        full = encode_message(
            MetadataMode.FULL, np.zeros(num_agreed, dtype=np.uint32)
        )
        assert len(full) == encoded_size(
            MetadataMode.FULL, num_agreed, num_updates, 4
        )


class TestErrors:
    def test_selection_required(self):
        with pytest.raises(SerializationError):
            encode_message(
                MetadataMode.INDICES, np.array([1], dtype=np.uint32)
            )
        with pytest.raises(SerializationError):
            encode_message(
                MetadataMode.BITVEC, np.array([1], dtype=np.uint32),
                num_agreed=4,
            )

    def test_length_mismatch_rejected(self):
        with pytest.raises(SerializationError):
            encode_message(
                MetadataMode.INDICES,
                np.array([1, 2], dtype=np.uint32),
                selection=np.array([0], dtype=np.uint32),
            )

    def test_truncated_message_rejected(self):
        payload = encode_message(
            MetadataMode.FULL, np.arange(4, dtype=np.uint32)
        )
        with pytest.raises(SerializationError):
            decode_message(payload[:-1])
        with pytest.raises(SerializationError):
            decode_message(b"")
        with pytest.raises(SerializationError):
            decode_message(payload[:3])

    def test_unknown_mode_rejected(self):
        with pytest.raises(SerializationError):
            decode_message(bytes([250, 0]))

    def test_unknown_dtype_rejected(self):
        with pytest.raises(SerializationError):
            decode_message(bytes([1, 99]))

    def test_empty_with_body_rejected(self):
        with pytest.raises(SerializationError):
            decode_message(bytes([0, 0, 1]))


@given(
    data=st.data(),
    dtype=st.sampled_from([np.uint32, np.float64, np.int64]),
    num_agreed=st.integers(min_value=1, max_value=200),
)
@settings(max_examples=80, deadline=None)
def test_property_bitvec_indices_roundtrip(data, dtype, num_agreed):
    num_updates = data.draw(st.integers(min_value=0, max_value=num_agreed))
    positions = np.sort(
        np.random.default_rng(
            data.draw(st.integers(min_value=0, max_value=2**31))
        ).choice(num_agreed, size=num_updates, replace=False)
    ).astype(np.uint32)
    values = np.arange(num_updates, dtype=dtype)
    for mode in (MetadataMode.BITVEC, MetadataMode.INDICES):
        payload = encode_message(
            mode, values, num_agreed=num_agreed, selection=positions
        )
        back = decode_message(payload)
        assert back.mode is mode
        assert np.array_equal(back.selection, positions)
        assert np.array_equal(back.values, values)
