"""Unit tests for memoized address translation (§4.1)."""

import numpy as np
import pytest

from repro.core.memoization import (
    _decode_exchange,
    _encode_exchange,
    exchange_address_books,
)
from repro.errors import SerializationError, SyncError
from repro.network.transport import InProcessTransport
from repro.partition.cartesian import CartesianVertexCut
from repro.partition.edge_cut import IncomingEdgeCut, OutgoingEdgeCut


def exchange(partitioned):
    transport = InProcessTransport(partitioned.num_hosts)
    books = exchange_address_books(partitioned, transport)
    return books, transport


class TestExchangeMessage:
    def test_roundtrip(self):
        gids = np.array([4, 9, 2], dtype=np.uint32)
        has_in = np.array([True, False, True])
        has_out = np.array([False, False, True])
        payload = _encode_exchange(gids, has_in, has_out)
        back_gids, back_in, back_out = _decode_exchange(payload)
        assert np.array_equal(back_gids, gids)
        assert np.array_equal(back_in, has_in)
        assert np.array_equal(back_out, has_out)

    def test_truncated_rejected(self):
        payload = _encode_exchange(
            np.array([1], dtype=np.uint32),
            np.array([True]),
            np.array([False]),
        )
        with pytest.raises(SerializationError):
            _decode_exchange(payload[:-1])
        with pytest.raises(SerializationError):
            _decode_exchange(b"\x01")


class TestAddressBooks:
    def test_figure6_structure(self, tiny_edges):
        """Figure 6: mirrors/masters arrays for the Figure 2 OEC partition."""
        partitioned = OutgoingEdgeCut().partition(tiny_edges, 2)
        books, _ = exchange(partitioned)
        for host, peer in ((0, 1), (1, 0)):
            mirrors = books[host].mirrors_all[peer]
            masters = books[peer].masters_all[host]
            assert len(mirrors) == len(masters)
            # Aligned entries refer to the same global node.
            part_m = partitioned.partitions[host]
            part_o = partitioned.partitions[peer]
            assert np.array_equal(
                part_m.local_to_global[mirrors],
                part_o.local_to_global[masters],
            )

    def test_mirror_arrays_cover_all_mirrors(self, small_rmat):
        partitioned = CartesianVertexCut().partition(small_rmat, 4)
        books, _ = exchange(partitioned)
        for part in partitioned.partitions:
            book = books[part.host]
            total = sum(len(a) for a in book.mirrors_all.values())
            assert total == part.num_mirrors

    def test_master_arrays_hold_only_masters(self, small_rmat):
        partitioned = CartesianVertexCut().partition(small_rmat, 4)
        books, _ = exchange(partitioned)
        for part in partitioned.partitions:
            book = books[part.host]
            for arr in book.masters_all.values():
                if len(arr):
                    assert arr.max() < part.num_masters

    def test_structural_subsets_match_degrees(self, small_rmat):
        partitioned = CartesianVertexCut().partition(small_rmat, 4)
        books, _ = exchange(partitioned)
        for part in partitioned.partitions:
            book = books[part.host]
            in_deg = part.graph.in_degree()
            out_deg = part.graph.out_degree()
            for peer, mirrors in book.mirrors_all.items():
                expect_reduce = mirrors[in_deg[mirrors] > 0]
                expect_bcast = mirrors[out_deg[mirrors] > 0]
                assert np.array_equal(
                    book.mirrors_reduce[peer], expect_reduce
                )
                assert np.array_equal(
                    book.mirrors_broadcast[peer], expect_bcast
                )

    def test_oec_has_empty_broadcast_subsets(self, small_rmat):
        """OEC mirrors have no out-edges -> broadcast subsets are empty."""
        partitioned = OutgoingEdgeCut().partition(small_rmat, 4)
        books, _ = exchange(partitioned)
        for book in books:
            assert all(
                len(a) == 0 for a in book.mirrors_broadcast.values()
            )
            assert all(len(a) == 0 for a in book.masters_broadcast.values())

    def test_iec_has_empty_reduce_subsets(self, small_rmat):
        """IEC mirrors have no in-edges -> reduce subsets are empty."""
        partitioned = IncomingEdgeCut().partition(small_rmat, 4)
        books, _ = exchange(partitioned)
        for book in books:
            assert all(len(a) == 0 for a in book.mirrors_reduce.values())
            assert all(len(a) == 0 for a in book.masters_reduce.values())

    def test_subset_alignment_across_hosts(self, small_rmat):
        """Restricted mirror/master arrays stay element-aligned (the
        property the whole memoized wire format depends on)."""
        partitioned = CartesianVertexCut().partition(small_rmat, 6)
        books, _ = exchange(partitioned)
        for host in range(6):
            for peer in range(6):
                if host == peer:
                    continue
                mirrors = books[host].mirrors_reduce[peer]
                masters = books[peer].masters_reduce[host]
                assert np.array_equal(
                    partitioned.partitions[host].local_to_global[mirrors],
                    partitioned.partitions[peer].local_to_global[masters],
                )

    def test_exchange_traffic_is_counted(self, small_rmat):
        partitioned = CartesianVertexCut().partition(small_rmat, 4)
        _, transport = exchange(partitioned)
        assert transport.stats.total_bytes > 0

    def test_single_host_exchange_is_silent(self, small_rmat):
        partitioned = OutgoingEdgeCut().partition(small_rmat, 1)
        books, transport = exchange(partitioned)
        assert transport.stats.total_bytes == 0
        assert books[0].peers_with_my_mirrors() == []

    def test_transport_size_mismatch_rejected(self, small_rmat):
        partitioned = OutgoingEdgeCut().partition(small_rmat, 2)
        with pytest.raises(SyncError):
            exchange_address_books(partitioned, InProcessTransport(3))

    def test_peer_listing(self, tiny_edges):
        partitioned = OutgoingEdgeCut().partition(tiny_edges, 2)
        books, _ = exchange(partitioned)
        assert books[0].peers_with_my_mirrors() == [1]
        assert books[1].peers_with_my_masters() == [0]
