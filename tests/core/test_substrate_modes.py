"""Tests pinning which wire modes the substrate emits in which situations."""

import numpy as np

from repro.core.metadata import MetadataMode
from repro.core.optimization import OptimizationLevel
from repro.core.serialization import decode_message
from repro.core.substrate import setup_substrates
from repro.core.sync_structures import MIN, FieldSpec
from repro.network.transport import InProcessTransport
from repro.partition import make_partitioner


def setup(edges, policy, num_hosts, level):
    partitioned = make_partitioner(policy).partition(edges, num_hosts)
    transport = InProcessTransport(num_hosts)
    subs = setup_substrates(partitioned, transport, level)
    transport.end_round()
    fields = [
        FieldSpec(
            name="v",
            values=np.full(p.num_nodes, 100, dtype=np.uint32),
            reduce_op=MIN,
        )
        for p in partitioned.partitions
    ]
    return partitioned, transport, subs, fields


def peek_messages(transport, host):
    inbox = transport.receive_all(host)
    return [decode_message(payload) for _, payload in inbox]


class TestMemoizedModes:
    def test_dense_updates_use_full(self, small_rmat):
        partitioned, transport, subs, fields = setup(
            small_rmat, "oec", 2, OptimizationLevel.OSTI
        )
        sub = subs[0]
        dirty = np.zeros(sub.num_local_nodes, dtype=bool)
        for arr in sub.book.mirrors_reduce.values():
            fields[0].values[arr] = 1
            dirty[arr] = True
        sub.send_reduce(fields[0], dirty)
        messages = peek_messages(transport, 1)
        assert messages
        assert all(m.mode is MetadataMode.FULL for m in messages)

    def test_single_update_uses_indices(self, small_rmat):
        partitioned, transport, subs, fields = setup(
            small_rmat, "oec", 2, OptimizationLevel.OSTI
        )
        sub = subs[0]
        # One updated mirror out of (many) agreed: INDICES wins.
        arr = next(a for a in sub.book.mirrors_reduce.values() if len(a) > 40)
        dirty = np.zeros(sub.num_local_nodes, dtype=bool)
        fields[0].values[arr[0]] = 1
        dirty[arr[0]] = True
        sub.send_reduce(fields[0], dirty)
        messages = peek_messages(transport, 1)
        assert any(m.mode is MetadataMode.INDICES for m in messages)

    def test_no_updates_send_empty(self, small_rmat):
        partitioned, transport, subs, fields = setup(
            small_rmat, "oec", 2, OptimizationLevel.OSTI
        )
        subs[0].send_reduce(
            fields[0], np.zeros(subs[0].num_local_nodes, dtype=bool)
        )
        messages = peek_messages(transport, 1)
        assert messages
        assert all(m.mode is MetadataMode.EMPTY for m in messages)

    def test_unopt_skips_messages_without_updates(self, small_rmat):
        partitioned, transport, subs, fields = setup(
            small_rmat, "oec", 2, OptimizationLevel.UNOPT
        )
        subs[0].send_reduce(
            fields[0], np.zeros(subs[0].num_local_nodes, dtype=bool)
        )
        assert transport.pending(1) == 0

    def test_unopt_messages_carry_global_ids(self, small_rmat):
        partitioned, transport, subs, fields = setup(
            small_rmat, "oec", 2, OptimizationLevel.UNOPT
        )
        sub = subs[0]
        mirrors = sub.partition.mirror_locals()
        fields[0].values[mirrors[0]] = 1
        dirty = np.zeros(sub.num_local_nodes, dtype=bool)
        dirty[mirrors[0]] = True
        sub.send_reduce(fields[0], dirty)
        messages = peek_messages(transport, 1)
        assert len(messages) == 1
        assert messages[0].mode is MetadataMode.GLOBAL_IDS
        expected_gid = sub.partition.to_global(int(mirrors[0]))
        assert messages[0].selection.tolist() == [expected_gid]

    def test_mode_counts_recorded(self, small_rmat):
        partitioned, transport, subs, fields = setup(
            small_rmat, "oec", 2, OptimizationLevel.OSTI
        )
        subs[0].send_reduce(
            fields[0], np.zeros(subs[0].num_local_nodes, dtype=bool)
        )
        transport.receive_all(1)
        assert subs[0].stats.mode_counts.get(MetadataMode.EMPTY, 0) >= 1
