"""Tests for the sync<WriteLocation, ReadLocation> generality (Figure 4).

The default flow (write at destination, read at source) is covered by the
application suite; these tests exercise the other template instantiations:
write-at-source reductions (BC's backward pass) and read-at-destination
broadcasts.
"""

import numpy as np
import pytest

from repro.core.optimization import OptimizationLevel
from repro.core.substrate import setup_substrates
from repro.core.sync_structures import ADD, MIN, FieldSpec
from repro.errors import SyncError
from repro.network.transport import InProcessTransport
from repro.partition import make_partitioner

BOTH = frozenset({"source", "destination"})


def make_setup(edges, policy, num_hosts, level=OptimizationLevel.OSTI):
    partitioned = make_partitioner(policy).partition(edges, num_hosts)
    transport = InProcessTransport(num_hosts)
    subs = setup_substrates(partitioned, transport, level)
    transport.end_round()
    return partitioned, transport, subs


class TestFieldLocationValidation:
    def test_defaults(self):
        field = FieldSpec(
            name="x", values=np.zeros(3, dtype=np.uint32), reduce_op=MIN
        )
        assert field.writes == frozenset({"destination"})
        assert field.reads == frozenset({"source"})

    def test_invalid_locations_rejected(self):
        with pytest.raises(SyncError):
            FieldSpec(
                name="x",
                values=np.zeros(3, dtype=np.uint32),
                reduce_op=MIN,
                writes=frozenset({"everywhere"}),
            )
        with pytest.raises(SyncError):
            FieldSpec(
                name="x",
                values=np.zeros(3, dtype=np.uint32),
                reduce_op=MIN,
                reads=frozenset(),
            )


class TestSetSelection:
    def test_write_at_source_selects_out_edge_mirrors(self, small_rmat):
        _, _, subs = make_setup(small_rmat, "cvc", 4)
        field = FieldSpec(
            name="delta",
            values=np.zeros(subs[0].num_local_nodes, dtype=np.float64),
            reduce_op=ADD,
            writes=frozenset({"source"}),
            reads=frozenset({"destination"}),
        )
        sub = subs[0]
        assert sub._reduce_send_arrays(field) is sub.book.mirrors_broadcast
        assert sub._reduce_recv_arrays(field) is sub.book.masters_broadcast
        assert sub._broadcast_send_arrays(field) is sub.book.masters_reduce
        assert sub._broadcast_recv_arrays(field) is sub.book.mirrors_reduce

    def test_read_both_selects_any(self, small_rmat):
        _, _, subs = make_setup(small_rmat, "cvc", 4)
        field = FieldSpec(
            name="dist",
            values=np.zeros(subs[0].num_local_nodes, dtype=np.uint32),
            reduce_op=MIN,
            reads=BOTH,
        )
        sub = subs[0]
        assert sub._broadcast_send_arrays(field) is sub.book.masters_any
        assert sub._broadcast_recv_arrays(field) is sub.book.mirrors_any

    def test_unopt_ignores_locations(self, small_rmat):
        _, _, subs = make_setup(
            small_rmat, "cvc", 4, OptimizationLevel.UNOPT
        )
        field = FieldSpec(
            name="delta",
            values=np.zeros(subs[0].num_local_nodes, dtype=np.float64),
            reduce_op=ADD,
            writes=frozenset({"source"}),
        )
        sub = subs[0]
        assert sub._reduce_send_arrays(field) is sub.book.mirrors_all
        assert sub._broadcast_recv_arrays(field) is sub.book.mirrors_all


class TestWriteAtSourceCollective:
    @pytest.mark.parametrize("policy", ["oec", "iec", "cvc", "hvc"])
    @pytest.mark.parametrize("level", list(OptimizationLevel))
    def test_source_written_add_reduction_sums_once(
        self, small_rmat, policy, level
    ):
        """Every proxy with out-edges contributes 1; the master total must
        equal the node's number of out-edge-bearing proxies — under every
        policy and optimization level."""
        partitioned, transport, subs = make_setup(
            small_rmat, policy, 4, level
        )
        fields = []
        expected = np.zeros(partitioned.num_global_nodes, dtype=np.int64)
        dirty_masks = []
        for part, sub in zip(partitioned.partitions, subs):
            values = np.zeros(part.num_nodes, dtype=np.float64)
            out_deg = part.graph.out_degree()
            contributors = np.flatnonzero(out_deg > 0)
            mirrors = contributors[contributors >= part.num_masters]
            values[mirrors] = 1.0
            expected[part.local_to_global[mirrors]] += 1
            field = FieldSpec(
                name="count",
                values=values,
                reduce_op=ADD,
                writes=frozenset({"source"}),
                reads=frozenset({"destination"}),
            )
            fields.append(field)
            dirty = np.zeros(part.num_nodes, dtype=bool)
            dirty[mirrors] = True
            dirty_masks.append(dirty)
        for sub, field, dirty in zip(subs, fields, dirty_masks):
            sub.send_reduce(field, dirty)
        for sub, field in zip(subs, fields):
            sub.receive_reduce(field)
        for part, field in zip(partitioned.partitions, fields):
            master_gids = part.local_to_global[: part.num_masters]
            got = field.values[: part.num_masters].astype(np.int64)
            assert np.array_equal(got, expected[master_gids]), (policy, level)
