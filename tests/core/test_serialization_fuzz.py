"""Fuzzing the wire-format decoder.

A substrate that trusts the network must never crash or silently
mis-decode on malformed bytes: every outcome of :func:`decode_message`
must be either a valid :class:`SyncMessage` or a
:class:`SerializationError`.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metadata import MetadataMode
from repro.core.serialization import (
    SyncMessage,
    decode_message,
    encode_message,
)
from repro.errors import SerializationError


@given(payload=st.binary(max_size=400))
@settings(max_examples=200, deadline=None)
def test_random_bytes_never_crash(payload):
    try:
        message = decode_message(payload)
    except SerializationError:
        return
    assert isinstance(message, SyncMessage)
    assert isinstance(message.mode, MetadataMode)
    assert isinstance(message.values, np.ndarray)


@given(
    data=st.data(),
    num_values=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=150, deadline=None)
def test_mutated_valid_messages_never_crash(data, num_values):
    """Flip a byte anywhere in a valid message: decode must either fail
    cleanly or produce a structurally valid message."""
    values = np.arange(num_values, dtype=np.uint32)
    if num_values == 0:
        payload = encode_message(MetadataMode.EMPTY, values)
    else:
        selection = np.arange(num_values, dtype=np.uint32)
        payload = encode_message(
            MetadataMode.INDICES, values, selection=selection
        )
    position = data.draw(
        st.integers(min_value=0, max_value=max(len(payload) - 1, 0))
    )
    new_byte = data.draw(st.integers(min_value=0, max_value=255))
    mutated = bytearray(payload)
    mutated[position] = new_byte
    try:
        message = decode_message(bytes(mutated))
    except SerializationError:
        return
    assert isinstance(message, SyncMessage)
    if message.selection is not None:
        # A byte flip may set the WIDE/DELTA flags, in which case counts
        # count rows (delta values arrive flat-masked): compare against
        # the message's row count, not the raw value length.
        assert len(message.selection) == message.num_rows


@given(
    data=st.data(),
    mode=st.sampled_from(
        [MetadataMode.FULL, MetadataMode.BITVEC, MetadataMode.INDICES]
    ),
)
@settings(max_examples=100, deadline=None)
def test_truncated_messages_rejected(data, mode):
    """Any strict prefix of a non-trivial message must be rejected."""
    values = np.arange(8, dtype=np.uint32)
    selection = np.arange(8, dtype=np.uint32)
    payload = encode_message(
        mode, values, num_agreed=16, selection=selection
    )
    cut = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
    try:
        message = decode_message(payload[:cut])
    except SerializationError:
        return
    # A shorter valid parse is only possible if the truncation landed on
    # a self-consistent boundary — which this format never allows for
    # strict prefixes of a fixed-count message.
    raise AssertionError(
        f"truncated {mode.name} message of {cut}/{len(payload)} bytes "
        f"decoded as {message.mode.name}"
    )
