"""Unit tests for optimization-level flags."""

import pytest

from repro.core.optimization import OptimizationLevel


def test_flag_matrix():
    assert not OptimizationLevel.UNOPT.structural
    assert not OptimizationLevel.UNOPT.temporal
    assert OptimizationLevel.OSI.structural
    assert not OptimizationLevel.OSI.temporal
    assert not OptimizationLevel.OTI.structural
    assert OptimizationLevel.OTI.temporal
    assert OptimizationLevel.OSTI.structural
    assert OptimizationLevel.OSTI.temporal


def test_from_name():
    assert OptimizationLevel.from_name("osti") is OptimizationLevel.OSTI
    assert OptimizationLevel.from_name("UNOPT") is OptimizationLevel.UNOPT


def test_from_name_unknown():
    with pytest.raises(ValueError, match="unknown optimization level"):
        OptimizationLevel.from_name("turbo")
