"""Unit and property tests for the packed bit-vector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitvector import BitVector
from repro.errors import SerializationError


class TestBasics:
    def test_new_is_clear(self):
        bv = BitVector(10)
        assert len(bv) == 10
        assert bv.count() == 0
        assert not bv.test(3)

    def test_set_test_clear(self):
        bv = BitVector(10)
        bv.set(3)
        assert bv.test(3)
        assert bv.count() == 1
        bv.clear(3)
        assert not bv.test(3)

    def test_bounds(self):
        bv = BitVector(8)
        with pytest.raises(IndexError):
            bv.test(8)
        with pytest.raises(IndexError):
            bv.set(-1)
        with pytest.raises(ValueError):
            BitVector(-1)

    def test_zero_length(self):
        bv = BitVector(0)
        assert len(bv) == 0
        assert bv.count() == 0
        assert bv.to_bytes() == b""

    def test_wire_size(self):
        assert BitVector.wire_size(0) == 0
        assert BitVector.wire_size(1) == 1
        assert BitVector.wire_size(8) == 1
        assert BitVector.wire_size(9) == 2
        with pytest.raises(ValueError):
            BitVector.wire_size(-1)


class TestBulk:
    def test_from_bool_array(self):
        mask = np.array([True, False, True, True, False])
        bv = BitVector.from_bool_array(mask)
        assert bv.count() == 3
        assert np.array_equal(bv.to_bool_array(), mask)

    def test_set_indices(self):
        mask = np.zeros(20, dtype=bool)
        mask[[2, 7, 19]] = True
        bv = BitVector.from_bool_array(mask)
        assert bv.set_indices().tolist() == [2, 7, 19]

    def test_bytes_roundtrip(self):
        mask = np.array([True] * 3 + [False] * 10)
        bv = BitVector.from_bool_array(mask)
        back = BitVector.from_bytes(bv.to_bytes(), len(mask))
        assert back == bv

    def test_from_bytes_wrong_length(self):
        with pytest.raises(SerializationError):
            BitVector.from_bytes(b"\x00\x00", 5)

    def test_equality(self):
        a = BitVector.from_bool_array(np.array([True, False]))
        b = BitVector.from_bool_array(np.array([True, False]))
        c = BitVector.from_bool_array(np.array([False, True]))
        assert a == b
        assert a != c
        assert a != "not a bitvector"

    def test_repr(self):
        bv = BitVector.from_bool_array(np.array([True, True, False]))
        assert "set=2" in repr(bv)


@given(st.lists(st.booleans(), max_size=300))
@settings(max_examples=80, deadline=None)
def test_property_roundtrip(bits):
    mask = np.array(bits, dtype=bool)
    bv = BitVector.from_bool_array(mask)
    assert bv.count() == int(mask.sum())
    assert len(bv.to_bytes()) == BitVector.wire_size(len(mask))
    back = BitVector.from_bytes(bv.to_bytes(), len(mask))
    assert np.array_equal(back.to_bool_array(), mask)
    assert np.array_equal(
        back.set_indices(), np.flatnonzero(mask).astype(np.uint32)
    )


@given(st.integers(min_value=1, max_value=200), st.data())
@settings(max_examples=50, deadline=None)
def test_property_single_bit_ops(num_bits, data):
    index = data.draw(st.integers(min_value=0, max_value=num_bits - 1))
    bv = BitVector(num_bits)
    bv.set(index)
    assert bv.test(index)
    assert bv.count() == 1
    assert bv.set_indices().tolist() == [index]
