"""Property-based checks of every registered reduction's declared laws.

The substrate leans on three declarations per :class:`ReductionOp`
(identity, idempotence, commutativity — see ``repro.analysis.algebra``
for why each one matters to synchronization).  Here hypothesis hunts for
counterexamples over the dtypes the built-in applications synchronize.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sync_structures import REDUCTIONS

DTYPES = (np.int32, np.int64, np.float64)

_settings = settings(max_examples=75, deadline=None)


def _same(a, b) -> bool:
    """Elementwise equality; NaN == NaN (inf + -inf is still commutative)."""
    if np.issubdtype(np.asarray(a).dtype, np.floating):
        return bool(np.array_equal(a, b, equal_nan=True))
    return bool(np.array_equal(a, b))


def _supports(op, dtype) -> bool:
    """Whether ``op.combine`` is defined over ``dtype`` (bor is int-only)."""
    probe = np.ones(1, dtype=dtype)
    try:
        op.combine(probe.copy(), probe)
    except TypeError:
        return False
    return True


def _vector_strategy(dtype):
    dtype = np.dtype(dtype)
    if np.issubdtype(dtype, np.integer):
        info = np.iinfo(dtype)
        elements = st.integers(min_value=int(info.min), max_value=int(info.max))
    else:
        elements = st.floats(allow_nan=False, width=64)
    return st.lists(elements, min_size=1, max_size=16).map(
        lambda values: np.array(values, dtype=dtype)
    )


def _pair_strategy(dtype):
    return _vector_strategy(dtype).flatmap(
        lambda a: st.tuples(
            st.just(a),
            _vector_strategy(dtype).map(
                lambda b: np.resize(b, a.shape).astype(a.dtype)
            ),
        )
    )


CASES = [
    pytest.param(op, dtype, id=f"{name}-{np.dtype(dtype).name}")
    for name, op in sorted(REDUCTIONS.items())
    for dtype in DTYPES
    if _supports(op, np.dtype(dtype))
]


@pytest.mark.parametrize("op,dtype", CASES)
class TestDeclaredLaws:
    @_settings
    @given(data=st.data())
    def test_identity_is_neutral(self, op, dtype, data):
        x = data.draw(_vector_strategy(dtype))
        identity = np.full(x.shape, op.identity(x.dtype), dtype=x.dtype)
        with np.errstate(over="ignore"):
            assert np.array_equal(op.combine(identity.copy(), x), x)
            if op.commutative:
                assert np.array_equal(op.combine(x.copy(), identity), x)

    @_settings
    @given(data=st.data())
    def test_declared_idempotence_holds(self, op, dtype, data):
        if not op.idempotent:
            pytest.skip(f"{op.name} does not declare idempotence")
        x = data.draw(_vector_strategy(dtype))
        with np.errstate(over="ignore"):
            assert np.array_equal(op.combine(x.copy(), x), x)

    @_settings
    @given(data=st.data())
    def test_declared_commutativity_holds(self, op, dtype, data):
        if not op.commutative:
            pytest.skip(f"{op.name} does not declare commutativity")
        a, b = data.draw(_pair_strategy(dtype))
        with np.errstate(over="ignore", invalid="ignore"):
            assert _same(op.combine(a.copy(), b), op.combine(b.copy(), a))


class TestAssignSemantics:
    @_settings
    @given(data=st.data())
    def test_assign_takes_the_incoming_value(self, data):
        op = REDUCTIONS["assign"]
        a, b = data.draw(_pair_strategy(np.int64))
        assert np.array_equal(op.combine(a.copy(), b), b)

    def test_assign_is_declared_noncommutative(self):
        assert not REDUCTIONS["assign"].commutative
