"""Unit tests for per-strategy communication plans (§3.2)."""

from repro.core.memoization import exchange_address_books
from repro.core.patterns import build_sync_plan
from repro.network.transport import InProcessTransport
from repro.partition import make_partitioner


def plans_for(edges, policy, num_hosts, structural):
    partitioned = make_partitioner(policy).partition(edges, num_hosts)
    transport = InProcessTransport(num_hosts)
    books = exchange_address_books(partitioned, transport)
    return partitioned, [build_sync_plan(b, structural) for b in books]


class TestStructuralPlans:
    def test_oec_is_reduce_only(self, small_rmat):
        """§3.2 OEC: only the reduce pattern is required."""
        _, plans = plans_for(small_rmat, "oec", 4, structural=True)
        assert any(p.needs_reduce for p in plans)
        assert all(not p.needs_broadcast for p in plans)

    def test_iec_is_broadcast_only(self, small_rmat):
        """§3.2 IEC: only the broadcast (halo-exchange) pattern."""
        _, plans = plans_for(small_rmat, "iec", 4, structural=True)
        assert all(not p.needs_reduce for p in plans)
        assert any(p.needs_broadcast for p in plans)

    def test_uvc_needs_both(self, small_rmat):
        """§3.2 UVC: full gather-apply-scatter."""
        _, plans = plans_for(small_rmat, "hvc", 4, structural=True)
        assert any(p.needs_reduce for p in plans)
        assert any(p.needs_broadcast for p in plans)

    def test_cvc_uses_disjoint_subsets(self, small_rmat):
        """§3.2 CVC: each mirror is in the reduce or broadcast subset,
        never both."""
        partitioned, plans = plans_for(small_rmat, "cvc", 4, structural=True)
        for plan in plans:
            reduce_set = set()
            for arr in plan.reduce_send.values():
                reduce_set.update(arr.tolist())
            broadcast_set = set()
            for arr in plan.broadcast_recv.values():
                broadcast_set.update(arr.tolist())
            assert reduce_set.isdisjoint(broadcast_set)

    def test_cvc_reduces_partner_count(self, medium_rmat):
        """§5.6: CVC with OSI broadcasts to fewer partners than without."""
        _, structural = plans_for(medium_rmat, "cvc", 16, structural=True)
        _, unrestricted = plans_for(medium_rmat, "cvc", 16, structural=False)
        structural_partners = max(
            p.broadcast_partners() for p in structural
        )
        unrestricted_partners = max(
            p.broadcast_partners() for p in unrestricted
        )
        assert structural_partners < unrestricted_partners


class TestUnrestrictedPlans:
    def test_gas_plans_cover_all_mirrors(self, small_rmat):
        partitioned, plans = plans_for(small_rmat, "cvc", 4, structural=False)
        for part, plan in zip(partitioned.partitions, plans):
            reduce_total = sum(len(a) for a in plan.reduce_send.values())
            broadcast_total = sum(
                len(a) for a in plan.broadcast_recv.values()
            )
            assert reduce_total == part.num_mirrors
            assert broadcast_total == part.num_mirrors

    def test_oec_without_osi_broadcasts(self, small_rmat):
        """With OSI off, even OEC partitions broadcast to all mirrors."""
        _, plans = plans_for(small_rmat, "oec", 4, structural=False)
        assert any(p.needs_broadcast for p in plans)

    def test_subsets_are_subsets(self, small_rmat):
        _, restricted = plans_for(small_rmat, "hvc", 4, structural=True)
        _, full = plans_for(small_rmat, "hvc", 4, structural=False)
        for r, f in zip(restricted, full):
            for peer, arr in r.reduce_send.items():
                assert set(arr.tolist()) <= set(
                    f.reduce_send[peer].tolist()
                )
            for peer, arr in r.broadcast_recv.items():
                assert set(arr.tolist()) <= set(
                    f.broadcast_recv[peer].tolist()
                )


class TestPlanProperties:
    def test_partner_counts(self, small_rmat):
        _, plans = plans_for(small_rmat, "cvc", 4, structural=True)
        for plan in plans:
            assert 0 <= plan.reduce_partners() <= 3
            assert 0 <= plan.broadcast_partners() <= 3

    def test_single_host_plan_is_empty(self, small_rmat):
        _, plans = plans_for(small_rmat, "cvc", 1, structural=True)
        assert not plans[0].needs_reduce
        assert not plans[0].needs_broadcast
