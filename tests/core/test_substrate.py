"""Unit tests for the Gluon substrate's synchronization collective.

These drive the four-phase sync directly (without the executor) against
hand-checkable partitions, for every optimization level.
"""

import numpy as np
import pytest

from repro.core.optimization import OptimizationLevel
from repro.core.metadata import MetadataMode
from repro.core.substrate import setup_substrates
from repro.core.sync_structures import ADD, MIN, FieldSpec
from repro.errors import SyncError
from repro.network.transport import InProcessTransport
from repro.partition import make_partitioner

LEVELS = list(OptimizationLevel)


def make_setup(edges, policy, num_hosts, level):
    partitioned = make_partitioner(policy).partition(edges, num_hosts)
    transport = InProcessTransport(num_hosts)
    subs = setup_substrates(partitioned, transport, level)
    transport.end_round()
    return partitioned, transport, subs


def run_sync(subs, fields, dirty_masks):
    """Drive one full reduce+broadcast collective; returns changed masks."""
    for sub, field, dirty in zip(subs, fields, dirty_masks):
        sub.send_reduce(field, dirty)
    reduce_changed = [
        sub.receive_reduce(field) for sub, field in zip(subs, fields)
    ]
    broadcast_dirty = []
    for sub, field, dirty, changed in zip(
        subs, fields, dirty_masks, reduce_changed
    ):
        bdirty = changed | dirty
        bdirty[sub.partition.num_masters :] = False
        broadcast_dirty.append(bdirty)
    for sub, field, bdirty in zip(subs, fields, broadcast_dirty):
        sub.send_broadcast(field, bdirty)
    broadcast_changed = [
        sub.receive_broadcast(field) for sub, field in zip(subs, fields)
    ]
    return reduce_changed, broadcast_changed


def min_fields_with_global_values(partitioned, base_value=1000):
    """Per-host MIN field initialized to base + global id (all distinct)."""
    fields = []
    for part in partitioned.partitions:
        values = (base_value + part.local_to_global).astype(np.uint32)
        fields.append(FieldSpec(name="v", values=values, reduce_op=MIN))
    return fields


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("policy", ["oec", "iec", "cvc", "hvc"])
def test_min_sync_reaches_master(small_rmat, level, policy, request):
    """A mirror's improved value must land on the master under every
    level and policy combination."""
    partitioned, transport, subs = make_setup(small_rmat, policy, 4, level)
    fields = min_fields_with_global_values(partitioned)
    # Pick a mirror that participates in reduce under this plan.
    chosen = None
    for sub in subs:
        for peer, arr in sub.plan.reduce_send.items():
            if len(arr):
                chosen = (sub, peer, int(arr[0]))
                break
        if chosen:
            break
    if chosen is None:
        pytest.skip(f"{policy}: no reduce traffic (broadcast-only strategy)")
    sub, peer, mirror_lid = chosen
    gid = sub.partition.to_global(mirror_lid)
    fields[sub.host].values[mirror_lid] = 1  # improvement at the mirror
    dirty = [
        np.zeros(s.partition.num_nodes, dtype=bool) for s in subs
    ]
    dirty[sub.host][mirror_lid] = True
    run_sync(subs, fields, dirty)
    owner = int(partitioned.master_host[gid])
    master_lid = partitioned.partitions[owner].to_local(gid)
    assert fields[owner].values[master_lid] == 1


@pytest.mark.parametrize("level", LEVELS)
def test_broadcast_reaches_reading_mirrors(small_rmat, level):
    """Under IEC (broadcast-only), a master update must reach all mirrors."""
    partitioned, transport, subs = make_setup(small_rmat, "iec", 4, level)
    fields = min_fields_with_global_values(partitioned)
    # Find a master with at least one mirror.
    chosen = None
    for sub in subs:
        for peer, arr in sub.plan.broadcast_send.items():
            if len(arr):
                chosen = (sub, int(arr[0]))
                break
        if chosen:
            break
    assert chosen is not None
    sub, master_lid = chosen
    gid = sub.partition.to_global(master_lid)
    fields[sub.host].values[master_lid] = 2
    dirty = [np.zeros(s.partition.num_nodes, dtype=bool) for s in subs]
    dirty[sub.host][master_lid] = True
    run_sync(subs, fields, dirty)
    for part, field in zip(partitioned.partitions, fields):
        if part.host != sub.host and part.has_proxy(gid):
            lid = part.to_local(gid)
            if part.graph.out_degree(lid) > 0:  # reading mirrors
                assert field.values[lid] == 2


@pytest.mark.parametrize("level", LEVELS)
def test_add_reduce_sums_partials_and_resets_mirrors(small_rmat, level):
    """ADD contributions from several mirrors sum at the master, and the
    mirrors reset to the identity for the next round."""
    partitioned, transport, subs = make_setup(small_rmat, "hvc", 4, level)
    fields = []
    for part in partitioned.partitions:
        fields.append(
            FieldSpec(
                name="acc",
                values=np.zeros(part.num_nodes, dtype=np.uint32),
                reduce_op=ADD,
            )
        )
    # Every reduce-participating mirror contributes exactly 1.
    contributions = np.zeros(partitioned.num_global_nodes, dtype=np.int64)
    dirty = []
    for sub, field in zip(subs, fields):
        mask = np.zeros(sub.partition.num_nodes, dtype=bool)
        for arr in sub.plan.reduce_send.values():
            field.values[arr] = 1
            mask[arr] = True
            contributions[sub.partition.local_to_global[arr]] += 1
        dirty.append(mask)
    # Reduce phase only: a UVC mirror may be both reduce-sender and
    # broadcast-receiver, so broadcasting would overwrite the reset value.
    for sub, field, mask in zip(subs, fields, dirty):
        sub.send_reduce(field, mask)
    for sub, field in zip(subs, fields):
        sub.receive_reduce(field)
    for part, field in zip(partitioned.partitions, fields):
        master_gids = part.local_to_global[: part.num_masters]
        expected = contributions[master_gids]
        assert np.array_equal(
            field.values[: part.num_masters].astype(np.int64), expected
        )
        # Mirrors that sent were reset to 0 (ADD identity).
        for sub in subs:
            if sub.host == part.host:
                for arr in sub.plan.reduce_send.values():
                    assert np.all(field.values[arr] == 0)


def test_dirty_mask_validation(small_rmat):
    _, _, subs = make_setup(
        small_rmat, "oec", 2, OptimizationLevel.OSTI
    )
    field = FieldSpec(
        name="v",
        values=np.zeros(subs[0].partition.num_nodes, dtype=np.uint32),
        reduce_op=MIN,
    )
    with pytest.raises(SyncError):
        subs[0].send_reduce(field, np.zeros(3, dtype=bool))
    with pytest.raises(SyncError):
        subs[0].send_reduce(
            field, np.zeros(subs[0].partition.num_nodes, dtype=np.uint8)
        )


def test_temporal_levels_send_no_global_ids(small_rmat):
    for level in (OptimizationLevel.OTI, OptimizationLevel.OSTI):
        partitioned, transport, subs = make_setup(
            small_rmat, "cvc", 4, level
        )
        fields = min_fields_with_global_values(partitioned)
        dirty = [
            np.ones(s.partition.num_nodes, dtype=bool) for s in subs
        ]
        run_sync(subs, fields, dirty)
        for sub in subs:
            assert sub.stats.translations == 0
            assert MetadataMode.GLOBAL_IDS not in sub.stats.mode_counts


def test_non_temporal_levels_translate(small_rmat):
    for level in (OptimizationLevel.UNOPT, OptimizationLevel.OSI):
        partitioned, transport, subs = make_setup(
            small_rmat, "cvc", 4, level
        )
        fields = min_fields_with_global_values(partitioned)
        # Improve every mirror so reduce traffic exists.
        dirty = []
        for sub, field in zip(subs, fields):
            mask = np.zeros(sub.partition.num_nodes, dtype=bool)
            for arr in sub.plan.reduce_send.values():
                field.values[arr] = 0
                mask[arr] = True
            dirty.append(mask)
        run_sync(subs, fields, dirty)
        total_translations = sum(s.stats.translations for s in subs)
        assert total_translations > 0
        modes = set()
        for sub in subs:
            modes.update(sub.stats.mode_counts)
        assert modes <= {MetadataMode.GLOBAL_IDS}


def test_memoized_empty_messages_flow(small_rmat):
    """With no updates, temporal levels still send (tiny) EMPTY messages."""
    partitioned, transport, subs = make_setup(
        small_rmat, "cvc", 4, OptimizationLevel.OSTI
    )
    fields = min_fields_with_global_values(partitioned)
    dirty = [np.zeros(s.partition.num_nodes, dtype=bool) for s in subs]
    run_sync(subs, fields, dirty)
    total_empty = sum(
        s.stats.mode_counts.get(MetadataMode.EMPTY, 0) for s in subs
    )
    assert total_empty > 0
    # And values were not disturbed anywhere.
    for part, field in zip(partitioned.partitions, fields):
        assert np.array_equal(
            field.values, (1000 + part.local_to_global).astype(np.uint32)
        )


def test_unexpected_memoized_sender_rejected(small_rmat):
    partitioned, transport, subs = make_setup(
        small_rmat, "oec", 2, OptimizationLevel.OSTI
    )
    # Craft a FULL-mode message from a sender with an empty agreed array.
    from repro.core.serialization import encode_message

    field = FieldSpec(
        name="v",
        values=np.zeros(subs[0].partition.num_nodes, dtype=np.uint32),
        reduce_op=MIN,
    )
    bogus = encode_message(
        MetadataMode.FULL, np.array([1, 2, 3], dtype=np.uint32)
    )
    transport.send(1, 0, bogus)
    with pytest.raises(SyncError):
        subs[0].receive_reduce(field)
