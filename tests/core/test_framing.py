"""Unit tests for the integrity frame (sequence number + CRC-32)."""

import pytest

from repro.core.serialization import (
    FRAME_OVERHEAD,
    frame_payload,
    unframe_payload,
)
from repro.errors import ChecksumError, SerializationError


class TestFraming:
    def test_roundtrip(self):
        frame = frame_payload(7, b"hello world")
        assert unframe_payload(frame) == (7, b"hello world")

    def test_overhead_is_constant(self):
        assert len(frame_payload(1, b"")) == FRAME_OVERHEAD
        assert len(frame_payload(1, b"abc")) == FRAME_OVERHEAD + 3

    def test_empty_payload_roundtrip(self):
        assert unframe_payload(frame_payload(0, b"")) == (0, b"")

    def test_large_seq_roundtrip(self):
        seq = (1 << 64) - 1
        assert unframe_payload(frame_payload(seq, b"x"))[0] == seq

    def test_seq_out_of_range_rejected(self):
        with pytest.raises(SerializationError):
            frame_payload(-1, b"x")
        with pytest.raises(SerializationError):
            frame_payload(1 << 64, b"x")

    def test_truncated_frame_rejected(self):
        frame = frame_payload(3, b"payload")
        with pytest.raises(ChecksumError, match="too short"):
            unframe_payload(frame[: FRAME_OVERHEAD - 1])

    @pytest.mark.parametrize("position", [0, 4, 8, FRAME_OVERHEAD, -1])
    def test_any_flipped_byte_detected(self, position):
        frame = bytearray(frame_payload(9, b"some sync payload"))
        frame[position] ^= 0xFF
        with pytest.raises(ChecksumError):
            unframe_payload(bytes(frame))

    def test_checksum_covers_sequence_number(self):
        # Swapping two frames' sequence numbers must not go unnoticed.
        a = bytearray(frame_payload(1, b"payload"))
        b = frame_payload(2, b"payload")
        a[:8] = b[:8]
        with pytest.raises(ChecksumError):
            unframe_payload(bytes(a))
