"""Unit tests for repro.utils and the top-level package surface."""

import numpy as np
import pytest

import repro
from repro.utils.rng import make_rng, split_seed
from repro.utils.validation import (
    check_index,
    check_nonnegative,
    check_positive,
    check_probability,
)


class TestRng:
    def test_make_rng_deterministic(self):
        a = make_rng(42).integers(0, 1000, size=10)
        b = make_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_make_rng_rejects_negative(self):
        with pytest.raises(ValueError):
            make_rng(-1)

    def test_split_seed_deterministic(self):
        assert split_seed(1, 2) == split_seed(1, 2)

    def test_split_seed_streams_differ(self):
        children = {split_seed(7, stream) for stream in range(100)}
        assert len(children) == 100

    def test_split_seed_seeds_differ(self):
        assert split_seed(1, 0) != split_seed(2, 0)

    def test_split_seed_rejects_negative(self):
        with pytest.raises(ValueError):
            split_seed(-1, 0)
        with pytest.raises(ValueError):
            split_seed(0, -1)

    def test_split_seed_in_uint64_range(self):
        for stream in range(20):
            assert 0 <= split_seed(123, stream) < 2**64


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_nonnegative(self):
        check_nonnegative("x", 0)
        with pytest.raises(ValueError):
            check_nonnegative("x", -1)

    def test_check_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.1)

    def test_check_index(self):
        check_index("i", 0, 5)
        check_index("i", 4, 5)
        with pytest.raises(IndexError):
            check_index("i", 5, 5)
        with pytest.raises(IndexError):
            check_index("i", -1, 5)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_public_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_api(self):
        edges = repro.generators.rmat(scale=7, edge_factor=4, seed=0)
        result = repro.run_app("d-galois", "bfs", edges, num_hosts=2)
        assert result.converged
