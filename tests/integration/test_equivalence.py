"""Cross-cutting equivalence properties.

The central correctness claim of the whole substrate: the computed answer
is invariant under the partitioning policy, the optimization level, the
compute engine, and the host count.  Only performance characteristics may
change.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimization import OptimizationLevel
from repro.graph.edgelist import EdgeList
from repro.systems import run_app

RESULT_KEY = {"bfs": "dist", "sssp": "dist", "cc": "label", "pr": "rank"}


def answer(result, app):
    values = result.executor.gather_result(RESULT_KEY[app])
    if values.dtype.kind == "f":
        return np.round(values, 9)
    return values


@pytest.mark.parametrize("app", ["bfs", "sssp", "cc", "pr"])
def test_policy_invariance(small_rmat, app):
    baseline = None
    for policy in ("oec", "iec", "cvc", "hvc", "jagged"):
        result = run_app("d-galois", app, small_rmat, num_hosts=4, policy=policy)
        got = answer(result, app)
        if baseline is None:
            baseline = got
        else:
            assert np.array_equal(got, baseline), f"{app}/{policy} diverged"


@pytest.mark.parametrize("app", ["bfs", "sssp", "cc", "pr"])
def test_level_invariance(small_rmat, app):
    baseline = None
    for level in OptimizationLevel:
        result = run_app(
            "d-galois", app, small_rmat, num_hosts=4, policy="cvc",
            level=level,
        )
        got = answer(result, app)
        if baseline is None:
            baseline = got
        else:
            assert np.array_equal(got, baseline), f"{app}/{level} diverged"


@pytest.mark.parametrize("app", ["bfs", "cc"])
def test_host_count_invariance(small_rmat, app):
    baseline = None
    for num_hosts in (1, 2, 4, 8):
        result = run_app(
            "d-galois", app, small_rmat, num_hosts=num_hosts, policy="cvc"
        )
        got = answer(result, app)
        if baseline is None:
            baseline = got
        else:
            assert np.array_equal(got, baseline)


@pytest.mark.parametrize("app", ["bfs", "sssp", "cc", "pr"])
def test_engine_invariance(small_rmat, app):
    baseline = None
    for system in ("d-galois", "d-ligra", "d-irgl"):
        result = run_app(system, app, small_rmat, num_hosts=4, policy="cvc")
        got = answer(result, app)
        if baseline is None:
            baseline = got
        else:
            assert np.array_equal(got, baseline), f"{app}/{system} diverged"


@st.composite
def small_graphs(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=50))
    num_edges = draw(st.integers(min_value=1, max_value=150))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges, dtype=np.uint32)
    dst = rng.integers(0, num_nodes, size=num_edges, dtype=np.uint32)
    return EdgeList(num_nodes, src, dst).remove_self_loops().deduplicate()


@given(
    edges=small_graphs(),
    num_hosts=st.integers(min_value=1, max_value=6),
    policy=st.sampled_from(["oec", "iec", "cvc", "hvc"]),
    level=st.sampled_from(list(OptimizationLevel)),
)
@settings(max_examples=25, deadline=None)
def test_property_distributed_bfs_equals_single_host(
    edges, num_hosts, policy, level
):
    """For arbitrary graphs and configurations, distributed bfs must equal
    the single-host run."""
    if edges.num_edges == 0:
        return
    single = run_app("d-galois", "bfs", edges, num_hosts=1, source=0)
    multi = run_app(
        "d-galois",
        "bfs",
        edges,
        num_hosts=num_hosts,
        policy=policy,
        level=level,
        source=0,
    )
    assert np.array_equal(
        single.executor.gather_result("dist"),
        multi.executor.gather_result("dist"),
    )
