"""Tests for the workload catalog (Table 1 stand-ins)."""

import pytest

from repro.graph.csr import CSRGraph
from repro.graph.properties import compute_properties
from repro.workloads import (
    PAPER_INPUT_OF,
    WORKLOAD_NAMES,
    load_workload,
)


def test_all_workloads_build():
    for name in WORKLOAD_NAMES:
        edges = load_workload(name, scale_delta=-3)
        assert edges.num_nodes > 0
        assert edges.num_edges > 0


def test_unknown_workload():
    with pytest.raises(ValueError, match="unknown workload"):
        load_workload("facebook")


def test_cache_returns_same_object():
    a = load_workload("rmat22s", scale_delta=-3)
    b = load_workload("rmat22s", scale_delta=-3)
    assert a is b


def test_scale_delta_changes_size():
    small = load_workload("rmat22s", scale_delta=-4)
    large = load_workload("rmat22s", scale_delta=-2)
    assert large.num_nodes > small.num_nodes


def test_every_workload_maps_to_a_paper_input():
    assert set(PAPER_INPUT_OF) == set(WORKLOAD_NAMES)
    assert set(PAPER_INPUT_OF.values()) == {
        "rmat26",
        "rmat28",
        "twitter40",
        "kron30",
        "clueweb12",
        "wdc12",
    }


def test_rmat_standins_have_table1_density():
    """Table 1: rmat inputs have |E|/|V| = 16 (before dedup)."""
    props = compute_properties(load_workload("rmat24s", scale_delta=-3))
    assert 8 <= props.avg_degree <= 16


def test_web_standins_are_in_skewed():
    """Table 1: clueweb12/wdc12 have max Din >> max Dout.

    Uses scale_delta=-1 — at very small scales the skew direction blurs.
    """
    for name in ("clueweb12s", "wdc12s"):
        g = CSRGraph.from_edgelist(load_workload(name, scale_delta=-1))
        assert g.in_degree().max() > g.out_degree().max()


def test_twitter_standin_is_out_skewed_and_dense():
    """Table 1: twitter40 has |E|/|V| ~= 35 and a huge out-degree hub."""
    edges = load_workload("twitter40s", scale_delta=-1)
    props = compute_properties(edges)
    assert props.avg_degree > 15
    g = CSRGraph.from_edgelist(edges)
    assert g.out_degree().max() > 10 * max(g.out_degree().mean(), 1)


def test_kron_standin_symmetric():
    edges = load_workload("kron25s", scale_delta=-3)
    pairs = set(zip(edges.src.tolist(), edges.dst.tolist()))
    assert all((d, s) in pairs for s, d in pairs)


def test_wdc_is_largest():
    """wdc12 is the paper's largest input; the stand-in preserves that."""
    sizes = {
        name: load_workload(name, scale_delta=-3).num_edges
        for name in WORKLOAD_NAMES
    }
    assert sizes["wdc12s"] == max(sizes.values())
