"""Smoke-run the (fast) example scripts as real subprocesses.

The examples are the documentation users copy from, so they must keep
executing end-to-end.  The heavyweight walkthroughs (16-host pagerank
sweeps) are exercised by the benchmark suite instead.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "compiled_operator.py",
    "custom_algorithm.py",
    "repartitioning.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must narrate their output"


def test_all_examples_present():
    expected = {
        "quickstart.py",
        "partition_policy_tour.py",
        "communication_optimization_study.py",
        "heterogeneous_cluster.py",
        "custom_algorithm.py",
        "compiled_operator.py",
        "repartitioning.py",
    }
    found = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert expected <= found
