"""Cross-field message aggregation: equivalence, reduction, accounting.

The channel layer must be invisible to the application: aggregated and
``--no-aggregation`` runs produce bitwise-identical results for every
app x policy x optimization level, while the aggregated wire carries a
fraction of the messages (one framed buffer per peer per phase instead
of one message per field, peer, and phase).
"""

import numpy as np
import pytest

from repro.core.optimization import OptimizationLevel
from repro.errors import TransportError
from repro.graph.generators import rmat
from repro.observability import Observability
from repro.resilience import FaultPlan, ResilienceConfig
from repro.systems import run_app

EDGES = rmat(scale=8, edge_factor=6, seed=13)

RESULT_KEY = {
    "bfs": "dist",
    "sssp": "dist",
    "cc": "label",
    "pr": "rank",
    "pr-push": "rank",
    "kcore": "alive",
    "bc": "delta",
}


def answer(result, app):
    executor = result.executor
    return executor.app.gather_master_values(
        executor.partitioned.partitions, executor.states, RESULT_KEY[app]
    )


def run_pair(app, policy="cvc", level=None, num_hosts=4):
    kwargs = dict(num_hosts=num_hosts, policy=policy, level=level)
    aggregated = run_app("d-galois", app, EDGES, **kwargs)
    ablated = run_app(
        "d-galois", app, EDGES, aggregate_comm=False, **kwargs
    )
    return aggregated, ablated


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("app", sorted(RESULT_KEY))
    @pytest.mark.parametrize("policy", ["oec", "cvc"])
    @pytest.mark.parametrize(
        "level", [OptimizationLevel.UNOPT, OptimizationLevel.OSTI]
    )
    def test_apps_identical_across_policies_and_levels(
        self, app, policy, level
    ):
        aggregated, ablated = run_pair(app, policy=policy, level=level)
        # Bitwise: no rounding — the channel layer must not perturb a
        # single bit of any app's answer.
        assert np.array_equal(answer(aggregated, app), answer(ablated, app))
        assert aggregated.num_rounds == ablated.num_rounds
        assert aggregated.converged and ablated.converged

    @pytest.mark.parametrize(
        "policy", ["oec", "iec", "cvc", "hvc", "jagged"]
    )
    @pytest.mark.parametrize("level", list(OptimizationLevel))
    def test_full_policy_level_grid_on_sssp(self, policy, level):
        aggregated, ablated = run_pair("sssp", policy=policy, level=level)
        assert np.array_equal(
            answer(aggregated, "sssp"), answer(ablated, "sssp")
        )

    def test_byte_payloads_identical_modulo_framing(self):
        """Per-round sub-message bytes differ only by the frame headers."""
        aggregated, ablated = run_pair("bfs")
        assert len(aggregated.rounds) == len(ablated.rounds)
        for agg_round, abl_round in zip(aggregated.rounds, ablated.rounds):
            # Aggregation never sends more messages, and each aggregated
            # message costs exactly one frame header over its payloads.
            assert agg_round.comm_messages <= abl_round.comm_messages


class TestMessageReduction:
    def test_two_field_sweep_halves_messages(self):
        """bc's forward sweep syncs 2 fields: exactly half the messages.

        The backward sweep syncs a single field, so its rounds keep
        message parity; every round must land on one of the two exact
        ratios, and the two-field rounds must exist.
        """
        aggregated, ablated = run_pair("bc")
        assert len(aggregated.rounds) == len(ablated.rounds)
        two_field_pairs = []
        for agg_round, abl_round in zip(aggregated.rounds, ablated.rounds):
            if abl_round.comm_messages == agg_round.comm_messages:
                continue  # single-field (backward) round: parity
            assert abl_round.comm_messages == 2 * agg_round.comm_messages
            two_field_pairs.append((agg_round, abl_round))
        assert two_field_pairs, "bc never hit a two-field round"
        agg_messages = sum(a.comm_messages for a, _ in two_field_pairs)
        abl_messages = sum(b.comm_messages for _, b in two_field_pairs)
        assert agg_messages > 0
        assert abl_messages / agg_messages >= 2.0
        # Fewer messages means less per-message alpha cost: the
        # two-field sweep's simulated communication time must improve.
        agg_time = sum(a.comm_time for a, _ in two_field_pairs)
        abl_time = sum(b.comm_time for _, b in two_field_pairs)
        assert agg_time < abl_time

    def test_single_field_app_message_parity(self):
        """With one field there is nothing to aggregate: same count."""
        aggregated, ablated = run_pair("bfs", level=OptimizationLevel.OSTI)
        assert sum(r.comm_messages for r in aggregated.rounds) == sum(
            r.comm_messages for r in ablated.rounds
        )


class TestAccounting:
    def test_metrics_reconcile_with_transport_exactly(self):
        """Published byte counters == transport stats, framing included."""
        obs = Observability()
        result = run_app(
            "d-galois", "sssp", EDGES, num_hosts=4, policy="cvc",
            observability=obs,
        )
        transport = result.executor.transport
        assert (
            obs.metrics.counter_total("bytes_sent_total")
            == transport.stats.total_bytes
        )
        assert (
            obs.metrics.counter_total("bytes_recv_total")
            == transport.stats.total_bytes
        )
        assert obs.metrics.counter_total("channel_flushes_total") > 0
        histogram = obs.metrics.histogram("channel_fields_per_flush")
        assert histogram.count == obs.metrics.counter_total(
            "channel_flushes_total"
        )

    def test_metrics_reconcile_under_faults(self):
        """Retransmissions and CRC framing stay inside the == invariant."""
        obs = Observability()
        plan = FaultPlan.parse("drop:0.05,dup:0.05,corrupt:0.02", seed=5)
        result = run_app(
            "d-galois", "bfs", EDGES, num_hosts=4, policy="cvc",
            observability=obs,
            resilience=ResilienceConfig(plan=plan),
        )
        transport = result.executor.transport
        assert (
            obs.metrics.counter_total("bytes_sent_total")
            == transport.stats.total_bytes
        )

    def test_no_aggregation_run_never_flushes_channels(self):
        obs = Observability()
        run_app(
            "d-galois", "bfs", EDGES, num_hosts=4, policy="cvc",
            observability=obs, aggregate_comm=False,
        )
        assert obs.metrics.counter_total("channel_flushes_total") == 0


class TestDrainGuard:
    def test_round_close_detects_unflushed_channel(self):
        """A sub-message staged past its phase flush fails the round."""
        result = run_app("d-galois", "bfs", EDGES, num_hosts=4, policy="cvc")
        executor = result.executor
        substrate = executor.substrates[0]
        peer = substrate.peer_order[0]
        substrate.plane.stage(peer, 0, b"\x00\x01")
        with pytest.raises(TransportError, match="un-flushed channel"):
            executor._close_round(
                [0.0] * 4,
                [s.stats.translations for s in executor.substrates],
            )
