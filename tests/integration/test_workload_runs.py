"""End-to-end runs over the full workload catalog (scaled down).

Every Table 1 stand-in must run and verify on the flagship system — this
is the guard against a generator change quietly breaking an input class
(e.g. the in-skewed web graphs exercise very different partitions than the
out-skewed twitter stand-in).
"""

import pytest

from repro.systems import run_app
from repro.verify import verify_run
from repro.workloads import WORKLOAD_NAMES, load_workload


@pytest.mark.parametrize("workload", sorted(WORKLOAD_NAMES))
def test_bfs_verifies_on_every_workload(workload):
    edges = load_workload(workload, scale_delta=-3)
    result = run_app("d-galois", "bfs", edges, num_hosts=4, policy="cvc")
    assert verify_run(result, edges).matched


@pytest.mark.parametrize("workload", ["twitter40s", "clueweb12s"])
def test_pr_verifies_on_skewed_workloads(workload):
    edges = load_workload(workload, scale_delta=-3)
    result = run_app("d-galois", "pr", edges, num_hosts=4, policy="hvc")
    assert verify_run(result, edges).matched


@pytest.mark.parametrize("workload", ["rmat24s", "wdc12s"])
def test_sssp_verifies(workload):
    edges = load_workload(workload, scale_delta=-3)
    result = run_app("d-ligra", "sssp", edges, num_hosts=4, policy="oec")
    assert verify_run(result, edges).matched
