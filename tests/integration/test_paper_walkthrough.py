"""Verbatim walkthrough of the paper's running example (Figures 2, 6, 7).

Constructs the two-host OEC partition of §2.2 (host h1 owns {A,B,E,F,I},
host h2 owns {C,D,G,H,J}), checks the memoization exchange of Figure 6
(h1 tells h2 it mirrors {C,G,J}), runs the level-by-level BFS of §4.2 from
source A, and decodes the actual wire message h1 sends after the second
round — which must be exactly Figure 7's: bit-vector ``110`` selecting the
mirrors of C and G, carrying the updated labels ``[2, 2]``.
"""

import numpy as np
import pytest

from repro.apps import make_app
from repro.apps.base import AppContext
from repro.core.metadata import MetadataMode
from repro.core.optimization import OptimizationLevel
from repro.core.serialization import decode_message
from repro.core.substrate import setup_substrates
from repro.graph.edgelist import EdgeList
from repro.network.transport import InProcessTransport
from repro.partition.base import EdgeAssignment, build_partitioned_graph
from repro.partition.metrics import verify_partition
from repro.partition.strategy import PartitionStrategy

# Global IDs: A=0 B=1 C=2 D=3 E=4 F=5 G=6 H=7 I=8 J=9.
A, B, C, D, E, F, G, H, I, J = range(10)
NODE_NAMES = "ABCDEFGHIJ"

#: The narrative of §4.2: round 1 reaches B and F; round 2 reaches C, G,
#: and E; J is h1's third mirror but is not updated in round 2.
EDGES = [
    (A, B),
    (A, F),
    (B, C),
    (B, G),
    (F, E),
    (E, J),
    (C, D),
    (G, H),
]

#: h1 owns the left column of Figure 2(b); h2 the right.
H1_NODES = {A, B, E, F, I}


@pytest.fixture()
def figure2_partition():
    src = np.array([e[0] for e in EDGES], dtype=np.uint32)
    dst = np.array([e[1] for e in EDGES], dtype=np.uint32)
    edges = EdgeList(10, src, dst)
    master_host = np.array(
        [0 if node in H1_NODES else 1 for node in range(10)], dtype=np.int32
    )
    edge_host = master_host[src]  # OEC: edges live with their source
    assignment = EdgeAssignment(2, master_host, edge_host)
    partitioned = build_partitioned_graph(
        edges, assignment, PartitionStrategy.OEC, "oec"
    )
    return edges, partitioned


class TestFigure2:
    def test_partition_is_valid_oec(self, figure2_partition):
        _, partitioned = figure2_partition
        assert verify_partition(partitioned) == []

    def test_h1_proxies(self, figure2_partition):
        """h1 holds masters {A,B,E,F,I} and mirrors {C,G,J}."""
        _, partitioned = figure2_partition
        h1 = partitioned.partitions[0]
        masters = {int(g) for g in h1.local_to_global[: h1.num_masters]}
        mirrors = {int(g) for g in h1.local_to_global[h1.num_masters :]}
        assert masters == H1_NODES
        assert mirrors == {C, G, J}

    def test_all_edges_connect_local_proxies(self, figure2_partition):
        """Invariant (b) of §2.2 holds by construction."""
        _, partitioned = figure2_partition
        total = sum(p.graph.num_edges for p in partitioned.partitions)
        assert total == len(EDGES)


class TestFigure6:
    def test_memoization_exchange(self, figure2_partition):
        """h1's mirrors array and h2's masters array list {C,G,J}, aligned."""
        _, partitioned = figure2_partition
        transport = InProcessTransport(2)
        subs = setup_substrates(partitioned, transport, OptimizationLevel.OSTI)
        transport.end_round()
        h1, h2 = partitioned.partitions
        mirror_gids = h1.local_to_global[subs[0].book.mirrors_all[1]]
        assert mirror_gids.tolist() == [C, G, J]
        master_gids = h2.local_to_global[subs[1].book.masters_all[0]]
        assert master_gids.tolist() == [C, G, J]


class TestFigure7:
    def test_round_two_message_is_bitvec_110(self, figure2_partition):
        """The exact §4.2 scenario: after BFS round 2 with source A, h1
        ships a BITVEC message selecting mirrors 0 and 1 (C and G) with
        values [2, 2]."""
        edges, partitioned = figure2_partition
        transport = InProcessTransport(2)
        subs = setup_substrates(partitioned, transport, OptimizationLevel.OSTI)
        transport.end_round()
        app = make_app("bfs")
        ctx = AppContext(num_global_nodes=10, source=A)
        states = [
            app.make_state(part, ctx) for part in partitioned.partitions
        ]
        fields = [
            app.make_fields(part, state)[0]
            for part, state in zip(partitioned.partitions, states)
        ]
        frontiers = [
            app.initial_frontier(part, state, ctx)
            for part, state in zip(partitioned.partitions, states)
        ]

        def run_round(inspect_wire=False):
            outcomes = [
                app.step(part, state, frontier)
                for part, state, frontier in zip(
                    partitioned.partitions, states, frontiers
                )
            ]
            for sub, field, outcome in zip(subs, fields, outcomes):
                sub.send_reduce(field, outcome.updated)
            captured = None
            if inspect_wire:
                inbox = transport.receive_all(1)
                assert len(inbox) == 1 and inbox[0][0] == 0
                captured = inbox[0][1]
                # Re-inject so the collective completes normally.
                transport.send(0, 1, captured)
                transport.stats.rounds[-1].messages.pop()
            changed = [
                sub.receive_reduce(field)
                for sub, field in zip(subs, fields)
            ]
            for host in range(2):
                part = partitioned.partitions[host]
                dirty = changed[host] | outcomes[host].updated
                dirty[part.num_masters :] = False
                subs[host].send_broadcast(fields[host], dirty)
            for host in range(2):
                extra = subs[host].receive_broadcast(fields[host])
                frontiers[host] = (
                    outcomes[host].updated | changed[host] | extra
                )
            transport.end_round()
            return captured

        # Round 1: h1 reaches B and F — nothing shared with h2 updates,
        # so the reduce message to h2 is EMPTY.
        payload = run_round(inspect_wire=True)
        message = decode_message(payload)
        assert message.mode is MetadataMode.EMPTY

        # Round 2: h1 reaches C, G (mirrors) and E (its own master).
        payload = run_round(inspect_wire=True)
        message = decode_message(payload)
        assert message.mode is MetadataMode.BITVEC
        assert message.selection.tolist() == [0, 1]  # bit-vector "110"
        assert message.values.tolist() == [2, 2]

        # And h2's masters received the canonical labels.
        h2 = partitioned.partitions[1]
        dist_h2 = states[1]["dist"]
        assert dist_h2[h2.to_local(C)] == 2
        assert dist_h2[h2.to_local(G)] == 2
        assert dist_h2[h2.to_local(J)] == np.iinfo(np.uint32).max
