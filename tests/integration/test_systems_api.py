"""Tests for the public systems API (repro.systems)."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.graph.generators import star_graph
from repro.systems import (
    ALL_SYSTEMS,
    default_source,
    prepare_input,
    run_app,
)


class TestPrepareInput:
    def test_default_source_is_max_out_degree(self, small_rmat):
        """§5.1: bfs/sssp sources are the maximum out-degree node."""
        source = default_source(small_rmat)
        out_degree = np.bincount(
            small_rmat.src, minlength=small_rmat.num_nodes
        )
        assert out_degree[source] == out_degree.max()

    def test_star_source_is_hub(self):
        assert default_source(star_graph(10)) == 0

    def test_empty_graph_rejected(self):
        from repro.graph.edgelist import EdgeList

        empty = EdgeList(0, np.array([], np.uint32), np.array([], np.uint32))
        with pytest.raises(ExecutionError):
            default_source(empty)

    def test_sssp_gets_weights(self, small_rmat):
        prep = prepare_input("sssp", small_rmat)
        assert prep.edges.has_weights

    def test_bfs_stays_unweighted(self, small_rmat):
        prep = prepare_input("bfs", small_rmat)
        assert not prep.edges.has_weights

    def test_cc_symmetrized(self, small_rmat):
        prep = prepare_input("cc", small_rmat)
        pairs = set(zip(prep.edges.src.tolist(), prep.edges.dst.tolist()))
        assert all((d, s) in pairs for s, d in pairs)

    def test_pr_context_carries_global_degrees(self, small_rmat):
        prep = prepare_input("pr", small_rmat)
        assert prep.ctx.global_out_degree is not None
        assert len(prep.ctx.global_out_degree) == small_rmat.num_nodes


class TestRunAppValidation:
    def test_unknown_system(self, small_rmat):
        with pytest.raises(ExecutionError, match="unknown system"):
            run_app("spark", "bfs", small_rmat, num_hosts=2)

    def test_unknown_app(self, small_rmat):
        with pytest.raises(ValueError, match="unknown application"):
            run_app("d-galois", "tsp", small_rmat, num_hosts=2)

    def test_shared_memory_systems_single_host_only(self, small_rmat):
        with pytest.raises(ExecutionError, match="shared-memory"):
            run_app("galois", "bfs", small_rmat, num_hosts=2)

    def test_shared_memory_systems_reject_policy(self, small_rmat):
        with pytest.raises(ExecutionError, match="unpartitioned"):
            run_app("ligra", "bfs", small_rmat, num_hosts=1, policy="cvc")

    def test_all_systems_enumerate(self):
        assert set(ALL_SYSTEMS) == {
            "d-galois",
            "d-ligra",
            "d-irgl",
            "d-hybrid",
            "galois",
            "ligra",
            "irgl",
            "gemini",
            "gunrock",
        }


class TestRunAppResults:
    @pytest.mark.parametrize("system", ["galois", "ligra", "irgl"])
    def test_shared_memory_systems_run(self, small_rmat, system):
        result = run_app(system, "bfs", small_rmat, num_hosts=1)
        assert result.converged
        assert result.communication_volume == 0
        assert result.system == system

    def test_result_metadata(self, small_rmat):
        result = run_app(
            "d-ligra", "cc", small_rmat, num_hosts=4, policy="hvc"
        )
        assert result.system == "d-ligra"
        assert result.app == "cc"
        assert result.policy == "hvc"
        assert result.num_hosts == 4
        assert result.construction_time > 0

    def test_summary_roundtrip(self, small_rmat):
        summary = run_app(
            "d-galois", "bfs", small_rmat, num_hosts=2, policy="oec"
        ).summary()
        assert summary["system"] == "d-galois"
        assert summary["converged"] is True

    def test_dirgl_small_gpu_count_uses_intranode_fabric(self, small_rmat):
        intra = run_app("d-irgl", "bfs", small_rmat, num_hosts=4, policy="oec")
        from repro.network.cost_model import LCI_PARAMETERS

        inter = run_app(
            "d-irgl",
            "bfs",
            small_rmat,
            num_hosts=4,
            policy="oec",
            network=LCI_PARAMETERS,
        )
        # Same traffic, faster fabric inside the node.
        assert intra.communication_volume == inter.communication_volume
        assert intra.communication_time < inter.communication_time
