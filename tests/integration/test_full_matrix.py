"""Smoke matrix: every (system, application) pairing runs and converges.

A downstream user should be able to combine any system with any app; this
matrix pins that contract (with the documented exceptions: shared-memory
systems are single-host, Gunrock is single-node).
"""

import numpy as np
import pytest

from repro.apps import APP_BY_NAME
from repro.graph.generators import rmat
from repro.systems import ALL_SYSTEMS, run_app

APPS = sorted(set(APP_BY_NAME) - {"pagerank"})  # drop the alias

EDGES = rmat(scale=8, edge_factor=6, seed=13)


def hosts_for(system: str) -> int:
    if system in ("galois", "ligra", "irgl"):
        return 1
    if system == "gunrock":
        return 4
    return 4


@pytest.mark.parametrize("system", sorted(ALL_SYSTEMS))
@pytest.mark.parametrize("app", APPS)
def test_every_pairing_runs(system, app):
    result = run_app(system, app, EDGES, num_hosts=hosts_for(system))
    assert result.converged, (system, app)
    assert result.num_rounds >= 1


@pytest.mark.parametrize("app", APPS)
def test_all_distributed_systems_agree(app):
    """For each app, every Gluon system and the baselines compute the same
    master values."""
    key = {
        "bfs": "dist",
        "sssp": "dist",
        "cc": "label",
        "pr": "rank",
        "pr-push": "rank",
        "kcore": "alive",
        "bc": "delta",
        "featprop": "feat",
        "featprop-mean": "feat",
        "labelprop": "label",
        "sage": "hidden",
    }[app]
    systems = ["d-galois", "d-ligra", "d-irgl", "d-hybrid", "gemini"]
    baseline = None
    for system in systems:
        result = run_app(system, app, EDGES, num_hosts=4)
        executor = result.executor
        values = executor.app.gather_master_values(
            executor.partitioned.partitions, executor.states, key
        )
        if values.dtype.kind == "f":
            values = np.round(values, 6)
        if baseline is None:
            baseline = values
        else:
            assert np.array_equal(values, baseline), (app, system)
