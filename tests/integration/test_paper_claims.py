"""Integration tests for the paper's qualitative claims.

Each test pins one *shape* from the evaluation section: which configuration
wins, what gets smaller, where overhead appears.  Absolute numbers are
simulation-specific; the orderings are the reproduction targets.
"""

import pytest

from repro.core.metadata import MetadataMode
from repro.core.optimization import OptimizationLevel
from repro.systems import run_app


@pytest.fixture(scope="module")
def level_results(medium_rmat):
    """sssp on 8 hosts at every optimization level (Figure 10 setup)."""
    return {
        level: run_app(
            "d-galois",
            "sssp",
            medium_rmat,
            num_hosts=8,
            policy="cvc",
            level=level,
        )
        for level in OptimizationLevel
    }


class TestFigure10Shapes:
    def test_volume_ordering(self, level_results):
        """OSTI < OTI < UNOPT and OSI < UNOPT in communication volume."""
        volume = {
            level: r.communication_volume
            for level, r in level_results.items()
        }
        assert volume[OptimizationLevel.OSTI] < volume[OptimizationLevel.OTI]
        assert volume[OptimizationLevel.OTI] < volume[OptimizationLevel.UNOPT]
        assert volume[OptimizationLevel.OSI] < volume[OptimizationLevel.UNOPT]
        assert volume[OptimizationLevel.OSTI] < volume[OptimizationLevel.OSI]

    def test_memoization_roughly_halves_volume(self, level_results):
        """§5.6: replacing 32-bit gids with bit-vectors cuts volume ~2x."""
        unopt = level_results[OptimizationLevel.UNOPT].communication_volume
        oti = level_results[OptimizationLevel.OTI].communication_volume
        assert unopt / oti > 1.5

    def test_translation_overhead_removed_by_oti(self, level_results):
        assert level_results[OptimizationLevel.UNOPT].translations > 0
        assert level_results[OptimizationLevel.OSI].translations > 0
        assert level_results[OptimizationLevel.OTI].translations == 0
        assert level_results[OptimizationLevel.OSTI].translations == 0

    def test_metadata_modes_actually_used(self, level_results):
        """The adaptive encoder exercises several modes over a run."""
        modes = set(level_results[OptimizationLevel.OSTI].mode_counts)
        assert MetadataMode.GLOBAL_IDS not in modes
        assert len(modes) >= 2  # at least EMPTY plus a data-carrying mode


class TestReplicationFactor:
    def test_cvc_beats_gemini_at_scale(self, medium_rmat):
        """§5.2: Gemini's replication 4-25 vs Gluon CVC's 2-8."""
        gemini = run_app("gemini", "bfs", medium_rmat, num_hosts=16)
        dgalois = run_app(
            "d-galois", "bfs", medium_rmat, num_hosts=16, policy="cvc"
        )
        assert dgalois.replication_factor < gemini.replication_factor


class TestSystemComparisons:
    def test_dgalois_beats_gemini(self, medium_rmat):
        """Table 3 / Figure 8(a): D-Galois outperforms Gemini."""
        for app in ("bfs", "pr"):
            gemini = run_app("gemini", app, medium_rmat, num_hosts=8)
            dgalois = run_app(
                "d-galois", app, medium_rmat, num_hosts=8, policy="cvc"
            )
            assert dgalois.total_time < gemini.total_time, app

    def test_gemini_sends_much_more_on_pr(self, medium_rmat):
        """Figure 8(b): Gemini's volume far exceeds the Gluon systems'
        (an order of magnitude at the paper's 128-256 hosts; the gap grows
        with host count and is already ~2-4x at our 16 hosts)."""
        gemini = run_app("gemini", "pr", medium_rmat, num_hosts=16)
        dgalois = run_app(
            "d-galois", "pr", medium_rmat, num_hosts=16, policy="cvc"
        )
        assert gemini.communication_volume > 2 * dgalois.communication_volume

    def test_gemini_volume_gap_widens_with_hosts(self, medium_rmat):
        """The Gemini-vs-Gluon volume ratio grows with scale (Figure 8(b)'s
        diverging curves)."""

        def ratio(num_hosts):
            gemini = run_app("gemini", "pr", medium_rmat, num_hosts=num_hosts)
            dgalois = run_app(
                "d-galois", "pr", medium_rmat, num_hosts=num_hosts,
                policy="cvc",
            )
            return gemini.communication_volume / dgalois.communication_volume

        assert ratio(16) > ratio(4)

    def test_dligra_and_dgalois_similar_volume(self, medium_rmat):
        """§5.4: both Gluon-based systems communicate similar volumes."""
        ligra = run_app(
            "d-ligra", "pr", medium_rmat, num_hosts=8, policy="cvc"
        )
        galois = run_app(
            "d-galois", "pr", medium_rmat, num_hosts=8, policy="cvc"
        )
        ratio = ligra.communication_volume / galois.communication_volume
        assert 0.5 < ratio < 2.0

    def test_dligra_needs_more_rounds(self, small_grid):
        """§5.4: level-by-level D-Ligra runs 2-4x+ more rounds than
        D-Galois, whose within-host asynchrony collapses whole local
        chunks into one round.  Most visible on high-diameter inputs with
        contiguous (chunked) partitions."""
        ligra = run_app(
            "d-ligra", "sssp", small_grid, num_hosts=4, policy="oec"
        )
        galois = run_app(
            "d-galois", "sssp", small_grid, num_hosts=4, policy="oec"
        )
        assert ligra.num_rounds >= 2 * galois.num_rounds

    def test_dligra_never_fewer_rounds(self, medium_rmat):
        ligra = run_app(
            "d-ligra", "sssp", medium_rmat, num_hosts=8, policy="cvc"
        )
        galois = run_app(
            "d-galois", "sssp", medium_rmat, num_hosts=8, policy="cvc"
        )
        assert ligra.num_rounds >= galois.num_rounds


class TestSingleHostOverhead:
    def test_gluon_layer_overhead_is_small(self, medium_rmat):
        """Table 4: D-Galois on one host is competitive with Galois."""
        shared = run_app("galois", "bfs", medium_rmat, num_hosts=1)
        distributed = run_app("d-galois", "bfs", medium_rmat, num_hosts=1)
        assert distributed.total_time < 1.5 * shared.total_time
        # No communication happens on one host either way.
        assert distributed.communication_volume == 0


class TestConstructionCommunication:
    def test_memoization_cost_is_one_time(self, medium_rmat):
        """§4.1: memoization traffic happens before round 1 only."""
        result = run_app(
            "d-galois", "bfs", medium_rmat, num_hosts=8, policy="cvc"
        )
        assert result.construction_bytes > 0
        # Mean runtime overhead of memoization is small (§5.6 reports ~4%).
        assert result.construction_bytes < 5 * max(
            result.communication_volume, 1
        )
