"""Tests for heterogeneous CPU+GPU clusters (Figure 1, §5.7).

Gluon's decoupling means each host can run a different compute engine;
the ``d-hybrid`` system alternates Galois (CPU) and IrGL (GPU) hosts.
"""

import numpy as np
import pytest

from repro.apps import make_app
from repro.engines import make_engine
from repro.errors import ExecutionError
from repro.partition import make_partitioner
from repro.runtime.executor import DistributedExecutor
from repro.systems import prepare_input, run_app
from tests.conftest import reference_bfs, reference_pagerank


@pytest.mark.parametrize("app", ["bfs", "cc", "pr", "sssp"])
def test_hybrid_matches_homogeneous(small_rmat, app):
    hybrid = run_app("d-hybrid", app, small_rmat, num_hosts=4, policy="cvc")
    homogeneous = run_app(
        "d-galois", app, small_rmat, num_hosts=4, policy="cvc"
    )
    key = {"bfs": "dist", "sssp": "dist", "cc": "label", "pr": "rank"}[app]
    assert np.array_equal(
        hybrid.executor.gather_result(key),
        homogeneous.executor.gather_result(key),
    )


def test_hybrid_correct_vs_oracle(small_rmat):
    prep = prepare_input("bfs", small_rmat)
    expected = reference_bfs(prep.edges, prep.ctx.source)
    result = run_app("d-hybrid", "bfs", small_rmat, num_hosts=6, policy="hvc")
    got = result.executor.gather_result("dist").astype(np.uint64)
    assert np.array_equal(got, expected)
    assert result.system == "d-hybrid"


def test_explicit_engine_list(small_rmat):
    """Any per-host engine mix can be passed to the executor directly."""
    prep = prepare_input("pr", small_rmat)
    partitioned = make_partitioner("cvc").partition(prep.edges, 3)
    engines = [make_engine("ligra"), make_engine("irgl"), make_engine("galois")]
    executor = DistributedExecutor(
        partitioned, engines, make_app("pr"), prep.ctx
    )
    result = executor.run()
    assert result.converged
    assert result.system == "heterogeneous+gluon"
    np.testing.assert_allclose(
        executor.gather_result("rank"),
        reference_pagerank(small_rmat),
        rtol=1e-9,
    )


def test_engine_list_length_validated(small_rmat):
    prep = prepare_input("bfs", small_rmat)
    partitioned = make_partitioner("cvc").partition(prep.edges, 3)
    with pytest.raises(ExecutionError, match="engines"):
        DistributedExecutor(
            partitioned,
            [make_engine("galois")],
            make_app("bfs"),
            prep.ctx,
        )


def test_gpu_hosts_pay_device_transfer(small_rmat):
    """Mixing in GPU hosts adds host<->device transfer to comm time.

    Ligra and IrGL are both level-synchronous single-step engines, so an
    all-Ligra run and a Ligra/IrGL mix produce byte-identical traffic —
    isolating the device-transfer charge.
    """
    prep = prepare_input("bfs", small_rmat)
    partitioned = make_partitioner("cvc").partition(prep.edges, 4)
    cpu = DistributedExecutor(
        partitioned, make_engine("ligra"), make_app("bfs"), prep.ctx
    ).run()
    hybrid_engines = [
        make_engine("ligra"),
        make_engine("irgl"),
        make_engine("ligra"),
        make_engine("irgl"),
    ]
    hybrid = DistributedExecutor(
        partitioned, hybrid_engines, make_app("bfs"), prep.ctx
    ).run()
    assert hybrid.communication_volume == cpu.communication_volume
    assert hybrid.communication_time > cpu.communication_time
