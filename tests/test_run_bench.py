"""Smoke tests for the benchmark harness (benchmarks/run_bench.py)."""

import json

import pytest

from benchmarks import run_bench


class TestSmokeMatrix:
    @pytest.fixture(scope="class")
    def payload(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("bench")
        output = tmp / "BENCH_test.json"
        code = run_bench.main(
            [
                "--smoke",
                "--output", str(output),
                "--export-dir", str(tmp / "exports"),
            ]
        )
        assert code == 0
        return json.loads(output.read_text()), tmp

    def test_emits_full_matrix(self, payload):
        doc, _ = payload
        assert doc["smoke"] is True
        assert len(doc["matrix"]) == len(run_bench.SMOKE_APPS) * len(
            run_bench.DEFAULT_POLICIES
        ) * len(run_bench.SMOKE_HOSTS)

    def test_rows_carry_the_three_perf_axes(self, payload):
        doc, _ = payload
        for row in doc["matrix"]:
            assert row["wall_s"] >= 0
            assert row["sim_time_s"] > 0
            assert row["total_bytes"] > 0
            assert row["rounds"] >= 1
            assert row["converged"] is True
            assert row["reconciled"] is True

    def test_smoke_exports_traces_and_metrics(self, payload):
        doc, tmp = payload
        exports = tmp / "exports"
        traces = sorted(exports.glob("*.trace.json"))
        metrics = sorted(exports.glob("*.metrics.json"))
        assert len(traces) == len(doc["matrix"])
        assert len(metrics) == len(doc["matrix"])
        # Every exported trace is a well-formed Chrome trace document.
        for trace in traces:
            events = json.loads(trace.read_text())["traceEvents"]
            assert any(e["ph"] == "X" for e in events)

    def test_default_output_name_carries_the_date(self, payload):
        doc, _ = payload
        assert doc["date"] and len(doc["date"]) == 10  # YYYY-MM-DD

    def test_service_cell_reports_warm_speedup(self, payload):
        doc, _ = payload
        cell = doc["service"]
        assert cell is not None
        assert cell["jobs"] >= 2
        # Every warm job must have been served from the result cache...
        assert cell["result_cache_hits"] == cell["jobs"] * cell["repeats"]
        # ...and the acceptance bar is 2x; warm hits skip partitioning
        # and execution entirely, so in practice this is orders higher.
        assert cell["speedup"] >= 2.0
        assert cell["warm_jobs_per_s"] > cell["cold_jobs_per_s"]


    def test_aggregation_cell_reports_message_reduction(self, payload):
        doc, _ = payload
        cell = doc["aggregation"]
        assert cell is not None
        assert cell["app"] == "bc"
        # Two-field sweep: the acceptance bar is a 2x message cut.
        assert cell["two_field_reduction"] >= 2.0
        assert (
            cell["messages_aggregated"] < cell["messages_per_field"]
        )
        assert (
            cell["sim_comm_s_aggregated"] < cell["sim_comm_s_per_field"]
        )

    def test_incremental_cell_sweeps_affected_fractions(self, payload):
        doc, _ = payload
        cells = doc["incremental"]["cells"]
        assert cells, "smoke run must include the streaming cell"
        for cell in cells:
            assert cell["app"] in {"bfs", "sssp", "cc"}
            assert cell["partition_cache_reuses"] >= 0
            fractions = [r["mutated_fraction"] for r in cell["steps"]]
            assert fractions == sorted(fractions)  # a sweep, not a pile
            for row in cell["steps"]:
                # Every row is checked bitwise against a cold recompute.
                assert row["bitwise_identical"] is True
                assert row["streamed_messages"] <= row["cold_messages"]
                assert row["hosts_reused"] + row["hosts_rebuilt"] == (
                    cell["hosts"]
                )
                assert row["strategy"] in {"min-plus", "component", "replay"}
            # The ~1% bar row is present and recorded, even in smoke.
            assert cell["message_cut_at_1pct"] is not None

    def test_compiler_cell_checks_generated_code(self, payload):
        doc, _ = payload
        cell = doc["compiler"]
        assert cell is not None
        assert cell["pairs"], "smoke run must include compiled pairs"
        assert all(row["bitwise_identical"] for row in cell["pairs"])
        # Both round-execution runtimes are exercised on each app.
        runtimes = {(r["app"], r["runtime"]) for r in cell["runtimes"]}
        assert runtimes == {
            ("bfs", "simulated"), ("bfs", "process"),
            ("pr", "simulated"), ("pr", "process"),
        }
        assert cell["pr_round_overhead"] > 0
        # Smoke graphs are too small for a stable timing bar.
        assert cell["bar_enforced"] is False


class TestNoService:
    def test_flag_skips_the_service_cell(self, tmp_path):
        output = tmp_path / "BENCH_test.json"
        code = run_bench.main(
            [
                "--smoke",
                "--no-service",
                "--no-aggregation-cell",
                "--no-incremental-cell",
                "--no-compiler-cell",
                "--output", str(output),
                "--export-dir", str(tmp_path / "exports"),
            ]
        )
        assert code == 0
        doc = json.loads(output.read_text())
        assert doc["service"] is None
        assert doc["aggregation"] is None
        assert doc["incremental"] is None
        assert doc["compiler"] is None
