"""Push-style (residual) pagerank correctness and reset semantics."""

import numpy as np
import pytest

from repro.systems import run_app
from tests.conftest import reference_pagerank

POLICIES = ["oec", "iec", "cvc", "hvc"]


def distributed_push_pr(edges, system="d-galois", tolerance=1e-9, **kwargs):
    result = run_app(
        system, "pr-push", edges, tolerance=tolerance, **kwargs
    )
    executor = result.executor
    got = executor.app.gather_rank(
        executor.partitioned.partitions, executor.states
    )
    return result, got


@pytest.mark.parametrize("policy", POLICIES)
def test_matches_pull_oracle_all_policies(small_rmat, policy):
    expected = reference_pagerank(small_rmat, tolerance=1e-12)
    result, got = distributed_push_pr(
        small_rmat, num_hosts=4, policy=policy
    )
    assert result.converged
    np.testing.assert_allclose(got, expected, atol=1e-5)


@pytest.mark.parametrize("num_hosts", [1, 2, 6])
def test_matches_oracle_host_counts(small_rmat, num_hosts):
    expected = reference_pagerank(small_rmat, tolerance=1e-12)
    _, got = distributed_push_pr(
        small_rmat, num_hosts=num_hosts, policy="cvc"
    )
    np.testing.assert_allclose(got, expected, atol=1e-5)


@pytest.mark.parametrize("system", ["d-ligra", "d-irgl", "gemini"])
def test_matches_oracle_systems(small_rmat, system):
    expected = reference_pagerank(small_rmat, tolerance=1e-12)
    _, got = distributed_push_pr(small_rmat, system=system, num_hosts=4)
    np.testing.assert_allclose(got, expected, atol=1e-5)


def test_terminates_by_frontier(small_rmat):
    """Residual pagerank is data-driven: it stops when residuals die out,
    not at an iteration cap."""
    result, _ = distributed_push_pr(
        small_rmat, num_hosts=4, policy="cvc", tolerance=1e-6
    )
    assert result.converged
    assert result.rounds[-1].active_nodes == 0


def test_looser_tolerance_fewer_rounds(small_rmat):
    loose, _ = distributed_push_pr(
        small_rmat, num_hosts=4, policy="cvc", tolerance=1e-3
    )
    tight, _ = distributed_push_pr(
        small_rmat, num_hosts=4, policy="cvc", tolerance=1e-10
    )
    assert loose.num_rounds < tight.num_rounds


def test_mirror_residuals_reset_to_zero(small_rmat):
    """§2.3's example: push-pagerank mirrors reset to the ADD identity."""
    result, _ = distributed_push_pr(small_rmat, num_hosts=4, policy="oec")
    executor = result.executor
    for part, state in zip(executor.partitioned.partitions, executor.states):
        mirror_residuals = state["residual"][part.num_masters :]
        # All shipped partials were reset; nothing above tolerance remains.
        assert np.all(mirror_residuals <= 1e-6)


def test_star_graph_ranks():
    from repro.graph.generators import star_graph

    edges = star_graph(10)
    expected = reference_pagerank(edges, tolerance=1e-12)
    _, got = distributed_push_pr(edges, num_hosts=3, policy="cvc")
    np.testing.assert_allclose(got, expected, atol=1e-6)
