"""BFS correctness against an oracle, across policies/systems/host counts."""

import numpy as np
import pytest

from repro.systems import prepare_input, run_app
from tests.conftest import reference_bfs

POLICIES = ["oec", "iec", "cvc", "hvc"]


def distributed_bfs(edges, system="d-galois", **kwargs):
    result = run_app(system, "bfs", edges, **kwargs)
    return result, result.executor.gather_result("dist").astype(np.uint64)


@pytest.mark.parametrize("policy", POLICIES)
def test_matches_oracle_all_policies(small_rmat, policy):
    prep = prepare_input("bfs", small_rmat)
    expected = reference_bfs(prep.edges, prep.ctx.source)
    _, got = distributed_bfs(small_rmat, num_hosts=4, policy=policy)
    assert np.array_equal(got, expected)


@pytest.mark.parametrize("num_hosts", [1, 2, 3, 5, 8])
def test_matches_oracle_all_host_counts(small_rmat, num_hosts):
    prep = prepare_input("bfs", small_rmat)
    expected = reference_bfs(prep.edges, prep.ctx.source)
    _, got = distributed_bfs(small_rmat, num_hosts=num_hosts, policy="cvc")
    assert np.array_equal(got, expected)


@pytest.mark.parametrize(
    "system", ["d-galois", "d-ligra", "d-irgl", "gemini", "gunrock"]
)
def test_matches_oracle_all_systems(small_rmat, system):
    prep = prepare_input("bfs", small_rmat)
    expected = reference_bfs(prep.edges, prep.ctx.source)
    _, got = distributed_bfs(small_rmat, system=system, num_hosts=4)
    assert np.array_equal(got, expected)


def test_path_graph_levels(small_path):
    """On a directed path from the source, dist equals position."""
    _, got = distributed_bfs(
        small_path, num_hosts=3, policy="oec", source=0
    )
    assert got.tolist() == list(range(len(got)))


def test_unreachable_nodes_stay_infinite(small_path):
    inf = np.iinfo(np.uint32).max
    _, got = distributed_bfs(
        small_path, num_hosts=2, policy="cvc", source=5
    )
    assert np.all(got[:5] == inf)
    assert got[5] == 0


def test_star_graph_single_round_of_updates():
    from repro.graph.generators import star_graph

    edges = star_graph(50)
    result, got = distributed_bfs(edges, num_hosts=4, policy="cvc", source=0)
    assert got[0] == 0
    assert np.all(got[1:] == 1)


def test_grid_graph(small_grid):
    prep = prepare_input("bfs", small_grid)
    expected = reference_bfs(prep.edges, prep.ctx.source)
    _, got = distributed_bfs(small_grid, num_hosts=4, policy="iec")
    assert np.array_equal(got, expected)


def test_explicit_source_respected(small_rmat):
    source = 17
    expected = reference_bfs(small_rmat, source)
    _, got = distributed_bfs(
        small_rmat, num_hosts=4, policy="cvc", source=source
    )
    assert np.array_equal(got, expected)


def test_dligra_uses_more_rounds_than_dgalois(medium_rmat):
    """§5.4: level-synchronous D-Ligra needs more rounds than D-Galois."""
    ligra, _ = distributed_bfs(
        medium_rmat, system="d-ligra", num_hosts=4, policy="cvc"
    )
    galois, _ = distributed_bfs(
        medium_rmat, system="d-galois", num_hosts=4, policy="cvc"
    )
    assert ligra.num_rounds >= galois.num_rounds
