"""Pagerank correctness against a power-iteration oracle."""

import numpy as np
import pytest

from repro.systems import run_app
from tests.conftest import reference_pagerank

POLICIES = ["oec", "iec", "cvc", "hvc"]


def distributed_pr(edges, system="d-galois", **kwargs):
    result = run_app(system, "pr", edges, **kwargs)
    return result, result.executor.gather_result("rank")


@pytest.mark.parametrize("policy", POLICIES)
def test_matches_oracle_all_policies(small_rmat, policy):
    expected = reference_pagerank(small_rmat)
    result, got = distributed_pr(small_rmat, num_hosts=4, policy=policy)
    assert result.converged
    np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("system", ["d-ligra", "d-irgl", "gemini"])
def test_matches_oracle_systems(small_rmat, system):
    expected = reference_pagerank(small_rmat)
    _, got = distributed_pr(small_rmat, system=system, num_hosts=4)
    np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("num_hosts", [1, 2, 7])
def test_matches_oracle_host_counts(small_rmat, num_hosts):
    expected = reference_pagerank(small_rmat)
    _, got = distributed_pr(small_rmat, num_hosts=num_hosts, policy="cvc")
    np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-12)


def test_iteration_cap_respected(small_rmat):
    result, _ = distributed_pr(
        small_rmat, num_hosts=2, policy="cvc", max_iterations=5,
        tolerance=0.0,
    )
    assert result.num_rounds == 5
    assert result.converged  # stopped *by* the cap, like the paper's 100

    reference = reference_pagerank(
        small_rmat, tolerance=0.0, max_iterations=5
    )
    got = result.executor.gather_result("rank")
    np.testing.assert_allclose(got, reference, rtol=1e-9, atol=1e-12)


def test_tighter_tolerance_runs_longer(small_rmat):
    loose, _ = distributed_pr(
        small_rmat, num_hosts=2, policy="cvc", tolerance=1e-3
    )
    tight, _ = distributed_pr(
        small_rmat, num_hosts=2, policy="cvc", tolerance=1e-9
    )
    assert tight.num_rounds > loose.num_rounds


def test_sink_nodes_have_base_rank_contribution():
    """Nodes with no in-edges keep rank (1 - d)."""
    from repro.graph.generators import star_graph

    edges = star_graph(10)  # node 0 -> others; node 0 has no in-edges
    _, got = distributed_pr(edges, num_hosts=2, policy="cvc")
    assert got[0] == pytest.approx(0.15)
    assert np.all(got[1:] > 0.15)


def test_rank_sum_reasonable(small_rmat):
    """Total rank stays near N*(1-d)/(1-d*fraction) territory — finite and
    positive; a sanity check that contributions are not double counted."""
    _, got = distributed_pr(small_rmat, num_hosts=4, policy="hvc")
    assert np.all(got >= 0.15 - 1e-12)
    assert np.isfinite(got).all()
