"""Unit tests for the vertex-program framework (repro.apps.base)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import AppContext, VertexProgram, gather_frontier_edges
from repro.graph.csr import CSRGraph
from repro.partition import make_partitioner


class TestGatherFrontierEdges:
    def graph(self):
        src = np.array([0, 0, 1, 3, 3, 3], dtype=np.uint32)
        dst = np.array([1, 2, 2, 0, 1, 2], dtype=np.uint32)
        return CSRGraph.from_edges(4, src, dst)

    def test_collects_frontier_out_edges(self):
        g = self.graph()
        frontier = np.array([True, False, False, True])
        src_rep, dst, positions = gather_frontier_edges(g, frontier)
        assert len(dst) == 5  # node 0 has 2 out-edges, node 3 has 3
        assert set(src_rep.tolist()) == {0, 3}
        assert np.array_equal(g.indices[positions], dst)

    def test_empty_frontier(self):
        g = self.graph()
        src_rep, dst, positions = gather_frontier_edges(
            g, np.zeros(4, dtype=bool)
        )
        assert len(src_rep) == len(dst) == len(positions) == 0

    def test_frontier_of_edgeless_nodes(self):
        g = self.graph()
        frontier = np.array([False, False, True, False])  # node 2: no out
        src_rep, dst, _ = gather_frontier_edges(g, frontier)
        assert len(dst) == 0

    def test_positions_index_weights(self):
        src = np.array([0, 1], dtype=np.uint32)
        dst = np.array([1, 0], dtype=np.uint32)
        weights = np.array([7, 9], dtype=np.uint32)
        g = CSRGraph.from_edges(2, src, dst, weights)
        _, _, positions = gather_frontier_edges(
            g, np.array([False, True])
        )
        assert g.weights[positions].tolist() == [9]

    @given(
        num_nodes=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_per_node_enumeration(self, num_nodes, seed):
        rng = np.random.default_rng(seed)
        num_edges = int(rng.integers(0, 80))
        src = rng.integers(0, num_nodes, size=num_edges, dtype=np.uint32)
        dst = rng.integers(0, num_nodes, size=num_edges, dtype=np.uint32)
        g = CSRGraph.from_edges(num_nodes, src, dst)
        frontier = rng.random(num_nodes) < 0.5
        src_rep, gathered_dst, _ = gather_frontier_edges(g, frontier)
        expected = []
        for node in np.flatnonzero(frontier):
            for neighbor in g.neighbors(int(node)):
                expected.append((int(node), int(neighbor)))
        got = sorted(zip(src_rep.tolist(), gathered_dst.tolist()))
        assert got == sorted(expected)


class TestAppContext:
    def test_defaults(self):
        ctx = AppContext(num_global_nodes=10)
        assert ctx.source == 0
        assert ctx.damping == 0.85
        assert ctx.max_iterations == 100
        assert ctx.k == 2
        assert ctx.global_out_degree is None


class TestGatherMasterValues:
    def test_assembles_global_array(self, tiny_edges):
        partitioned = make_partitioner("oec").partition(tiny_edges, 2)
        app = VertexProgram()
        states = []
        for part in partitioned.partitions:
            values = part.local_to_global.astype(np.uint32) * 10
            states.append({"v": values})
        result = app.gather_master_values(
            partitioned.partitions, states, "v"
        )
        assert np.array_equal(
            result, np.arange(10, dtype=np.uint32) * 10
        )

    def test_empty_parts(self):
        app = VertexProgram()
        assert len(app.gather_master_values([], [], "v")) == 0

    def test_mirror_values_ignored(self, tiny_edges):
        """Only master values land in the global array."""
        partitioned = make_partitioner("oec").partition(tiny_edges, 2)
        app = VertexProgram()
        states = []
        for part in partitioned.partitions:
            values = np.zeros(part.num_nodes, dtype=np.uint32)
            values[: part.num_masters] = 1
            values[part.num_masters :] = 99  # must not leak
            states.append({"v": values})
        result = app.gather_master_values(
            partitioned.partitions, states, "v"
        )
        assert np.all(result == 1)


class TestVertexProgramDefaults:
    def test_base_class_contract(self):
        app = VertexProgram()
        assert app.is_reduction
        assert app.iterate_locally
        assert app.uses_frontier
        assert not app.supports_pull
        assert not app.needs_global_degrees
        assert app.supports_migration
        assert app.local_residual({}) == 0.0
        assert not app.is_globally_converged(0.0, 1, AppContext(1))
        for method in ("make_state", "make_fields", "initial_frontier"):
            with pytest.raises(NotImplementedError):
                getattr(app, method)(None, None, None) if method == (
                    "initial_frontier"
                ) else getattr(app, method)(None, None)
        with pytest.raises(NotImplementedError):
            app.step(None, None, None)
