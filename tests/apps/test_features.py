"""Feature workloads: partition invariance, compression, and oracles.

The three SpMM-style apps are built on exact (dyadic / integer-valued)
arithmetic, so their results must be *bitwise* identical across host
counts, partition policies, runtimes, and the lossless compression
modes.  fp16 is the one lossy mode; its error must stay within the
documented :func:`repro.features.fp16_tolerance` bound.
"""

import numpy as np
import pytest

from repro.apps import make_app
from repro.engines import make_engine
from repro.features import fp16_tolerance
from repro.features.oracles import (
    featprop_features,
    labelprop_labels,
    sage_hidden,
)
from repro.graph.generators import rmat
from repro.partition import make_partitioner
from repro.runtime.executor import DistributedExecutor
from repro.systems import prepare_input, run_app
from repro.verify import verify_run

POLICIES = ["oec", "iec", "cvc", "hvc", "jagged", "random"]
DIM, ROUNDS = 8, 3

EDGES = rmat(scale=6, edge_factor=4, seed=3)


def run(app, *, hosts=4, policy="cvc", compression="none", dim=DIM,
        rounds=ROUNDS, **kwargs):
    return run_app(
        "d-galois", app, EDGES, num_hosts=hosts, policy=policy,
        feature_dim=dim, feature_rounds=rounds, compression=compression,
        **kwargs,
    )


def gather(result, key):
    return result.executor.gather_result(key)


class TestOracleAgreement:
    @pytest.mark.parametrize("compression", ["none", "delta"])
    @pytest.mark.parametrize("policy", POLICIES)
    def test_featprop(self, policy, compression):
        expected = featprop_features(EDGES, DIM, ROUNDS)
        result = run("featprop", policy=policy, compression=compression)
        assert np.array_equal(gather(result, "feat"), expected)

    @pytest.mark.parametrize("compression", ["none", "delta"])
    @pytest.mark.parametrize("policy", ["cvc", "jagged"])
    def test_featprop_mean(self, policy, compression):
        expected = featprop_features(EDGES, DIM, ROUNDS, mean=True)
        result = run("featprop-mean", policy=policy, compression=compression)
        # pow2 normalization divides by powers of two: dyadic-exact, so
        # the mean variant is held to bitwise equality too.
        assert np.array_equal(gather(result, "feat"), expected)

    @pytest.mark.parametrize("compression", ["none", "delta"])
    @pytest.mark.parametrize("policy", POLICIES)
    def test_labelprop(self, policy, compression):
        expected = labelprop_labels(EDGES, DIM, ROUNDS)
        result = run("labelprop", policy=policy, compression=compression)
        assert np.array_equal(gather(result, "label"), expected)

    @pytest.mark.parametrize("compression", ["none", "delta"])
    @pytest.mark.parametrize("policy", ["oec", "hvc"])
    def test_sage(self, policy, compression):
        expected = sage_hidden(EDGES, DIM)
        result = run("sage", policy=policy, compression=compression)
        assert np.array_equal(gather(result, "hidden"), expected)

    @pytest.mark.parametrize("compression", ["none", "delta"])
    @pytest.mark.parametrize("hosts", [1, 2, 8])
    def test_host_count_invariance(self, hosts, compression):
        feat = featprop_features(EDGES, DIM, ROUNDS)
        labels = labelprop_labels(EDGES, DIM, ROUNDS)
        fp = run("featprop", hosts=hosts, compression=compression)
        lp = run("labelprop", hosts=hosts, compression=compression)
        assert np.array_equal(gather(fp, "feat"), feat)
        assert np.array_equal(gather(lp, "label"), labels)


class TestFp16:
    @pytest.mark.parametrize(
        "app", ["featprop", "featprop-mean", "labelprop", "sage"]
    )
    def test_verifies_within_tolerance(self, app):
        result = run(app, compression="fp16")
        assert verify_run(result, EDGES).matched

    def test_featprop_error_bounded(self):
        expected = featprop_features(EDGES, DIM, ROUNDS)
        result = run("featprop", compression="fp16")
        err = np.abs(gather(result, "feat") - expected).max()
        assert err <= fp16_tolerance(expected, ROUNDS)

    def test_labelprop_bitwise_exact(self):
        """One-hot votes and small integer counts are fp16-representable,
        so even the lossy mode must reproduce the labels exactly."""
        expected = labelprop_labels(EDGES, DIM, ROUNDS)
        result = run("labelprop", compression="fp16")
        assert np.array_equal(gather(result, "label"), expected)


class TestDeltaBytes:
    def test_delta_ships_fewer_bytes(self):
        """At d=32 the delta encoding must beat the dense payload — the
        property the bench cell quantifies at full scale."""
        none = run("labelprop", dim=32, rounds=4)
        delta = run("labelprop", dim=32, rounds=4, compression="delta")
        assert np.array_equal(
            gather(none, "label"), gather(delta, "label")
        )
        none_bytes = none.executor.transport.stats.total_bytes
        delta_bytes = delta.executor.transport.stats.total_bytes
        assert delta_bytes < none_bytes


class TestRuntimesAndRepartition:
    @pytest.mark.parametrize("compression", ["none", "delta"])
    def test_process_runtime_identical(self, compression):
        simulated = run("labelprop", compression=compression)
        process = run(
            "labelprop", compression=compression,
            runtime="process", workers=2,
        )
        assert np.array_equal(
            gather(simulated, "label"), gather(process, "label")
        )

    @pytest.mark.parametrize("compression", ["none", "delta"])
    def test_repartition_midrun_still_correct(self, compression):
        """Repartitioning rebuilds the FieldSpecs, which resets the
        sender-side delta caches — the run must stay exact even though
        the first post-switch broadcast has no committed baseline."""
        prep = prepare_input(
            "labelprop", EDGES, feature_dim=DIM, feature_rounds=ROUNDS,
            compression=compression,
        )
        partitioned = make_partitioner("oec").partition(prep.edges, 4)
        executor = DistributedExecutor(
            partitioned, make_engine("galois"), make_app("labelprop"),
            prep.ctx,
        )
        executor.run(max_rounds=1)
        executor.repartition(
            make_partitioner("cvc").partition(prep.edges, 4)
        )
        result = executor.run()
        assert result.converged
        expected = labelprop_labels(EDGES, DIM, ROUNDS)
        assert np.array_equal(executor.gather_result("label"), expected)
