"""Connected-components correctness against a union-find oracle."""

import numpy as np
import pytest

from repro.graph.edgelist import EdgeList
from repro.systems import prepare_input, run_app
from tests.conftest import reference_cc

POLICIES = ["oec", "iec", "cvc", "hvc"]


def distributed_cc(edges, system="d-galois", **kwargs):
    result = run_app(system, "cc", edges, **kwargs)
    return result, result.executor.gather_result("label").astype(np.uint64)


@pytest.mark.parametrize("policy", POLICIES)
def test_matches_oracle_all_policies(small_rmat, policy):
    prep = prepare_input("cc", small_rmat)
    expected = reference_cc(prep.edges)
    _, got = distributed_cc(small_rmat, num_hosts=4, policy=policy)
    assert np.array_equal(got, expected)


@pytest.mark.parametrize("system", ["d-ligra", "d-irgl", "gemini"])
def test_matches_oracle_systems(small_rmat, system):
    prep = prepare_input("cc", small_rmat)
    expected = reference_cc(prep.edges)
    _, got = distributed_cc(small_rmat, system=system, num_hosts=4)
    assert np.array_equal(got, expected)


def test_input_is_symmetrized(small_path):
    """cc treats the graph as undirected: a directed path is one component."""
    _, got = distributed_cc(small_path, num_hosts=3, policy="cvc")
    assert np.all(got == 0)


def test_disconnected_components():
    # Two triangles and an isolated node.
    src = np.array([0, 1, 2, 4, 5, 6], dtype=np.uint32)
    dst = np.array([1, 2, 0, 5, 6, 4], dtype=np.uint32)
    edges = EdgeList(8, src, dst)
    _, got = distributed_cc(edges, num_hosts=3, policy="hvc")
    assert got[:3].tolist() == [0, 0, 0]
    assert got[4:7].tolist() == [4, 4, 4]
    assert got[3] == 3  # isolated nodes form their own component
    assert got[7] == 7


def test_labels_are_component_minima(small_er):
    prep = prepare_input("cc", small_er)
    expected = reference_cc(prep.edges)
    _, got = distributed_cc(small_er, num_hosts=4, policy="cvc")
    assert np.array_equal(got, expected)


def test_every_node_labeled_at_most_its_id(small_rmat):
    _, got = distributed_cc(small_rmat, num_hosts=4, policy="oec")
    ids = np.arange(len(got), dtype=np.uint64)
    assert np.all(got <= ids)
