"""Betweenness centrality vs a Brandes oracle.

BC's backward phase is the only workload whose field writes at the edge
*source*, so these tests double as the integration tests of the
``sync<WriteLocation, ReadLocation>`` generality.
"""

from collections import deque

import numpy as np
import pytest

from repro.graph.generators import path_graph, star_graph
from repro.systems import prepare_input, run_app


def brandes_dependency(edges, source):
    """Single-source Brandes dependency scores (the oracle)."""
    n = edges.num_nodes
    adjacency = [[] for _ in range(n)]
    for s, d in zip(edges.src.tolist(), edges.dst.tolist()):
        adjacency[s].append(d)
    dist = [-1] * n
    sigma = [0.0] * n
    dist[source] = 0
    sigma[source] = 1.0
    order = []
    queue = deque([source])
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in adjacency[u]:
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                queue.append(v)
            if dist[v] == dist[u] + 1:
                sigma[v] += sigma[u]
    delta = [0.0] * n
    for v in reversed(order):
        for w in adjacency[v]:
            if dist[w] == dist[v] + 1:
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w])
    return np.array(delta)


def distributed_bc(edges, system="d-galois", **kwargs):
    result = run_app(system, "bc", edges, **kwargs)
    got = result.executor.gather_result("delta")
    return result, got


@pytest.mark.parametrize("policy", ["oec", "iec", "cvc", "hvc"])
def test_matches_brandes_all_policies(small_rmat, policy):
    prep = prepare_input("bc", small_rmat)
    expected = brandes_dependency(prep.edges, prep.ctx.source)
    _, got = distributed_bc(small_rmat, num_hosts=4, policy=policy)
    np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("system", ["d-ligra", "d-irgl", "d-hybrid"])
def test_matches_brandes_systems(small_rmat, system):
    prep = prepare_input("bc", small_rmat)
    expected = brandes_dependency(prep.edges, prep.ctx.source)
    _, got = distributed_bc(small_rmat, system=system, num_hosts=4)
    np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("num_hosts", [1, 2, 8])
def test_matches_brandes_host_counts(small_rmat, num_hosts):
    prep = prepare_input("bc", small_rmat)
    expected = brandes_dependency(prep.edges, prep.ctx.source)
    _, got = distributed_bc(small_rmat, num_hosts=num_hosts, policy="cvc")
    np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)


def test_path_graph_dependencies():
    """On a path 0->..->n-1 from source 0, delta[i] = n-1-i."""
    n = 12
    edges = path_graph(n)
    _, got = distributed_bc(edges, num_hosts=3, policy="oec", source=0)
    expected = np.array([n - 1 - i for i in range(n)], dtype=float)
    np.testing.assert_allclose(got, expected)


def test_star_graph_dependencies():
    """Star hub: every leaf is reached directly; no intermediaries."""
    edges = star_graph(8)
    _, got = distributed_bc(edges, num_hosts=2, policy="cvc", source=0)
    expected = np.zeros(8)
    expected[0] = 7.0  # source accumulates its leaves' dependencies
    np.testing.assert_allclose(got, expected)


def test_rounds_cover_both_phases(small_rmat):
    """The merged result spans forward + backward sweeps."""
    result, _ = distributed_bc(small_rmat, num_hosts=4, policy="cvc")
    assert result.app == "bc"
    assert result.converged
    # At least (depth) forward rounds plus (depth) backward rounds.
    assert result.num_rounds >= 4
    indices = [record.round_index for record in result.rounds]
    assert indices == list(range(1, len(indices) + 1))


def test_sigma_counts_are_integers(small_rmat):
    """Shortest-path counts must come out exact (they are whole numbers)."""
    result, _ = distributed_bc(small_rmat, num_hosts=4, policy="hvc")
    executor = result.executor
    sigma = executor.app.gather_master_values(
        executor.partitioned.partitions, executor.states, "sigma"
    )
    assert np.allclose(sigma, np.round(sigma))
