"""SSSP correctness against a Dijkstra oracle."""

import numpy as np
import pytest

from repro.systems import prepare_input, run_app
from tests.conftest import reference_sssp

POLICIES = ["oec", "iec", "cvc", "hvc"]


def distributed_sssp(edges, system="d-galois", **kwargs):
    result = run_app(system, "sssp", edges, **kwargs)
    return result, result.executor.gather_result("dist").astype(np.uint64)


@pytest.mark.parametrize("policy", POLICIES)
def test_matches_oracle_all_policies(small_rmat, policy):
    prep = prepare_input("sssp", small_rmat)
    expected = reference_sssp(prep.edges, prep.ctx.source)
    _, got = distributed_sssp(small_rmat, num_hosts=4, policy=policy)
    assert np.array_equal(got, expected)


@pytest.mark.parametrize("num_hosts", [1, 2, 6])
def test_matches_oracle_host_counts(small_rmat, num_hosts):
    prep = prepare_input("sssp", small_rmat)
    expected = reference_sssp(prep.edges, prep.ctx.source)
    _, got = distributed_sssp(small_rmat, num_hosts=num_hosts, policy="cvc")
    assert np.array_equal(got, expected)


@pytest.mark.parametrize("system", ["d-ligra", "d-irgl", "gemini"])
def test_matches_oracle_systems(small_rmat, system):
    prep = prepare_input("sssp", small_rmat)
    expected = reference_sssp(prep.edges, prep.ctx.source)
    _, got = distributed_sssp(small_rmat, system=system, num_hosts=4)
    assert np.array_equal(got, expected)


def test_respects_given_weights(small_path):
    """A pre-weighted input must not be re-weighted."""
    weighted = small_path.with_unit_weights()
    weights = weighted.weight.copy()
    weights[0] = 10
    from repro.graph.edgelist import EdgeList

    edges = EdgeList(weighted.num_nodes, weighted.src, weighted.dst, weights)
    _, got = distributed_sssp(edges, num_hosts=2, policy="oec", source=0)
    assert got[1] == 10
    assert got[2] == 11


def test_weight_seed_changes_weights(small_rmat):
    a, _ = distributed_sssp(
        small_rmat, num_hosts=2, policy="cvc", weight_seed=1
    )
    prep1 = prepare_input("sssp", small_rmat, weight_seed=1)
    prep2 = prepare_input("sssp", small_rmat, weight_seed=2)
    assert not np.array_equal(prep1.edges.weight, prep2.edges.weight)


def test_chaotic_relaxation_still_correct(medium_rmat):
    """D-Galois relaxes within a round (possibly sending stale values);
    the min-reduction must still converge to true distances."""
    prep = prepare_input("sssp", medium_rmat)
    expected = reference_sssp(prep.edges, prep.ctx.source)
    _, got = distributed_sssp(
        medium_rmat, system="d-galois", num_hosts=8, policy="cvc"
    )
    assert np.array_equal(got, expected)


def test_fewer_rounds_than_ligra(medium_rmat):
    galois, _ = distributed_sssp(
        medium_rmat, system="d-galois", num_hosts=4, policy="cvc"
    )
    ligra, _ = distributed_sssp(
        medium_rmat, system="d-ligra", num_hosts=4, policy="cvc"
    )
    assert galois.num_rounds <= ligra.num_rounds
