"""k-core correctness against an iterative-peeling oracle."""

import numpy as np
import pytest

from repro.graph.generators import complete_graph, star_graph
from repro.systems import prepare_input, run_app
from tests.conftest import reference_kcore


def distributed_kcore(edges, k, system="d-galois", **kwargs):
    result = run_app(system, "kcore", edges, k=k, **kwargs)
    return result, result.executor.gather_result("alive").astype(np.uint64)


@pytest.mark.parametrize("policy", ["oec", "iec", "cvc", "hvc"])
@pytest.mark.parametrize("k", [2, 4])
def test_matches_oracle(small_rmat, policy, k):
    prep = prepare_input("kcore", small_rmat, k=k)
    expected = reference_kcore(prep.edges, k)
    _, got = distributed_kcore(small_rmat, k, num_hosts=4, policy=policy)
    assert np.array_equal(got, expected)


def test_complete_graph_survives(small_rmat):
    """K5 is a 4-core: k=4 keeps everything, k=5 kills everything."""
    edges = complete_graph(5)
    _, alive = distributed_kcore(edges, 4, num_hosts=2, policy="cvc")
    assert np.all(alive == 1)
    _, alive = distributed_kcore(edges, 5, num_hosts=2, policy="cvc")
    assert np.all(alive == 0)


def test_star_collapses_under_k2():
    """A star has every leaf at degree 1: k=2 peels leaves then the hub."""
    edges = star_graph(10)
    _, alive = distributed_kcore(edges, 2, num_hosts=3, policy="oec")
    assert np.all(alive == 0)


def test_k1_keeps_non_isolated(small_rmat):
    prep = prepare_input("kcore", small_rmat, k=1)
    expected = reference_kcore(prep.edges, 1)
    _, got = distributed_kcore(small_rmat, 1, num_hosts=4, policy="cvc")
    assert np.array_equal(got, expected)


@pytest.mark.parametrize("system", ["d-ligra", "d-irgl"])
def test_other_systems(small_rmat, system):
    prep = prepare_input("kcore", small_rmat, k=3)
    expected = reference_kcore(prep.edges, 3)
    _, got = distributed_kcore(small_rmat, 3, system=system, num_hosts=4)
    assert np.array_equal(got, expected)
