"""Multi-field frame: round trips and corrupted-buffer rejection."""

import struct

import numpy as np
import pytest

from repro.comm.frame import MAX_FIELDS, decode_frame, encode_frame, frame_overhead
from repro.errors import SerializationError


def random_submessages(rng, num_fields):
    """Random slot assignment: None, or 1..64 random bytes, per field."""
    subs = []
    for _ in range(num_fields):
        if rng.random() < 0.4:
            subs.append(None)
        else:
            subs.append(rng.bytes(int(rng.integers(1, 65))))
    return subs


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_frames_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        num_fields = int(rng.integers(1, 12))
        subs = random_submessages(rng, num_fields)
        frame = encode_frame(subs)
        assert decode_frame(frame) == subs
        assert len(frame) == frame_overhead(num_fields) + sum(
            len(s) for s in subs if s is not None
        )

    def test_all_slots_empty_still_frames(self):
        frame = encode_frame([None, None, None])
        assert decode_frame(frame) == [None, None, None]
        assert len(frame) == frame_overhead(3)

    def test_single_field_frame(self):
        frame = encode_frame([b"\x01\x02"])
        assert decode_frame(frame) == [b"\x01\x02"]


class TestEncodeErrors:
    def test_zero_slots_rejected(self):
        with pytest.raises(SerializationError, match="at least one field"):
            encode_frame([])

    def test_too_many_fields_rejected(self):
        with pytest.raises(SerializationError, match="cannot carry"):
            encode_frame([None] * (MAX_FIELDS + 1))

    def test_empty_present_submessage_rejected(self):
        with pytest.raises(SerializationError, match="cannot be empty"):
            encode_frame([b""])


class TestDecodeErrors:
    def test_buffer_too_short_for_count(self):
        with pytest.raises(SerializationError, match="too short"):
            decode_frame(b"\x01")

    def test_zero_field_count_rejected(self):
        with pytest.raises(SerializationError, match="zero field"):
            decode_frame(struct.pack("<H", 0))

    def test_truncated_length_prefixes(self):
        # Claims 3 fields but carries only one length prefix.
        buffer = struct.pack("<H", 3) + struct.pack("<I", 4)
        with pytest.raises(SerializationError, match="truncated"):
            decode_frame(buffer)

    def test_truncated_body(self):
        frame = encode_frame([b"abcd", b"efgh"])
        with pytest.raises(SerializationError, match="body mismatch"):
            decode_frame(frame[:-3])

    def test_trailing_garbage(self):
        frame = encode_frame([b"abcd"])
        with pytest.raises(SerializationError, match="body mismatch"):
            decode_frame(frame + b"zz")

    def test_corrupted_length_prefix_overruns(self):
        frame = bytearray(encode_frame([b"abcd"]))
        # Inflate the first length prefix past the buffer end.
        struct.pack_into("<I", frame, 2, 1_000_000)
        with pytest.raises(SerializationError, match="body mismatch"):
            decode_frame(bytes(frame))

    @pytest.mark.parametrize("seed", range(10))
    def test_random_truncations_never_crash(self, seed):
        """Any prefix of a valid frame either decodes or raises cleanly."""
        rng = np.random.default_rng(100 + seed)
        frame = encode_frame(random_submessages(rng, int(rng.integers(1, 8))))
        for cut in range(len(frame)):
            with pytest.raises(SerializationError):
                decode_frame(frame[:cut])
