"""Channel layer: staging, flushing, drain checks, and the comm plane."""

import pytest

from repro.comm.channel import Channel, CommPlane
from repro.comm.frame import decode_frame, frame_overhead
from repro.errors import SyncError, TransportError
from repro.network.transport import InProcessTransport
from repro.observability.metrics import MetricsRegistry


class TestChannel:
    def test_stage_then_take_frame(self):
        chan = Channel(0, 1)
        chan.stage(2, b"second")
        chan.stage(0, b"first")
        assert chan.staged_fields == 2
        frame = chan.take_frame(3)
        assert decode_frame(frame) == [b"first", None, b"second"]
        assert chan.staged_fields == 0

    def test_idle_channel_takes_no_frame(self):
        assert Channel(0, 1).take_frame(4) is None

    def test_duplicate_stage_rejected(self):
        chan = Channel(0, 1)
        chan.stage(1, b"x")
        with pytest.raises(SyncError, match="already staged"):
            chan.stage(1, b"y")

    def test_negative_field_index_rejected(self):
        with pytest.raises(SyncError, match=">= 0"):
            Channel(0, 1).stage(-1, b"x")

    def test_staged_index_outside_frame_rejected(self):
        chan = Channel(0, 1)
        chan.stage(5, b"x")
        with pytest.raises(SyncError, match="outside the 3-field frame"):
            chan.take_frame(3)

    def test_assert_drained_passes_when_empty(self):
        chan = Channel(0, 1)
        chan.stage(0, b"x")
        chan.take_frame(1)
        chan.assert_drained()

    def test_assert_drained_names_the_channel_and_fields(self):
        chan = Channel(2, 5)
        chan.stage(1, b"x")
        chan.stage(3, b"y")
        with pytest.raises(
            TransportError, match=r"channel 2->5 holds 2 staged"
        ) as excinfo:
            chan.assert_drained()
        assert "[1, 3]" in str(excinfo.value)


class TestCommPlane:
    def test_no_self_channel(self):
        plane = CommPlane(1, InProcessTransport(2))
        with pytest.raises(SyncError, match="no channel to itself"):
            plane.channel(1)

    def test_aggregate_buffers_until_flush(self):
        transport = InProcessTransport(3)
        plane = CommPlane(0, transport, aggregate=True)
        plane.stage(1, 0, b"aa")
        plane.stage(2, 1, b"bb")
        assert transport.receive_all(1) == []
        flushed = plane.flush(2, peer_order=[1, 2])
        assert [peer for peer, _ in flushed] == [1, 2]
        (sender, frame), = transport.receive_all(1)
        assert sender == 0
        assert decode_frame(frame) == [b"aa", None]
        (sender, frame), = transport.receive_all(2)
        assert decode_frame(frame) == [None, b"bb"]

    def test_flush_reports_frame_bytes(self):
        transport = InProcessTransport(2)
        plane = CommPlane(0, transport, aggregate=True)
        plane.stage(1, 0, b"abc")
        ((peer, nbytes),) = plane.flush(2, peer_order=[1])
        assert peer == 1
        assert nbytes == frame_overhead(2) + 3
        transport.receive_all(1)

    def test_pass_through_sends_immediately(self):
        transport = InProcessTransport(2)
        plane = CommPlane(0, transport, aggregate=False)
        plane.stage(1, 0, b"raw")
        assert transport.receive_all(1) == [(0, b"raw")]
        assert plane.flush(1, peer_order=[1]) == []
        plane.assert_drained()  # nothing ever buffers in pass-through

    def test_flush_clears_and_plane_drains(self):
        transport = InProcessTransport(2)
        plane = CommPlane(0, transport, aggregate=True)
        plane.stage(1, 0, b"x")
        plane.flush(1, peer_order=[1])
        plane.assert_drained()
        transport.receive_all(1)

    def test_unflushed_plane_fails_drain_check(self):
        plane = CommPlane(0, InProcessTransport(2), aggregate=True)
        plane.stage(1, 0, b"x")
        with pytest.raises(TransportError, match="un-flushed channel"):
            plane.assert_drained()

    def test_receive_frames_decodes_per_sender(self):
        transport = InProcessTransport(3)
        for src in (1, 2):
            peer_plane = CommPlane(src, transport, aggregate=True)
            peer_plane.stage(0, 0, b"from%d" % src)
            peer_plane.flush(1, peer_order=[0])
        plane = CommPlane(0, transport, aggregate=True)
        frames = plane.receive_frames()
        assert [(sender, subs) for sender, subs in frames] == [
            (1, [b"from1"]),
            (2, [b"from2"]),
        ]

    def test_flush_metrics(self):
        metrics = MetricsRegistry()
        transport = InProcessTransport(3)
        plane = CommPlane(0, transport, aggregate=True, metrics=metrics)
        plane.stage(1, 0, b"a")
        plane.stage(1, 1, b"b")
        plane.stage(2, 0, b"c")
        plane.flush(2, peer_order=[1, 2])
        assert metrics.counter_total("channel_flushes_total") == 2
        histogram = metrics.histogram("channel_fields_per_flush")
        assert histogram.count == 2
        assert histogram.total == 3  # two fields to peer 1, one to peer 2
        transport.receive_all(1)
        transport.receive_all(2)
