"""Field codec: seeded-random round-trip properties across all modes.

Every (metadata mode x dtype x mask density) combination must survive an
encode/decode round trip bit for bit, and the codec must report its costs
(mode choice, translation counts) faithfully.
"""

import numpy as np
import pytest

from repro.comm.codec import (
    decode_field_payload,
    encode_global_ids_field,
    encode_memoized_field,
)
from repro.core.metadata import MetadataMode, select_mode
from repro.core.sync_structures import ADD, MIN, FieldSpec
from repro.errors import SyncError

DTYPES = [np.uint8, np.uint32, np.int32, np.int64, np.uint64, np.float32, np.float64]

#: Mask densities spanning the encoder's regimes: nothing updated (EMPTY),
#: very sparse (INDICES), moderately sparse (BITVEC), everything (FULL).
DENSITIES = [0.0, 0.02, 0.4, 1.0]


class StubPartition:
    """Just enough of LocalPartition for the decode path."""

    def __init__(self, local_to_global, host=0):
        self.host = host
        self.local_to_global = np.asarray(local_to_global, dtype=np.uint32)
        self._inverse = {
            int(gid): lid for lid, gid in enumerate(self.local_to_global)
        }

    def to_local_array(self, gids):
        return np.array(
            [self._inverse[int(g)] for g in gids], dtype=np.uint32
        )


def make_field(rng, dtype, num_locals, name="f"):
    if np.issubdtype(dtype, np.floating):
        values = rng.random(num_locals).astype(dtype)
    else:
        info = np.iinfo(dtype)
        values = rng.integers(
            0, min(int(info.max), 10_000), size=num_locals
        ).astype(dtype)
    return FieldSpec(name, values, MIN)


def make_mask(rng, size, density):
    if density == 0.0:
        return np.zeros(size, dtype=bool)
    if density == 1.0:
        return np.ones(size, dtype=bool)
    mask = rng.random(size) < density
    return mask


class TestMemoizedRoundTrip:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("density", DENSITIES)
    def test_round_trip(self, dtype, density):
        rng = np.random.default_rng(
            DTYPES.index(dtype) * 10 + DENSITIES.index(density)
        )
        num_locals = 400
        field = make_field(rng, dtype, num_locals)
        agreed = rng.choice(num_locals, size=200, replace=False).astype(np.uint32)
        mask = make_mask(rng, len(agreed), density)

        encoded = encode_memoized_field(field, agreed, mask)
        expected_mode = select_mode(
            len(agreed), int(mask.sum()), field.value_size
        )
        assert encoded.mode is expected_mode
        assert encoded.translations == 0  # memoized order: no translation

        # The receiver's aligned master array (any distinct lids work).
        recv_agreed = rng.choice(300, size=len(agreed), replace=False).astype(
            np.uint32
        )
        decoded = decode_field_payload(
            encoded.payload, {7: recv_agreed}, 7, StubPartition([])
        )
        if encoded.mode is MetadataMode.EMPTY:
            assert decoded is None
            return
        if encoded.mode is MetadataMode.FULL:
            assert np.array_equal(decoded.lids, recv_agreed)
            assert np.array_equal(decoded.values, field.values[agreed])
        else:
            positions = np.flatnonzero(mask)
            assert np.array_equal(decoded.lids, recv_agreed[positions])
            assert np.array_equal(
                decoded.values, field.values[agreed[positions]]
            )
        assert decoded.values.dtype == field.dtype
        assert decoded.translations == 0

    def test_all_modes_reachable(self):
        """Update counts from none to all span all four metadata modes."""
        seen = set()
        rng = np.random.default_rng(7)
        field = make_field(rng, np.uint32, 400)
        agreed = np.arange(200, dtype=np.uint32)
        for updates in (0, 3, 80, 200):
            mask = np.zeros(len(agreed), dtype=bool)
            mask[:updates] = True
            seen.add(encode_memoized_field(field, agreed, mask).mode)
        assert seen == {
            MetadataMode.EMPTY,
            MetadataMode.INDICES,
            MetadataMode.BITVEC,
            MetadataMode.FULL,
        }

    def test_broadcast_reads_broadcast_array(self):
        """broadcast=True must extract from broadcast_values, not values."""
        rng = np.random.default_rng(11)
        values = np.zeros(50, dtype=np.float64)
        broadcast = rng.random(50)
        field = FieldSpec("pr", values, ADD, broadcast_values=broadcast)
        agreed = np.arange(20, dtype=np.uint32)
        mask = np.ones(20, dtype=bool)
        encoded = encode_memoized_field(field, agreed, mask, broadcast=True)
        decoded = decode_field_payload(
            encoded.payload, {1: agreed}, 1, StubPartition([])
        )
        assert np.array_equal(decoded.values, broadcast[:20])


class TestGlobalIdsRoundTrip:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("density", DENSITIES)
    def test_round_trip(self, dtype, density):
        rng = np.random.default_rng(
            1000 + DTYPES.index(dtype) * 10 + DENSITIES.index(density)
        )
        num_locals = 120
        # Sender's proxies map to distinct globals in a 1000-node graph.
        sender_l2g = rng.choice(1000, size=num_locals, replace=False).astype(
            np.uint32
        )
        field = make_field(rng, dtype, num_locals)
        agreed = rng.choice(num_locals, size=60, replace=False).astype(np.uint32)
        mask = make_mask(rng, len(agreed), density)

        encoded = encode_global_ids_field(field, agreed, mask, sender_l2g)
        if mask.sum() == 0:
            # No memoized agreement: nothing updated means no message.
            assert encoded is None
            return
        assert encoded.mode is MetadataMode.GLOBAL_IDS
        assert encoded.translations == int(mask.sum())

        # Receiver holds proxies for (at least) the shipped globals,
        # at different local ids than the sender's.
        shipped_gids = sender_l2g[agreed[mask]]
        receiver_l2g = rng.permutation(
            np.arange(1000, dtype=np.uint32)
        )
        part = StubPartition(receiver_l2g, host=3)
        decoded = decode_field_payload(encoded.payload, {}, 0, part)
        assert decoded.translations == int(mask.sum())
        assert np.array_equal(
            part.local_to_global[decoded.lids], shipped_gids
        )
        assert np.array_equal(decoded.values, field.values[agreed[mask]])


class TestDecodeErrors:
    def test_unexpected_memoized_sender(self):
        field = make_field(np.random.default_rng(0), np.uint32, 50)
        agreed = np.arange(20, dtype=np.uint32)
        encoded = encode_memoized_field(
            field, agreed, np.ones(20, dtype=bool)
        )
        with pytest.raises(SyncError, match="unexpected memoized message"):
            decode_field_payload(encoded.payload, {}, 9, StubPartition([]))

    def test_full_length_mismatch(self):
        field = make_field(np.random.default_rng(1), np.uint32, 50)
        agreed = np.arange(20, dtype=np.uint32)
        encoded = encode_memoized_field(
            field, agreed, np.ones(20, dtype=bool)
        )
        assert encoded.mode is MetadataMode.FULL
        short = np.arange(5, dtype=np.uint32)
        with pytest.raises(SyncError, match="FULL message"):
            decode_field_payload(encoded.payload, {2: short}, 2, StubPartition([]))

    def test_position_out_of_range(self):
        field = make_field(np.random.default_rng(2), np.uint32, 600)
        agreed = np.arange(500, dtype=np.uint32)
        mask = np.zeros(500, dtype=bool)
        mask[490] = True  # very sparse -> INDICES, position 490
        encoded = encode_memoized_field(field, agreed, mask)
        assert encoded.mode is MetadataMode.INDICES
        short = np.arange(10, dtype=np.uint32)
        with pytest.raises(SyncError, match="out of range"):
            decode_field_payload(encoded.payload, {4: short}, 4, StubPartition([]))
