"""Wide-field codec: property tests for (n, d) payloads and compression.

The wide extension must be invisible to scalar fields (1-D payloads keep
their exact wire bytes), and every (metadata mode x dtype x mask density
x compression) combination of a matrix-valued field must survive an
encode/decode round trip: bit for bit under ``none`` and ``delta``, and
within half-precision relative error under ``fp16``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.codec import (
    decode_field_payload,
    encode_global_ids_field,
    encode_memoized_field,
)
from repro.core.metadata import MetadataMode, select_mode
from repro.core.sync_structures import ADD, MIN, FieldSpec
from repro.errors import SyncError
from repro.features import FP16_RELATIVE_ERROR

from tests.comm.test_codec import StubPartition, make_mask

#: dtypes the feature subsystem actually ships wide.
WIDE_DTYPES = [np.float32, np.float64, np.int32]

DENSITIES = [0.0, 0.02, 0.4, 1.0]

#: Wire-header flag bits (mirrors repro.core.serialization).
FLAG_WIDE = 0x80
FLAG_DELTA = 0x40


def make_wide_field(
    rng, dtype, num_locals, width, compression="none", reduce_op=ADD, name="w"
):
    if np.issubdtype(dtype, np.floating):
        values = rng.random((num_locals, width)).astype(dtype)
    else:
        values = rng.integers(0, 10_000, size=(num_locals, width)).astype(dtype)
    return FieldSpec(name, values, reduce_op, compression=compression)


class TestWideMemoizedRoundTrip:
    @pytest.mark.parametrize("dtype", WIDE_DTYPES)
    @pytest.mark.parametrize("density", DENSITIES)
    def test_round_trip(self, dtype, density):
        rng = np.random.default_rng(
            WIDE_DTYPES.index(dtype) * 10 + DENSITIES.index(density)
        )
        num_locals, width = 300, 16
        field = make_wide_field(rng, dtype, num_locals, width)
        agreed = rng.choice(num_locals, size=150, replace=False).astype(
            np.uint32
        )
        mask = make_mask(rng, len(agreed), density)

        encoded = encode_memoized_field(field, agreed, mask)
        expected_mode = select_mode(
            len(agreed), int(mask.sum()), field.value_size
        )
        assert encoded.mode is expected_mode

        recv_agreed = rng.choice(400, size=len(agreed), replace=False).astype(
            np.uint32
        )
        decoded = decode_field_payload(
            encoded.payload, {7: recv_agreed}, 7, StubPartition([])
        )
        if encoded.mode is MetadataMode.EMPTY:
            assert decoded is None
            # An empty payload must not claim row structure it cannot
            # carry: the WIDE flag stays clear so old decoders still read
            # zero values.
            assert encoded.payload[0] & FLAG_WIDE == 0
            return
        assert encoded.payload[0] & FLAG_WIDE
        if encoded.mode is MetadataMode.FULL:
            assert np.array_equal(decoded.lids, recv_agreed)
            assert np.array_equal(decoded.values, field.values[agreed])
        else:
            positions = np.flatnonzero(mask)
            assert np.array_equal(decoded.lids, recv_agreed[positions])
            assert np.array_equal(
                decoded.values, field.values[agreed[positions]]
            )
        assert decoded.values.ndim == 2
        assert decoded.values.shape[1] == width
        assert decoded.values.dtype == field.dtype

    def test_scalar_wire_bytes_unchanged(self):
        """A 1-D field's payload never carries the WIDE flag: old wire
        bytes stay byte-identical, so mixed-version hosts interoperate."""
        rng = np.random.default_rng(3)
        values = rng.random(40)
        field = FieldSpec("f", values, MIN)
        agreed = np.arange(20, dtype=np.uint32)
        for updates in (0, 2, 20):
            mask = np.zeros(len(agreed), dtype=bool)
            mask[:updates] = True
            encoded = encode_memoized_field(field, agreed, mask)
            assert encoded.payload[0] & FLAG_WIDE == 0
            assert encoded.payload[0] & FLAG_DELTA == 0

    @given(
        data=st.data(),
        width=st.integers(min_value=2, max_value=9),
        num_agreed=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_geometry_round_trips(self, data, width, num_agreed):
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        num_locals = num_agreed + data.draw(
            st.integers(min_value=0, max_value=30)
        )
        field = make_wide_field(rng, np.float64, num_locals, width)
        agreed = rng.choice(
            num_locals, size=num_agreed, replace=False
        ).astype(np.uint32)
        mask = rng.random(num_agreed) < data.draw(
            st.floats(min_value=0.0, max_value=1.0)
        )
        encoded = encode_memoized_field(field, agreed, mask)
        decoded = decode_field_payload(
            encoded.payload, {1: agreed}, 1, StubPartition([])
        )
        if not mask.any():
            assert decoded is None
            return
        lids = agreed if encoded.mode is MetadataMode.FULL else agreed[mask]
        assert np.array_equal(decoded.lids, lids)
        assert np.array_equal(decoded.values, field.values[lids])


class TestWideGlobalIdsRoundTrip:
    @pytest.mark.parametrize("dtype", WIDE_DTYPES)
    @pytest.mark.parametrize("density", DENSITIES)
    def test_round_trip(self, dtype, density):
        rng = np.random.default_rng(
            500 + WIDE_DTYPES.index(dtype) * 10 + DENSITIES.index(density)
        )
        num_locals, width = 80, 8
        sender_l2g = rng.choice(1000, size=num_locals, replace=False).astype(
            np.uint32
        )
        field = make_wide_field(rng, dtype, num_locals, width)
        agreed = rng.choice(num_locals, size=40, replace=False).astype(
            np.uint32
        )
        mask = make_mask(rng, len(agreed), density)

        encoded = encode_global_ids_field(field, agreed, mask, sender_l2g)
        if not mask.any():
            assert encoded is None
            return
        # Receiver maps the same globals to different locals.
        recv_l2g = np.arange(1000, dtype=np.uint32)[::-1]
        partition = StubPartition(recv_l2g)
        decoded = decode_field_payload(
            encoded.payload, {}, 3, partition
        )
        sent_lids = agreed[mask]
        assert np.array_equal(
            decoded.lids, partition.to_local_array(sender_l2g[sent_lids])
        )
        assert np.array_equal(decoded.values, field.values[sent_lids])
        assert decoded.translations == len(sent_lids)


class TestFp16Compression:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        width=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_within_half_precision_bound(self, seed, width):
        rng = np.random.default_rng(seed)
        num_locals = 60
        values = (rng.random((num_locals, width)) * 8 - 4).astype(np.float64)
        field = FieldSpec("h", values, ADD, compression="fp16")
        agreed = np.arange(30, dtype=np.uint32)
        mask = np.ones(30, dtype=bool)
        encoded = encode_memoized_field(field, agreed, mask)
        decoded = decode_field_payload(
            encoded.payload, {2: agreed}, 2, StubPartition([]), field=field
        )
        # The wire carries half precision; FieldSpec.reduce/set widen back.
        assert decoded.values.dtype == np.float16
        err = np.abs(decoded.values.astype(np.float64) - values[:30])
        bound = FP16_RELATIVE_ERROR * np.maximum(np.abs(values[:30]), 1.0)
        assert (err <= bound).all()

    def test_exact_for_representable_values(self):
        """Integer-valued features inside fp16's mantissa round-trip
        bitwise — the basis of the labelprop one-hot exactness claim."""
        rng = np.random.default_rng(9)
        values = rng.integers(-512, 512, size=(40, 6)).astype(np.float64)
        field = FieldSpec("h", values, ADD, compression="fp16")
        agreed = np.arange(40, dtype=np.uint32)
        encoded = encode_memoized_field(
            field, agreed, np.ones(40, dtype=bool)
        )
        decoded = decode_field_payload(
            encoded.payload, {2: agreed}, 2, StubPartition([]), field=field
        )
        assert np.array_equal(decoded.values.astype(np.float64), values)


class TestDeltaCompression:
    def _committed_field(self, rng, num_locals, width, commit):
        field = make_wide_field(
            rng, np.float64, num_locals, width, compression="delta"
        )
        field.commit_broadcast(np.asarray(commit, dtype=np.int64))
        return field

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        density=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_broadcast_round_trip(self, seed, density):
        """Receiver base + shipped columns == sender rows, whatever
        subset of rows was previously committed."""
        rng = np.random.default_rng(seed)
        num_locals, width = 50, 8
        field = make_wide_field(
            rng, np.float64, num_locals, width, compression="delta"
        )
        committed = np.flatnonzero(rng.random(num_locals) < 0.6)
        field.commit_broadcast(committed)
        # Receiver's copy matches the sender's committed cache (the delta
        # contract); uncommitted rows differ arbitrarily.
        recv_values = rng.random((num_locals, width))
        recv_values[committed] = field.broadcast_values[committed]
        recv_field = FieldSpec(
            "w", recv_values, ADD, compression="delta"
        )
        # Sender mutates a sparse set of columns, then broadcasts.
        flips = rng.random((num_locals, width)) < density
        field.broadcast_values[flips] += 1.0

        agreed = np.arange(num_locals, dtype=np.uint32)
        mask = np.ones(num_locals, dtype=bool)
        encoded = encode_memoized_field(field, agreed, mask, broadcast=True)
        assert encoded.payload[0] & FLAG_DELTA
        decoded = decode_field_payload(
            encoded.payload,
            {4: agreed},
            4,
            StubPartition([]),
            field=recv_field,
            broadcast=True,
        )
        assert np.array_equal(decoded.values, field.broadcast_values)

    def test_uncommitted_rows_ship_whole(self):
        """Rows never committed must not trust the receiver's copy."""
        rng = np.random.default_rng(21)
        field = make_wide_field(rng, np.float64, 10, 4, compression="delta")
        # No commit at all: every row ships every column.
        agreed = np.arange(10, dtype=np.uint32)
        encoded = encode_memoized_field(
            field, agreed, np.ones(10, dtype=bool), broadcast=True
        )
        recv_field = FieldSpec(
            "w", np.full((10, 4), -99.0), ADD, compression="delta"
        )
        decoded = decode_field_payload(
            encoded.payload,
            {4: agreed},
            4,
            StubPartition([]),
            field=recv_field,
            broadcast=True,
        )
        assert np.array_equal(decoded.values, field.broadcast_values)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        density=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_reduce_round_trip_vs_identity(self, seed, density):
        """Reduce deltas are stateless: unshipped columns reconstruct to
        the reduction identity, so the fold is lossless for any op."""
        rng = np.random.default_rng(seed)
        num_locals, width = 40, 6
        values = np.where(
            rng.random((num_locals, width)) < density,
            rng.random((num_locals, width)) + 0.5,
            0.0,
        )
        field = FieldSpec("acc", values, ADD, compression="delta")
        agreed = np.arange(num_locals, dtype=np.uint32)
        encoded = encode_memoized_field(
            field, agreed, np.ones(num_locals, dtype=bool)
        )
        decoded = decode_field_payload(
            encoded.payload, {4: agreed}, 4, StubPartition([]), field=field
        )
        if decoded is None:
            assert not values.any()
            return
        assert np.array_equal(decoded.values, values[decoded.lids])

    def test_delta_without_field_rejected(self):
        rng = np.random.default_rng(5)
        field = make_wide_field(rng, np.float64, 12, 4, compression="delta")
        agreed = np.arange(12, dtype=np.uint32)
        encoded = encode_memoized_field(
            field, agreed, np.ones(12, dtype=bool)
        )
        with pytest.raises(SyncError, match="without a field"):
            decode_field_payload(
                encoded.payload, {4: agreed}, 4, StubPartition([])
            )

    def test_cache_reset_on_rebuild(self):
        """A rebuilt FieldSpec (repartition, worker restart) starts with
        an empty delta cache: its first broadcast ships rows whole, so
        receivers never reconstruct against a stale baseline."""
        rng = np.random.default_rng(13)
        values = rng.random((20, 4))
        field = FieldSpec("w", values.copy(), ADD, compression="delta")
        lids = np.arange(20)
        field.commit_broadcast(lids)
        cached, sent = field.delta_state(lids)
        assert sent.all()
        assert np.array_equal(cached, values)
        # make_fields after a repartition constructs a fresh FieldSpec
        # over the migrated arrays — the cache does not travel with them.
        rebuilt = FieldSpec("w", values.copy(), ADD, compression="delta")
        cached, sent = rebuilt.delta_state(lids)
        assert not sent.any()
        encoded = encode_memoized_field(
            rebuilt,
            lids.astype(np.uint32),
            np.ones(20, dtype=bool),
            broadcast=True,
        )
        recv_field = FieldSpec(
            "w", np.zeros((20, 4)), ADD, compression="delta"
        )
        decoded = decode_field_payload(
            encoded.payload,
            {4: lids.astype(np.uint32)},
            4,
            StubPartition([]),
            field=recv_field,
            broadcast=True,
        )
        assert np.array_equal(decoded.values, values)
