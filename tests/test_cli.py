"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_run_arguments(self):
        args = build_parser().parse_args(
            [
                "run",
                "--system", "d-galois",
                "--app", "bfs",
                "--workload", "rmat24s",
                "--hosts", "8",
                "--policy", "cvc",
            ]
        )
        assert args.command == "run"
        assert args.hosts == 8

    def test_run_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--system", "spark", "--app", "bfs",
                 "--workload", "rmat24s"]
            )

    def test_experiment_names_cover_all_tables_and_figures(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5",
            "fig8", "fig9", "fig10",
            "replication", "imbalance", "rounds", "metadata", "policies",
        }
        assert set(EXPERIMENTS) == expected

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_run_prints_summary(self, capsys):
        exit_code = main(
            [
                "run",
                "--system", "d-galois",
                "--app", "bfs",
                "--workload", "rmat24s",
                "--hosts", "2",
                "--policy", "oec",
                "--scale-delta", "-4",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "run summary" in out
        assert "replication factor" in out

    def test_run_with_level_and_fabric(self, capsys):
        exit_code = main(
            [
                "run",
                "--system", "d-galois",
                "--app", "cc",
                "--workload", "kron25s",
                "--hosts", "2",
                "--level", "unopt",
                "--scale-delta", "-4",
                "--scaled-fabric",
            ]
        )
        assert exit_code == 0
        assert "address translations" in capsys.readouterr().out

    def test_inputs_command(self, capsys):
        assert main(["inputs"]) == 0
        out = capsys.readouterr().out
        assert "rmat24s" in out and "wdc12s" in out

    def test_analyze_command(self, capsys):
        assert main(["analyze", "sssp"]) == 0
        out = capsys.readouterr().out
        assert "oec: reduce" in out
        assert "iec: broadcast" in out

    def test_experiment_metadata(self, capsys):
        assert main(["experiment", "metadata"]) == 0
        out = capsys.readouterr().out
        assert "BITVEC" in out

    def test_experiment_with_scale_delta(self, capsys):
        assert main(
            ["experiment", "replication", "--scale-delta", "-3"]
        ) == 0
        assert "gemini" in capsys.readouterr().out
