"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_run_arguments(self):
        args = build_parser().parse_args(
            [
                "run",
                "--system", "d-galois",
                "--app", "bfs",
                "--workload", "rmat24s",
                "--hosts", "8",
                "--policy", "cvc",
            ]
        )
        assert args.command == "run"
        assert args.hosts == 8

    def test_run_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--system", "spark", "--app", "bfs",
                 "--workload", "rmat24s"]
            )

    def test_experiment_names_cover_all_tables_and_figures(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5",
            "fig8", "fig9", "fig10",
            "replication", "imbalance", "rounds", "metadata", "policies",
            "resilience",
        }
        assert set(EXPERIMENTS) == expected

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRunValidation:
    _BASE = ["run", "--system", "d-galois", "--app", "bfs",
             "--workload", "rmat24s"]

    def test_zero_hosts_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self._BASE + ["--hosts", "0"])
        assert "--hosts must be at least 1" in capsys.readouterr().err

    def test_negative_hosts_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self._BASE + ["--hosts", "-2"])
        assert "--hosts must be at least 1" in capsys.readouterr().err

    def test_zero_checkpoint_cadence_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self._BASE + ["--checkpoint-every", "0"])
        err = capsys.readouterr().err
        assert "--checkpoint-every must be at least 1" in err

    def test_malformed_fault_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self._BASE + ["--inject-fault", "crash:1"])
        assert "crash:HOST@ROUND" in capsys.readouterr().err

    def test_unknown_fault_kind_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self._BASE + ["--inject-fault", "meteor:0.5"])
        assert "unknown fault kind" in capsys.readouterr().err

    def test_empty_fault_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self._BASE + ["--inject-fault", ""])
        assert "injects no faults" in capsys.readouterr().err

    def test_crash_beyond_cluster_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self._BASE + ["--hosts", "4", "--inject-fault", "crash:7@2"])
        assert "cluster has 4" in capsys.readouterr().err


class TestCommands:
    def test_run_prints_summary(self, capsys):
        exit_code = main(
            [
                "run",
                "--system", "d-galois",
                "--app", "bfs",
                "--workload", "rmat24s",
                "--hosts", "2",
                "--policy", "oec",
                "--scale-delta", "-4",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "run summary" in out
        assert "replication factor" in out

    def test_run_with_level_and_fabric(self, capsys):
        exit_code = main(
            [
                "run",
                "--system", "d-galois",
                "--app", "cc",
                "--workload", "kron25s",
                "--hosts", "2",
                "--level", "unopt",
                "--scale-delta", "-4",
                "--scaled-fabric",
            ]
        )
        assert exit_code == 0
        assert "address translations" in capsys.readouterr().out

    def test_run_verify_feature_app(self, capsys):
        exit_code = main(
            [
                "run",
                "--system", "d-galois",
                "--app", "labelprop",
                "--workload", "rmat22s",
                "--hosts", "2",
                "--policy", "cvc",
                "--scale-delta", "-5",
                "--feature-dim", "16",
                "--compression", "delta",
                "--verify",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "oracle verification: matched" in out

    def test_run_verify_fp16_within_tolerance(self, capsys):
        exit_code = main(
            [
                "run",
                "--system", "d-galois",
                "--app", "featprop",
                "--workload", "rmat22s",
                "--hosts", "2",
                "--scale-delta", "-5",
                "--compression", "fp16",
                "--verify",
            ]
        )
        assert exit_code == 0
        assert "oracle verification: matched" in capsys.readouterr().out

    def test_inputs_command(self, capsys):
        assert main(["inputs"]) == 0
        out = capsys.readouterr().out
        assert "rmat24s" in out and "wdc12s" in out

    def test_analyze_command(self, capsys):
        assert main(["analyze", "sssp"]) == 0
        out = capsys.readouterr().out
        assert "oec: reduce" in out
        assert "iec: broadcast" in out

    def test_experiment_metadata(self, capsys):
        assert main(["experiment", "metadata"]) == 0
        out = capsys.readouterr().out
        assert "BITVEC" in out

    def test_experiment_with_scale_delta(self, capsys):
        assert main(
            ["experiment", "replication", "--scale-delta", "-3"]
        ) == 0
        assert "gemini" in capsys.readouterr().out

    def test_run_with_fault_injection_and_recovery(self, capsys):
        exit_code = main(
            [
                "run",
                "--system", "d-galois",
                "--app", "bfs",
                "--workload", "rmat22s",
                "--hosts", "4",
                "--scale-delta", "-3",
                "--inject-fault", "crash:1@2,drop:0.02",
                "--checkpoint-every", "1",
                "--recovery", "confined",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "checkpoints" in out
        assert "mode=confined" in out

    def test_experiment_resilience(self, capsys):
        assert main(
            ["experiment", "resilience", "--scale-delta", "-3"]
        ) == 0
        out = capsys.readouterr().out
        assert "no-fault" in out
        assert "confined" in out
