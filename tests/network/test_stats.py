"""Unit tests for communication statistics."""

import pytest

from repro.network.stats import CommStats, RoundTraffic


class TestRoundTraffic:
    def test_totals(self):
        traffic = RoundTraffic(messages=[(0, 1, 10), (1, 0, 5)])
        assert traffic.total_bytes == 15
        assert traffic.num_messages == 2

    def test_bytes_by_host(self):
        traffic = RoundTraffic(messages=[(0, 1, 10), (0, 2, 4), (2, 0, 1)])
        sent, received = traffic.bytes_by_host(3)
        assert sent == [14, 0, 1]
        assert received == [1, 10, 4]

    def test_empty(self):
        traffic = RoundTraffic()
        assert traffic.total_bytes == 0
        assert traffic.bytes_by_host(2) == ([0, 0], [0, 0])


class TestCommStats:
    def test_record_and_totals(self):
        stats = CommStats(3)
        stats.record(0, 1, 8)
        stats.record(0, 2, 8)
        stats.record(1, 2, 16)
        assert stats.total_bytes == 32
        assert stats.total_messages == 3
        assert stats.pair_bytes(0, 1) == 8
        assert stats.pair_messages(1, 2) == 1

    def test_end_round_returns_finished(self):
        stats = CommStats(2)
        stats.record(0, 1, 5)
        finished = stats.end_round()
        assert finished.total_bytes == 5
        assert stats.current_round.total_bytes == 0

    def test_communication_partners(self):
        stats = CommStats(4)
        stats.record(0, 1, 1)
        stats.record(0, 2, 1)
        stats.record(0, 2, 1)
        stats.record(3, 0, 1)
        assert stats.communication_partners(0) == 2
        assert stats.communication_partners(3) == 1
        assert stats.communication_partners(1) == 0
        assert stats.max_partners() == 2

    def test_max_partners_empty(self):
        assert CommStats(2).max_partners() == 0

    def test_invalid_arguments(self):
        stats = CommStats(2)
        with pytest.raises(ValueError):
            stats.record(0, 5, 1)
        with pytest.raises(ValueError):
            stats.record(0, 1, -1)
        with pytest.raises(ValueError):
            CommStats(0)
