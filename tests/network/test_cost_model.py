"""Unit tests for the alpha-beta cost model."""

import pytest

from repro.network.cost_model import (
    LCI_PARAMETERS,
    MPI_PARAMETERS,
    CostModel,
    NetworkParameters,
)
from repro.network.stats import RoundTraffic


class TestNetworkParameters:
    def test_lci_cheaper_than_mpi(self):
        """Dang et al. [20]: LCI has lower per-message overhead than MPI."""
        assert LCI_PARAMETERS.latency_s < MPI_PARAMETERS.latency_s

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkParameters("bad", latency_s=-1, bandwidth_bytes_per_s=1)
        with pytest.raises(ValueError):
            NetworkParameters("bad", latency_s=0, bandwidth_bytes_per_s=0)


class TestMessageTime:
    def test_alpha_beta_composition(self):
        model = CostModel(
            NetworkParameters("t", latency_s=1.0, bandwidth_bytes_per_s=10.0)
        )
        assert model.message_time(0) == pytest.approx(1.0)
        assert model.message_time(20) == pytest.approx(3.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            CostModel().message_time(-1)

    def test_larger_messages_cost_more(self):
        model = CostModel()
        assert model.message_time(1000) > model.message_time(10)


class TestRoundTime:
    def test_critical_path_is_busiest_host(self):
        model = CostModel(
            NetworkParameters("t", latency_s=0.0, bandwidth_bytes_per_s=1.0)
        )
        # Host 0 sends 10 and receives 1; host 1 receives 10 and sends 1.
        traffic = RoundTraffic(messages=[(0, 1, 10), (1, 0, 1)])
        assert model.round_time(traffic, 2) == pytest.approx(11.0)

    def test_empty_round(self):
        model = CostModel()
        assert model.round_time(RoundTraffic(), 2) == 0.0

    def test_concentration_costs_more_than_spread(self):
        """The same bytes on one pair cost more than spread over pairs."""
        model = CostModel(
            NetworkParameters("t", latency_s=0.0, bandwidth_bytes_per_s=1.0)
        )
        concentrated = RoundTraffic(messages=[(0, 1, 30)])
        spread = RoundTraffic(messages=[(0, 1, 10), (2, 3, 10), (4, 5, 10)])
        assert model.round_time(concentrated, 6) > model.round_time(spread, 6)
