"""Unit tests for the in-process transport."""

import pytest

from repro.errors import TransportError
from repro.network.transport import InProcessTransport


class TestSendReceive:
    def test_basic_delivery(self):
        t = InProcessTransport(3)
        t.send(0, 1, b"hello")
        t.send(2, 1, b"world")
        inbox = t.receive_all(1)
        assert [(s, bytes(p)) for s, p in inbox] == [
            (0, b"hello"),
            (2, b"world"),
        ]

    def test_receive_drains(self):
        t = InProcessTransport(2)
        t.send(0, 1, b"x")
        assert t.pending(1) == 1
        t.receive_all(1)
        assert t.pending(1) == 0
        assert t.receive_all(1) == []

    def test_order_preserved_per_receiver(self):
        t = InProcessTransport(2)
        for i in range(5):
            t.send(0, 1, bytes([i]))
        payloads = [p for _, p in t.receive_all(1)]
        assert payloads == [bytes([i]) for i in range(5)]

    def test_self_send_rejected(self):
        t = InProcessTransport(2)
        with pytest.raises(TransportError):
            t.send(1, 1, b"loop")

    def test_out_of_range_host_rejected(self):
        t = InProcessTransport(2)
        with pytest.raises(TransportError):
            t.send(0, 2, b"x")
        with pytest.raises(TransportError):
            t.send(-1, 0, b"x")
        with pytest.raises(TransportError):
            t.receive_all(5)

    def test_non_bytes_payload_rejected(self):
        t = InProcessTransport(2)
        with pytest.raises(TransportError):
            t.send(0, 1, "not bytes")

    def test_zero_hosts_rejected(self):
        with pytest.raises(TransportError):
            InProcessTransport(0)


class TestRounds:
    def test_stats_recorded(self):
        t = InProcessTransport(2)
        t.send(0, 1, b"abcd")
        assert t.stats.total_bytes == 4
        assert t.stats.total_messages == 1
        assert t.stats.pair_bytes(0, 1) == 4
        assert t.stats.pair_bytes(1, 0) == 0

    def test_end_round_requires_drained_mailboxes(self):
        t = InProcessTransport(2)
        t.send(0, 1, b"x")
        with pytest.raises(TransportError, match="undelivered"):
            t.end_round()
        t.receive_all(1)
        t.end_round()  # now fine

    def test_round_boundaries_split_traffic(self):
        t = InProcessTransport(2)
        t.send(0, 1, b"xx")
        t.receive_all(1)
        t.end_round()
        t.send(1, 0, b"yyy")
        t.receive_all(0)
        t.end_round()
        rounds = t.stats.rounds
        assert rounds[0].total_bytes == 2
        assert rounds[1].total_bytes == 3
