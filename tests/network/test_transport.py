"""Unit tests for the in-process transport."""

import pytest

from repro.errors import HostCrashedError, TransportError
from repro.network.transport import InProcessTransport


class TestSendReceive:
    def test_basic_delivery(self):
        t = InProcessTransport(3)
        t.send(0, 1, b"hello")
        t.send(2, 1, b"world")
        inbox = t.receive_all(1)
        assert [(s, bytes(p)) for s, p in inbox] == [
            (0, b"hello"),
            (2, b"world"),
        ]

    def test_receive_drains(self):
        t = InProcessTransport(2)
        t.send(0, 1, b"x")
        assert t.pending(1) == 1
        t.receive_all(1)
        assert t.pending(1) == 0
        assert t.receive_all(1) == []

    def test_order_preserved_per_receiver(self):
        t = InProcessTransport(2)
        for i in range(5):
            t.send(0, 1, bytes([i]))
        payloads = [p for _, p in t.receive_all(1)]
        assert payloads == [bytes([i]) for i in range(5)]

    def test_self_send_rejected(self):
        t = InProcessTransport(2)
        with pytest.raises(TransportError):
            t.send(1, 1, b"loop")

    def test_out_of_range_host_rejected(self):
        t = InProcessTransport(2)
        with pytest.raises(TransportError):
            t.send(0, 2, b"x")
        with pytest.raises(TransportError):
            t.send(-1, 0, b"x")
        with pytest.raises(TransportError):
            t.receive_all(5)

    def test_non_bytes_payload_rejected(self):
        t = InProcessTransport(2)
        with pytest.raises(TransportError):
            t.send(0, 1, "not bytes")

    def test_zero_hosts_rejected(self):
        with pytest.raises(TransportError):
            InProcessTransport(0)


class TestRounds:
    def test_stats_recorded(self):
        t = InProcessTransport(2)
        t.send(0, 1, b"abcd")
        assert t.stats.total_bytes == 4
        assert t.stats.total_messages == 1
        assert t.stats.pair_bytes(0, 1) == 4
        assert t.stats.pair_bytes(1, 0) == 0

    def test_end_round_requires_drained_mailboxes(self):
        t = InProcessTransport(2)
        t.send(0, 1, b"x")
        with pytest.raises(TransportError, match="undelivered"):
            t.end_round()
        t.receive_all(1)
        t.end_round()  # now fine

    def test_end_round_error_names_offending_senders(self):
        t = InProcessTransport(4)
        t.send(1, 3, b"x")
        t.send(2, 3, b"y")
        t.send(2, 0, b"z")
        with pytest.raises(TransportError) as exc:
            t.end_round()
        message = str(exc.value)
        assert "host 3 holds mail from senders [1, 2]" in message
        assert "host 0 holds mail from senders [2]" in message

    def test_round_boundaries_split_traffic(self):
        t = InProcessTransport(2)
        t.send(0, 1, b"xx")
        t.receive_all(1)
        t.end_round()
        t.send(1, 0, b"yyy")
        t.receive_all(0)
        t.end_round()
        rounds = t.stats.rounds
        assert rounds[0].total_bytes == 2
        assert rounds[1].total_bytes == 3


class TestCrashes:
    def test_receive_after_crash_names_dead_host(self):
        t = InProcessTransport(3)
        t.crash(1)
        with pytest.raises(HostCrashedError, match="host 1 crashed") as exc:
            t.receive_all(1)
        assert exc.value.host == 1

    def test_send_to_dead_host_rejected(self):
        t = InProcessTransport(3)
        t.crash(2)
        with pytest.raises(HostCrashedError):
            t.send(0, 2, b"x")

    def test_send_from_dead_host_rejected(self):
        t = InProcessTransport(3)
        t.crash(0)
        with pytest.raises(HostCrashedError):
            t.send(0, 1, b"x")

    def test_pending_is_monitoring_safe_on_dead_host(self):
        # Monitoring probes must not raise: a crashed host's discarded
        # mailbox simply reads as empty, and probing does not drain mail.
        t = InProcessTransport(2)
        t.send(0, 1, b"x")
        assert t.pending(1) == 1
        assert t.pending(1) == 1  # probing does not consume
        t.crash(1)
        assert t.pending(1) == 0
        assert t.is_crashed(1)

    def test_crash_is_transport_error(self):
        # Callers catching the broad transport failure still work.
        t = InProcessTransport(2)
        t.crash(0)
        with pytest.raises(TransportError):
            t.receive_all(0)

    def test_crash_discards_queued_mail(self):
        t = InProcessTransport(2)
        t.send(0, 1, b"doomed")
        t.crash(1)
        t.end_round()  # dead letters don't count as undelivered

    def test_crash_is_idempotent_and_tracked(self):
        t = InProcessTransport(3)
        assert not t.is_crashed(1)
        t.crash(1)
        t.crash(1)
        assert t.is_crashed(1)
        assert t.crashed_hosts == frozenset({1})

    def test_crash_out_of_range_rejected(self):
        t = InProcessTransport(2)
        with pytest.raises(TransportError):
            t.crash(5)

    def test_live_hosts_unaffected(self):
        t = InProcessTransport(3)
        t.crash(2)
        t.send(0, 1, b"still works")
        assert [p for _, p in t.receive_all(1)] == [b"still works"]
