"""CLI `run` command across system families (GPU, baseline, hybrid)."""

import pytest

from repro.cli import main


@pytest.mark.parametrize(
    "system,extra",
    [
        ("d-irgl", ["--policy", "iec"]),
        ("d-hybrid", ["--policy", "cvc"]),
        ("gemini", []),
        ("gunrock", []),
    ],
)
def test_run_per_system(capsys, system, extra):
    exit_code = main(
        [
            "run",
            "--system", system,
            "--app", "bfs",
            "--workload", "rmat24s",
            "--hosts", "4",
            "--scale-delta", "-4",
            "--scaled-fabric",
        ]
        + extra
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert system in out
    assert "replication factor" in out


def test_run_multi_phase_app(capsys):
    exit_code = main(
        [
            "run",
            "--system", "d-galois",
            "--app", "bc",
            "--workload", "rmat24s",
            "--hosts", "4",
            "--scale-delta", "-4",
        ]
    )
    assert exit_code == 0
    assert "bc" in capsys.readouterr().out


def test_run_rejects_bad_combination(capsys):
    from repro.errors import ExecutionError

    with pytest.raises(ExecutionError):
        main(
            [
                "run",
                "--system", "gunrock",
                "--app", "bfs",
                "--workload", "rmat24s",
                "--hosts", "8",  # beyond one node
                "--scale-delta", "-4",
            ]
        )
