"""Tests for compiled vertex programs: the generated code must match the
hand-written applications exactly, across engines and policies."""

import numpy as np
import pytest

from repro.apps import make_app
from repro.compiler import compile_operator
from repro.compiler.spec import CompileError, FieldDecl, Init, OperatorSpec
from repro.engines import make_engine
from repro.partition import make_partitioner
from repro.partition.strategy import OperatorClass
from repro.runtime.executor import DistributedExecutor
from repro.systems import prepare_input
from tests.conftest import reference_bfs, reference_cc, reference_sssp


def sssp_spec():
    return OperatorSpec(
        name="sssp-compiled",
        style=OperatorClass.PUSH,
        field=FieldDecl(
            "dist", np.uint32, reduce="min",
            init=Init.infinity_except_source(),
        ),
        edge_kernel=lambda values, weights: values + weights,
        source_guard=lambda values: values != np.iinfo(np.uint32).max,
        needs_weights=True,
    )


def bfs_spec():
    return OperatorSpec(
        name="bfs-compiled",
        style=OperatorClass.PUSH,
        field=FieldDecl(
            "dist", np.uint32, reduce="min",
            init=Init.infinity_except_source(),
        ),
        edge_kernel=lambda values, weights: values + 1,
        source_guard=lambda values: values != np.iinfo(np.uint32).max,
    )


def cc_spec():
    return OperatorSpec(
        name="cc-compiled",
        style=OperatorClass.PUSH,
        field=FieldDecl(
            "label", np.uint32, reduce="min", init=Init.global_id()
        ),
        edge_kernel=lambda values, weights: values,
        symmetrize_input=True,
    )


def run_compiled(spec, edges, app_for_prep, num_hosts, policy, engine="galois"):
    prep = prepare_input(app_for_prep, edges)
    program = compile_operator(spec)
    partitioned = make_partitioner(policy).partition(prep.edges, num_hosts)
    executor = DistributedExecutor(
        partitioned, make_engine(engine), program, prep.ctx
    )
    executor.run()
    return prep, executor


class TestCompiledCorrectness:
    @pytest.mark.parametrize("policy", ["oec", "iec", "cvc", "hvc"])
    def test_compiled_sssp_matches_oracle(self, small_rmat, policy):
        prep, executor = run_compiled(
            sssp_spec(), small_rmat, "sssp", 4, policy
        )
        got = executor.gather_result("dist").astype(np.uint64)
        expected = reference_sssp(prep.edges, prep.ctx.source)
        assert np.array_equal(got, expected)

    def test_compiled_bfs_matches_oracle(self, small_rmat):
        prep, executor = run_compiled(bfs_spec(), small_rmat, "bfs", 4, "cvc")
        got = executor.gather_result("dist").astype(np.uint64)
        expected = reference_bfs(prep.edges, prep.ctx.source)
        assert np.array_equal(got, expected)

    def test_compiled_cc_matches_oracle(self, small_rmat):
        prep, executor = run_compiled(cc_spec(), small_rmat, "cc", 4, "hvc")
        got = executor.gather_result("label").astype(np.uint64)
        expected = reference_cc(prep.edges)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("engine", ["galois", "ligra", "irgl"])
    def test_compiled_runs_on_every_engine(self, small_rmat, engine):
        prep, executor = run_compiled(
            bfs_spec(), small_rmat, "bfs", 4, "cvc", engine=engine
        )
        got = executor.gather_result("dist").astype(np.uint64)
        expected = reference_bfs(prep.edges, prep.ctx.source)
        assert np.array_equal(got, expected)

    def test_compiled_matches_handwritten_traffic(self, small_rmat):
        """Same operator, same dirty sets -> byte-identical communication
        as the hand-written sssp."""
        prep = prepare_input("sssp", small_rmat)
        partitioned = make_partitioner("cvc").partition(prep.edges, 4)
        compiled = DistributedExecutor(
            partitioned,
            make_engine("ligra"),
            compile_operator(sssp_spec()),
            prep.ctx,
        )
        handwritten = DistributedExecutor(
            partitioned, make_engine("ligra"), make_app("sssp"), prep.ctx
        )
        a = compiled.run()
        b = handwritten.run()
        assert a.num_rounds == b.num_rounds
        assert a.communication_volume == b.communication_volume


class TestCompiledPull:
    def test_pull_style_min_propagation(self, small_rmat):
        """A pull-style compiled cc: nodes adopt the min in-neighbor label."""
        spec = OperatorSpec(
            name="cc-pull",
            style=OperatorClass.PULL,
            field=FieldDecl(
                "label", np.uint32, reduce="min", init=Init.global_id()
            ),
            edge_kernel=lambda values, weights: values,
            symmetrize_input=True,
        )
        prep, executor = run_compiled(spec, small_rmat, "cc", 4, "iec")
        got = executor.gather_result("label").astype(np.uint64)
        expected = reference_cc(prep.edges)
        assert np.array_equal(got, expected)


class TestCompilerValidation:
    def test_assign_reduction_rejected(self):
        spec = OperatorSpec(
            name="bad",
            style=OperatorClass.PUSH,
            field=FieldDecl(
                "x", np.uint32, reduce="assign", init=Init.constant(0)
            ),
            edge_kernel=lambda values, weights: values,
        )
        with pytest.raises(CompileError, match="scatter-combine"):
            compile_operator(spec)

    def test_overflow_clipped(self, small_path):
        """INF + weight must clip to INF, never wrap around."""
        prep, executor = run_compiled(
            sssp_spec(), small_path, "sssp", 2, "oec"
        )
        dist = executor.gather_result("dist")
        inf = np.iinfo(np.uint32).max
        assert np.all((dist <= 40 * 100) | (dist == inf))

    def test_bad_initializer_shape(self, small_rmat):
        spec = OperatorSpec(
            name="bad-init",
            style=OperatorClass.PUSH,
            field=FieldDecl(
                "x",
                np.uint32,
                reduce="min",
                init=lambda part, ctx, dtype: np.zeros(3, dtype=dtype),
            ),
            edge_kernel=lambda values, weights: values,
        )
        program = compile_operator(spec)
        prep = prepare_input("bfs", small_rmat)
        partitioned = make_partitioner("oec").partition(prep.edges, 2)
        with pytest.raises(CompileError, match="shape"):
            program.make_state(partitioned.partitions[0], prep.ctx)


class TestAnalysis:
    def test_sync_requirements_match_section32(self):
        from repro.compiler import analyze_operator
        from repro.partition.strategy import PartitionStrategy

        requirements = analyze_operator(sssp_spec())
        oec = requirements[PartitionStrategy.OEC]
        assert oec.needs_reduce and not oec.needs_broadcast
        iec = requirements[PartitionStrategy.IEC]
        assert not iec.needs_reduce and iec.needs_broadcast
        for strategy in (PartitionStrategy.UVC, PartitionStrategy.CVC):
            req = requirements[strategy]
            assert req.needs_reduce and req.needs_broadcast
        assert all(req.legal for req in requirements.values())

    def test_data_flow_description_renders(self):
        from repro.compiler.analysis import data_flow_description

        text = data_flow_description(sssp_spec())
        assert "sssp-compiled" in text
        assert "reduce" in text and "broadcast" in text

    def test_non_single_value_push_restricted_to_oec(self):
        from repro.compiler import analyze_operator
        from repro.partition.strategy import PartitionStrategy

        spec = OperatorSpec(
            name="per-edge-values",
            style=OperatorClass.PUSH,
            field=FieldDecl(
                "x", np.uint32, reduce="min", init=Init.constant(0)
            ),
            edge_kernel=lambda values, weights: values,
            single_value_push=False,
        )
        requirements = analyze_operator(spec)
        assert requirements[PartitionStrategy.OEC].legal
        assert not requirements[PartitionStrategy.CVC].legal
        assert not requirements[PartitionStrategy.IEC].legal
        assert not requirements[PartitionStrategy.UVC].legal
