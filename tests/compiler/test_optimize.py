"""The optimizing compile path (`compile_program(optimize=True)`).

GL301 dead-sync elimination and GL302 phase fusion must be *invisible*
in results — bitwise identical to the unoptimized compiled program
across policies, host counts, and runtimes — and *visible* on the wire:
at `OptimizationLevel.OTI` (where structural elision doesn't already
zero the dead phases) the eliminated syncs cut real message counts.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import make_app
from repro.apps.specs import (
    PROGRAM_SPECS,
    base_app_name,
    is_compiled_name,
    is_optimized_name,
    make_compiled_app,
    optimized_app_names,
)
from repro.compiler import compile_program, render_program
from repro.core.optimization import OptimizationLevel
from repro.graph.generators import rmat
from repro.systems import run_app

from tests.analysis.test_dataflow import EXPECTED_DEAD, fuse_spec

RESULT_KEY = {
    "bfs": "dist",
    "sssp": "dist",
    "cc": "label",
    "kcore": "alive",
    "pr": "rank",
    "pr-push": "rank",
    "featprop": "feat",
    "labelprop": "label",
}

MIGRATED = sorted(PROGRAM_SPECS)
POLICIES = ("oec", "iec", "cvc", "hvc", "jagged", "random")
HOSTS = (1, 2, 4, 8)

GRAPH = rmat(scale=8, edge_factor=8, seed=7)


def _pair(app, hosts, policy, runtime="simulated", level=None):
    plain = run_app(
        "d-galois", app + "@compiled", GRAPH, num_hosts=hosts,
        policy=policy, runtime=runtime, level=level,
    )
    optimized = run_app(
        "d-galois", app + "@optimized", GRAPH, num_hosts=hosts,
        policy=policy, runtime=runtime, level=level,
    )
    return plain, optimized


def _assert_bitwise(app, plain, optimized, rounds=True):
    key = RESULT_KEY[app]
    expected = plain.executor.gather_result(key)
    got = optimized.executor.gather_result(key)
    assert got.dtype == expected.dtype
    assert np.array_equal(got, expected), f"{app}: optimizer diverged"
    if rounds:
        assert len(optimized.rounds) == len(plain.rounds)


class TestBitwiseIdentity:
    @pytest.mark.parametrize("app", MIGRATED)
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        policy=st.sampled_from(POLICIES),
        hosts=st.sampled_from(HOSTS),
    )
    def test_identical_across_policies_and_hosts(self, app, policy, hosts):
        plain, optimized = _pair(app, hosts, policy)
        _assert_bitwise(app, plain, optimized)

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("hosts", HOSTS)
    def test_sssp_full_matrix(self, policy, hosts):
        """The spec with the richest dead-sync table, exhaustively."""
        plain, optimized = _pair("sssp", hosts, policy)
        _assert_bitwise("sssp", plain, optimized)

    @pytest.mark.parametrize("app", ("bfs", "cc"))
    def test_identical_on_process_runtime(self, app):
        plain, optimized = _pair(app, 2, "cvc", runtime="process")
        _assert_bitwise(app, plain, optimized)

    @pytest.mark.parametrize("app", ("bfs", "sssp", "cc", "pr"))
    @pytest.mark.parametrize("policy", ("iec", "oec"))
    def test_identical_at_oti(self, app, policy):
        """Same answers where the cut is actually measurable.

        Round counts may legitimately drift by one at OTI: with a dead
        broadcast eliminated, a mirror's stale copy can improve through
        a local scatter to a value still above the master's — one
        redundant reduce round of zero-progress activity (bounded: the
        mirror value is monotone and floored by the master's).  Values
        must stay bitwise identical regardless.
        """
        plain, optimized = _pair(
            app, 4, policy, level=OptimizationLevel.OTI,
        )
        _assert_bitwise(app, plain, optimized, rounds=False)


class TestMessageCut:
    """GL301 must pay for itself: fewer messages, not just a claim."""

    def test_sssp_iec_cut_at_oti(self):
        plain, optimized = _pair(
            "sssp", 4, "iec", level=OptimizationLevel.OTI,
        )
        assert (
            optimized.communication_messages
            < plain.communication_messages
        )
        assert optimized.communication_volume < plain.communication_volume

    def test_bfs_oec_correctly_uncut(self):
        """bfs's broadcast stays alive under OEC (pull-path read), so
        the optimizer must leave its traffic untouched."""
        plain, optimized = _pair(
            "bfs", 4, "oec", level=OptimizationLevel.OTI,
        )
        assert (
            optimized.communication_messages
            == plain.communication_messages
        )

    def test_already_zero_at_default_level(self):
        """At OSTI, structural elision ships zero payloads for the dead
        phases anyway — elimination must not *increase* anything."""
        plain, optimized = _pair("bfs", 4, "iec")
        assert (
            optimized.communication_messages
            <= plain.communication_messages
        )


class TestFusion:
    def test_fused_fixture_bitwise_identical(self, monkeypatch):
        spec = fuse_spec()
        monkeypatch.setitem(PROGRAM_SPECS, spec.name, spec)
        for policy in ("cvc", "iec", "oec"):
            plain, optimized = _pair(spec.name, 4, policy)
            for key in ("a", "b"):
                expected = plain.executor.gather_result(key)
                got = optimized.executor.gather_result(key)
                assert np.array_equal(got, expected), (policy, key)
            assert len(optimized.rounds) == len(plain.rounds)

    def test_fused_source_shares_one_gather(self):
        plain = render_program(fuse_spec())
        optimized = render_program(fuse_spec(), optimize=True)
        assert plain.count("gather_frontier_edges(part.graph") == 2
        assert optimized.count("gather_frontier_edges(part.graph") == 1


class TestGeneratedArtifacts:
    def test_optimized_app_attrs(self):
        app = make_app("bfs@optimized")
        assert app.__class__.name == "bfs@optimized"
        assert app.__class__.optimized is True
        assert "_DEAD_SYNC" in app.__class__.generated_source

    def test_plain_compiled_is_unoptimized(self):
        app = make_app("bfs@compiled")
        assert app.__class__.optimized is False
        assert "_DEAD_SYNC" not in app.__class__.generated_source

    def test_dead_sync_table_embedded_verbatim(self):
        source = render_program(PROGRAM_SPECS["sssp"], optimize=True)
        assert "_DEAD_SYNC" in source
        namespace = {}
        exec(  # noqa: S102 - asserting on our own generated module
            compile(source, "<generated sssp@optimized>", "exec"),
            namespace,
        )
        table = {
            strategy: {
                wire: tuple(sorted(phases))
                for wire, phases in wires.items()
            }
            for strategy, wires in namespace["_DEAD_SYNC"].items()
        }
        assert table == EXPECTED_DEAD["sssp"]

    def test_optimized_names_registered(self):
        names = optimized_app_names()
        assert "bfs@optimized" in names
        assert len(names) == len(PROGRAM_SPECS)

    def test_name_helpers(self):
        assert base_app_name("sssp@optimized") == "sssp"
        assert base_app_name("sssp@compiled") == "sssp"
        assert base_app_name("sssp") == "sssp"
        assert is_optimized_name("sssp@optimized")
        assert not is_optimized_name("sssp@compiled")
        assert is_compiled_name("sssp@optimized")
        assert is_compiled_name("sssp@compiled")
        assert not is_compiled_name("sssp")

    def test_cache_keeps_variants_distinct(self):
        plain = make_compiled_app("bfs@compiled")
        optimized = make_compiled_app("bfs@optimized")
        assert plain.__class__ is not optimized.__class__
        assert plain.__class__ is make_compiled_app("bfs").__class__

    def test_optimized_source_passes_astlint(self):
        from repro.analysis.astlint import analyze_program
        from repro.analysis.linter import lint_programs

        cls = compile_program(PROGRAM_SPECS["sssp"], optimize=True).__class__
        findings = lint_programs([cls])
        assert not findings, [f.message for f in findings]
        report = analyze_program(cls)
        assert report.fields, "lint saw no fields in optimized source"
