"""The compiled-program contract: every migrated spec's generated code
is *bitwise identical* to the handwritten application it replaces —
across partition policies, host counts, and runtimes — its sync
endpoints are derived (never declared), and the GL lint pass verifies
the generated source like any handwritten program.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.linter import run_lint
from repro.apps import bc, features, make_app
from repro.apps.specs import (
    BFS_SPEC,
    PROGRAM_SPECS,
    base_app_name,
    compiled_app_names,
    is_compiled_name,
    make_compiled_app,
    spec_for,
)
from repro.compiler import (
    FieldDecl,
    Init,
    OperatorSpec,
    PhaseSpec,
    ProgramSpec,
    SyncDecl,
    compile_operator,
    compile_program,
    derive_endpoints,
    render_program,
    verify_compiled,
)
from repro.compiler.spec import CompileError
from repro.graph.generators import rmat
from repro.partition import make_partitioner
from repro.partition.strategy import OperatorClass
from repro.systems import prepare_input, run_app

#: Output field per migrated app (the key the oracle checks, too).
RESULT_KEY = {
    "bfs": "dist",
    "sssp": "dist",
    "cc": "label",
    "kcore": "alive",
    "pr": "rank",
    "pr-push": "rank",
    "featprop": "feat",
    "labelprop": "label",
}

MIGRATED = sorted(PROGRAM_SPECS)
POLICIES = ("oec", "iec", "cvc", "hvc", "jagged", "random")
HOSTS = (1, 2, 4, 8)

#: Module-level so Hypothesis examples share one graph (fixtures are
#: function-scoped from @given's point of view).
GRAPH = rmat(scale=8, edge_factor=8, seed=7)


def _pair(app, hosts, policy, runtime="simulated"):
    handwritten = run_app(
        "d-galois", app, GRAPH, num_hosts=hosts, policy=policy,
        runtime=runtime,
    )
    compiled = run_app(
        "d-galois", app + "@compiled", GRAPH, num_hosts=hosts,
        policy=policy, runtime=runtime,
    )
    return handwritten, compiled


def _assert_bitwise(app, handwritten, compiled):
    key = RESULT_KEY[app]
    expected = handwritten.executor.gather_result(key)
    got = compiled.executor.gather_result(key)
    assert got.dtype == expected.dtype
    assert np.array_equal(got, expected), f"{app}: generated code diverged"
    assert len(compiled.rounds) == len(handwritten.rounds)


class TestBitwiseIdentity:
    """Generated code must equal the handwritten app bit for bit."""

    @pytest.mark.parametrize("app", MIGRATED)
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        policy=st.sampled_from(POLICIES),
        hosts=st.sampled_from(HOSTS),
    )
    def test_identical_across_policies_and_hosts(self, app, policy, hosts):
        handwritten, compiled = _pair(app, hosts, policy)
        _assert_bitwise(app, handwritten, compiled)

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("hosts", HOSTS)
    def test_bfs_full_matrix(self, policy, hosts):
        """One app exhaustively over the whole policy × host grid."""
        handwritten, compiled = _pair("bfs", hosts, policy)
        _assert_bitwise("bfs", handwritten, compiled)

    @pytest.mark.parametrize("app", MIGRATED)
    def test_identical_comm_volume(self, app):
        """Same answer *and* same wire traffic: the derived endpoints
        produce the same sync plan the handwritten declarations did."""
        handwritten, compiled = _pair(app, 4, "cvc")
        _assert_bitwise(app, handwritten, compiled)
        assert (
            compiled.communication_volume
            == handwritten.communication_volume
        )
        assert (
            compiled.communication_messages
            == handwritten.communication_messages
        )

    @pytest.mark.parametrize("app", ["bfs", "pr"])
    def test_identical_under_process_runtime(self, app):
        handwritten, compiled = _pair("bfs" if app == "bfs" else app, 2,
                                      "cvc", runtime="process")
        _assert_bitwise(app, handwritten, compiled)


class TestDerivedEndpoints:
    """Sync endpoints come from the phases' access sets, never by hand."""

    @pytest.mark.parametrize("app", MIGRATED)
    def test_migrated_specs_derive_forward_flow(self, app):
        spec = spec_for(app)
        endpoints = derive_endpoints(spec)
        assert endpoints, f"{app}: no sync wires derived"
        for wire, (writes, reads) in endpoints.items():
            assert writes == frozenset({"destination"}), (app, wire)
            assert reads == frozenset({"source"}), (app, wire)

    def test_bc_backward_derives_reversed_flow(self):
        """BC's transposed dependency phase derives the §3.2-reversed
        endpoints the module used to hand-declare."""
        assert bc.DELTA_WRITES == frozenset({"source"})
        assert bc.DELTA_READS == frozenset({"destination"})

    def test_bc_forward_derives_both_end_reads(self):
        assert bc.DIST_WRITES == frozenset({"destination"})
        assert bc.DIST_READS == frozenset({"source", "destination"})
        assert bc.SIGMA_WRITES == frozenset({"destination"})
        assert bc.SIGMA_READS == frozenset({"source", "destination"})

    def test_feature_apps_derive_default_flow(self):
        assert features.AGG_WRITES == frozenset({"destination"})
        assert features.AGG_READS == frozenset({"source"})

    def test_unwritten_sync_field_is_rejected(self):
        """A sync wire nothing writes derives an empty reduce side —
        the spec validation must refuse it."""
        with pytest.raises(CompileError, match="no phase writes"):
            ProgramSpec(
                name="broken",
                fields=(
                    FieldDecl("a", np.uint32, reduce="min",
                              init="np.zeros(n, dtype=np.uint32)"),
                    FieldDecl("b", np.uint32, reduce="min",
                              init="np.zeros(n, dtype=np.uint32)"),
                ),
                phases=(
                    PhaseSpec(name="p", kind="frontier_push",
                              target="a", kernel="{src.a}"),
                ),
                sync=(SyncDecl(field="b"),),
            )


class TestVerificationLoop:
    """compile → lint: tampered access sets must trip GL001."""

    def _tampered_bfs(self):
        return dataclasses.replace(
            BFS_SPEC,
            endpoint_overrides=(
                ("dist", (frozenset({"source"}),
                          frozenset({"source", "destination"}))),
            ),
        )

    def test_lint_clean_on_every_migrated_spec(self):
        names, findings = run_lint(compiled=True)
        assert sorted(names) == sorted(compiled_app_names())
        errors = [f for f in findings if f.severity == "error"]
        assert not errors, [f.message for f in errors]

    def test_tampered_endpoints_fire_gl001(self):
        program = compile_program(self._tampered_bfs())
        findings = verify_compiled(type(program))
        gl001 = [f for f in findings if f.rule.rule_id == "GL001"]
        assert gl001, "tampered writes set must trip GL001"
        assert all(f.severity == "error" for f in gl001)

    def test_compile_verify_gate_rejects_tampered_spec(self):
        with pytest.raises(CompileError, match="GL001"):
            compile_program(self._tampered_bfs(), verify=True)

    def test_render_is_deterministic(self):
        assert render_program(BFS_SPEC) == render_program(BFS_SPEC)

    def test_generated_source_attached(self):
        program = make_compiled_app("bfs")
        cls = type(program)
        assert cls.spec.name == "bfs"
        assert "class CompiledBfs" in cls.generated_source


class TestRegistry:
    """One source of truth: the spec registry resolves names everywhere."""

    def test_compiled_names_cover_every_migrated_spec(self):
        names = compiled_app_names()
        assert all(n.endswith("@compiled") for n in names)
        assert sorted(base_app_name(n) for n in names) == MIGRATED

    def test_base_app_name_round_trip(self):
        assert base_app_name("bfs@compiled") == "bfs"
        assert base_app_name("bfs") == "bfs"
        assert is_compiled_name("pr@compiled")
        assert not is_compiled_name("pr")

    def test_spec_for_unknown_app(self):
        with pytest.raises(ValueError, match="known"):
            spec_for("nonesuch")

    def test_make_app_resolves_compiled_suffix(self):
        program = make_app("cc@compiled")
        assert program.name == "cc@compiled"
        assert program.symmetrize_input

    def test_compiled_class_cached_instances_fresh(self):
        a, b = make_compiled_app("bfs"), make_compiled_app("bfs")
        assert type(a) is type(b)
        assert a is not b

    def test_pagerank_alias(self):
        assert type(make_compiled_app("pagerank")) is type(
            make_compiled_app("pr")
        )


class TestPullTargetRestriction:
    """The legacy operator path's pull template must honor pull_targets
    (gather only destinations that can still improve)."""

    def _bfs_spec(self, with_targets):
        infinity = np.iinfo(np.uint32).max
        return OperatorSpec(
            name="bfs-pull",
            style=OperatorClass.PULL,
            field=FieldDecl(
                "dist", np.uint32, reduce="min",
                init=Init.infinity_except_source(),
            ),
            edge_kernel=lambda values, weights: values + 1,
            source_guard=lambda values: values != infinity,
            pull_targets=(
                (lambda values: values == infinity) if with_targets else None
            ),
        )

    def _second_pull(self, with_targets):
        prep = prepare_input("bfs", GRAPH)
        program = compile_operator(self._bfs_spec(with_targets))
        part = make_partitioner("oec").partition(prep.edges, 1).partitions[0]
        state = program.make_state(part, prep.ctx)
        frontier = program.initial_frontier(part, state, prep.ctx)
        # The first pull settles level 1; the second is where the
        # target restriction pays (most nodes are still unreached).
        program.step(part, state, frontier)
        frontier = state["dist"] != np.iinfo(np.uint32).max
        return program.step(part, state, frontier)

    def test_pull_targets_shrink_the_gather(self):
        restricted = self._second_pull(with_targets=True)
        unrestricted = self._second_pull(with_targets=False)
        assert (
            restricted.work.edges_processed
            < unrestricted.work.edges_processed
        )
        assert (
            restricted.work.nodes_processed
            < unrestricted.work.nodes_processed
        )
        # Same frontier, same values: the restriction must not change
        # which nodes improve.
        assert np.array_equal(
            restricted.updated, unrestricted.updated
        )
