"""Unit tests for the operator-specification language."""

import numpy as np
import pytest

from repro.compiler.spec import CompileError, FieldDecl, Init, OperatorSpec
from repro.partition.strategy import OperatorClass


def min_field():
    return FieldDecl(
        "dist", np.uint32, reduce="min", init=Init.infinity_except_source()
    )


class TestFieldDecl:
    def test_valid(self):
        decl = min_field()
        assert decl.reduction.name == "min"

    def test_unknown_reduction(self):
        with pytest.raises(CompileError, match="unknown reduction"):
            FieldDecl("x", np.uint32, reduce="xor", init=Init.constant(0))

    def test_non_callable_init(self):
        with pytest.raises(CompileError, match="init must be callable"):
            FieldDecl("x", np.uint32, reduce="min", init=0)


class TestInit:
    def make_part(self, tiny_edges):
        from repro.partition import make_partitioner

        return make_partitioner("oec").partition(tiny_edges, 2).partitions[0]

    def test_constant(self, tiny_edges):
        from repro.apps.base import AppContext

        part = self.make_part(tiny_edges)
        ctx = AppContext(num_global_nodes=10)
        values = Init.constant(7)(part, ctx, np.uint32)
        assert np.all(values == 7)

    def test_global_id(self, tiny_edges):
        from repro.apps.base import AppContext

        part = self.make_part(tiny_edges)
        ctx = AppContext(num_global_nodes=10)
        values = Init.global_id()(part, ctx, np.uint32)
        assert np.array_equal(values, part.local_to_global)

    def test_infinity_except_source(self, tiny_edges):
        from repro.apps.base import AppContext

        part = self.make_part(tiny_edges)
        source = int(part.local_to_global[0])
        ctx = AppContext(num_global_nodes=10, source=source)
        values = Init.infinity_except_source()(part, ctx, np.uint32)
        assert values[0] == 0
        assert np.all(values[1:] == np.iinfo(np.uint32).max)

    def test_zero_except_source(self, tiny_edges):
        from repro.apps.base import AppContext

        part = self.make_part(tiny_edges)
        source = int(part.local_to_global[0])
        ctx = AppContext(num_global_nodes=10, source=source)
        values = Init.zero_except_source(99)(part, ctx, np.uint32)
        assert values[0] == 99
        assert np.all(values[1:] == 0)


class TestOperatorSpec:
    def test_valid_spec(self):
        spec = OperatorSpec(
            name="sssp",
            style=OperatorClass.PUSH,
            field=min_field(),
            edge_kernel=lambda values, weights: values + weights,
        )
        assert spec.iterate_locally  # min is idempotent

    def test_non_callable_kernel(self):
        with pytest.raises(CompileError, match="edge_kernel"):
            OperatorSpec(
                name="x",
                style=OperatorClass.PUSH,
                field=min_field(),
                edge_kernel=None,
            )

    def test_non_callable_guard(self):
        with pytest.raises(CompileError, match="source_guard"):
            OperatorSpec(
                name="x",
                style=OperatorClass.PUSH,
                field=min_field(),
                edge_kernel=lambda v, w: v,
                source_guard=5,
            )

    def test_add_reduction_forces_single_step(self):
        """The compiler must refuse to chaotically iterate a non-idempotent
        operator (double counting)."""
        spec = OperatorSpec(
            name="accum",
            style=OperatorClass.PUSH,
            field=FieldDecl(
                "total", np.uint32, reduce="add", init=Init.constant(0)
            ),
            edge_kernel=lambda values, weights: values,
            iterate_locally=True,  # author asks; compiler overrides
        )
        assert not spec.iterate_locally
