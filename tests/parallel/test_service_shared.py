"""Shared-memory partition staging for the service's process backend:
the parent exports each unique partition once, workers attach zero-copy,
and the answers stay bitwise identical to the serial backend."""

from __future__ import annotations

import gc
import os
from pathlib import Path

import numpy as np
import pytest

from repro.parallel.shm import SharedGraphStore
from repro.service import JobService, JobSpec, ServiceConfig
from repro.service.worker import (
    SharedPartitionCache,
    run_job_payload,
    stage_shared_partitions,
)

SHM_DIR = Path("/dev/shm")

pytestmark = pytest.mark.skipif(
    not SHM_DIR.is_dir(), reason="shared staging needs a POSIX /dev/shm"
)

#: Small enough to keep every test fast; big enough to run real rounds.
SCALE = -6


def _spec(app="bfs", **kw):
    kw.setdefault("policy", "cvc")
    kw.setdefault("scale_delta", SCALE)
    return JobSpec(app=app, workload="rmat22s", **kw)


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = set(os.listdir(SHM_DIR))
    yield
    gc.collect()
    leaked = set(os.listdir(SHM_DIR)) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


class TestStaging:
    def test_one_store_per_unique_partition(self):
        # Three jobs, two distinct (graph, policy, hosts) triples: the
        # bfs and pr jobs share a partition, the oec job does not.
        specs = [_spec("bfs"), _spec("pr"), _spec("bfs", policy="oec")]
        shared, stores = stage_shared_partitions(specs)
        try:
            assert len(shared) == 2
            assert len(stores) == 2
        finally:
            for store in stores:
                store.release()

    def test_manifests_rebuild_the_partition(self):
        shared, stores = stage_shared_partitions([_spec("bfs")])
        try:
            ((manifest, prepared_sync),) = shared.values()
            attached = SharedGraphStore.attach(manifest)
            rebuilt = attached.build_partitioned()
            assert rebuilt.num_hosts == stores[0].num_hosts
            np.testing.assert_array_equal(
                rebuilt.master_host,
                stores[0].build_partitioned().master_host,
            )
            # Cold staging (no cache) ships no memoized sync structures;
            # each worker runs the exchange itself — still bitwise, the
            # cold path is the reference.
            assert prepared_sync is None
            attached.close()
        finally:
            for store in stores:
                store.release()

    def test_unstageable_specs_are_skipped_not_fatal(self):
        bad = _spec("bfs")
        object.__setattr__(bad, "workload", "no-such-workload")
        shared, stores = stage_shared_partitions([bad, _spec("bfs")])
        try:
            assert len(shared) == 1  # the good spec still staged
        finally:
            for store in stores:
                store.release()


class TestSharedPartitionCache:
    def test_attach_hit_and_put_skip(self):
        spec = _spec("bfs")
        shared, stores = stage_shared_partitions([spec])
        try:
            (key,) = shared.keys()
            cache = SharedPartitionCache(shared)
            hit = cache.get_partition(key)
            assert hit is not None
            np.testing.assert_array_equal(
                hit.partitioned.master_host,
                stores[0].build_partitioned().master_host,
            )
            assert cache.get_partition("not-staged") is None
            # No inner cache: puts and result lookups are no-ops.
            cache.put_partition(key, hit.partitioned)
            assert cache.get_result("anything") is None
            cache.close()
        finally:
            for store in stores:
                store.release()


class TestEndToEnd:
    def test_payload_attaches_without_a_disk_cache(self):
        spec = _spec("bfs")
        baseline = run_job_payload(spec.to_dict())
        shared, stores = stage_shared_partitions([spec])
        try:
            result = run_job_payload(
                spec.to_dict(), shared_partitions=shared
            )
        finally:
            for store in stores:
                store.release()
        assert result.status == "ok"
        # The shared store counts as a partition-cache hit even with no
        # disk cache configured, and the answer is bitwise the uncached
        # run's (memoization_bytes accounting rides along).
        assert result.partition_cache == "hit"
        assert result.output_digest == baseline.output_digest
        assert result.sim_time_s == baseline.sim_time_s
        assert result.construction_bytes == baseline.construction_bytes
        np.testing.assert_array_equal(result.values, baseline.values)

    def test_process_backend_matches_serial_bitwise(self):
        specs = [_spec("bfs"), _spec("pr"), _spec("cc")]
        serial = JobService(ServiceConfig()).run_batch(
            [_spec("bfs"), _spec("pr"), _spec("cc")]
        )
        process = JobService(
            ServiceConfig(backend="process", workers=2)
        ).run_batch(specs)
        assert all(r.status == "ok" for r in process)
        for s, p in zip(serial, process):
            assert p.output_digest == s.output_digest
            assert p.sim_time_s == s.sim_time_s
            assert p.comm_bytes == s.comm_bytes
            np.testing.assert_array_equal(p.values, s.values)
