"""The process runtime end to end: bitwise identity with the simulated
runtime across applications, policies, engines, worker counts, and comm
modes — plus the guard rails and the measured wall-clock columns."""

from __future__ import annotations

import gc
import os
from pathlib import Path

import numpy as np
import pytest

from repro.apps import make_app
from repro.engines import make_engine
from repro.errors import ExecutionError
from repro.observability import Observability
from repro.partition import make_partitioner
from repro.resilience import FaultPlan, ResilienceConfig
from repro.resilience.faults import CrashFault
from repro.runtime.executor import DistributedExecutor
from repro.systems import prepare_input, run_app

SHM_DIR = Path("/dev/shm")

pytestmark = pytest.mark.skipif(
    not SHM_DIR.is_dir(), reason="the process runtime needs a POSIX /dev/shm"
)

#: Every application and the state field its answer lives in.
APPS = [
    ("bfs", "dist"),
    ("sssp", "dist"),
    ("cc", "label"),
    ("pr", "rank"),
    ("pr-push", "rank"),
    ("kcore", "alive"),
    ("bc", "delta"),
]


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test here must leave /dev/shm exactly as it found it."""
    before = set(os.listdir(SHM_DIR))
    yield
    gc.collect()
    leaked = set(os.listdir(SHM_DIR)) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def build_executor(edges, app_name="bfs", policy="cvc", num_hosts=4, **kw):
    prep = prepare_input(app_name, edges)
    partitioned = make_partitioner(policy).partition(prep.edges, num_hosts)
    return DistributedExecutor(
        partitioned,
        make_engine("galois"),
        make_app(app_name),
        prep.ctx,
        **kw,
    )


def assert_identical(sim, proc, key):
    """The process run must be bitwise the simulated run, wall aside."""
    assert proc.num_rounds == sim.num_rounds
    assert proc.converged == sim.converged
    assert proc.total_time == sim.total_time  # exact float equality
    assert proc.communication_volume == sim.communication_volume
    assert proc.communication_messages == sim.communication_messages
    assert proc.construction_bytes == sim.construction_bytes
    assert proc.translations == sim.translations
    assert proc.replication_factor == sim.replication_factor
    np.testing.assert_array_equal(
        proc.executor.gather_result(key), sim.executor.gather_result(key)
    )


class TestBitwiseIdentity:
    @pytest.mark.parametrize("app_name,key", APPS)
    @pytest.mark.parametrize("policy", ["oec", "cvc"])
    def test_every_app_and_policy(self, tiny_edges, app_name, key, policy):
        sim = run_app(
            "d-galois", app_name, tiny_edges, num_hosts=4, policy=policy
        )
        proc = run_app(
            "d-galois",
            app_name,
            tiny_edges,
            num_hosts=4,
            policy=policy,
            runtime="process",
            workers=2,
        )
        assert_identical(sim, proc, key)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_worker_count_never_changes_the_answer(self, small_rmat, workers):
        sim = run_app("d-galois", "pr", small_rmat, num_hosts=4, policy="oec")
        proc = run_app(
            "d-galois",
            "pr",
            small_rmat,
            num_hosts=4,
            policy="oec",
            runtime="process",
            workers=workers,
        )
        assert_identical(sim, proc, "rank")

    def test_single_host_degenerate_cluster(self, tiny_edges):
        sim = run_app("d-galois", "bfs", tiny_edges, num_hosts=1)
        proc = run_app(
            "d-galois", "bfs", tiny_edges, num_hosts=1, runtime="process"
        )
        assert_identical(sim, proc, "dist")

    def test_per_field_comm_mode(self, tiny_edges):
        """--no-aggregation composes with --runtime process."""
        sim = run_app(
            "d-galois", "bfs", tiny_edges, num_hosts=4, aggregate_comm=False
        )
        proc = run_app(
            "d-galois",
            "bfs",
            tiny_edges,
            num_hosts=4,
            aggregate_comm=False,
            runtime="process",
            workers=2,
        )
        assert_identical(sim, proc, "dist")

    def test_other_engines(self, tiny_edges):
        for system in ("d-ligra", "d-hybrid"):
            sim = run_app(system, "bfs", tiny_edges, num_hosts=4)
            proc = run_app(
                system,
                "bfs",
                tiny_edges,
                num_hosts=4,
                runtime="process",
                workers=2,
            )
            assert_identical(sim, proc, "dist")

    def test_transient_faults_still_converge_to_the_truth(self, tiny_edges):
        """Drop/corrupt/dup plans run under the process runtime; the
        reliability layer recovers, so the answer matches the clean run.
        (Recovery *accounting* is runtime-specific by design: worker
        fleets draw fault fates in per-worker order.)"""
        clean = run_app("d-galois", "bfs", tiny_edges, num_hosts=4)
        faulty = run_app(
            "d-galois",
            "bfs",
            tiny_edges,
            num_hosts=4,
            runtime="process",
            workers=2,
            resilience=ResilienceConfig(
                plan=FaultPlan(
                    drop_rate=0.05,
                    corrupt_rate=0.05,
                    duplicate_rate=0.05,
                    seed=11,
                )
            ),
        )
        assert faulty.converged
        assert faulty.recovery_bytes > 0  # the plan actually fired
        np.testing.assert_array_equal(
            faulty.executor.gather_result("dist"),
            clean.executor.gather_result("dist"),
        )


class TestLifecycle:
    def test_resume_after_max_rounds(self, tiny_edges):
        sim = run_app("d-galois", "bfs", tiny_edges, num_hosts=4)
        ex = build_executor(tiny_edges, runtime="process", workers=2)
        partial = ex.run(max_rounds=2)
        assert not partial.converged
        resumed = ex.run()
        assert resumed.converged
        assert resumed.num_rounds == sim.num_rounds
        assert resumed.total_time == sim.total_time
        np.testing.assert_array_equal(
            ex.gather_result("dist"), sim.executor.gather_result("dist")
        )

    def test_converged_executor_is_single_use(self, tiny_edges):
        ex = build_executor(tiny_edges, runtime="process", workers=2)
        ex.run()
        with pytest.raises(ExecutionError, match="already converged"):
            ex.run()

    def test_wall_clock_and_runtime_are_reported(self, tiny_edges):
        result = run_app(
            "d-galois",
            "bfs",
            tiny_edges,
            num_hosts=4,
            runtime="process",
            workers=2,
        )
        assert result.runtime == "process"
        assert result.wall_rounds_s > 0.0
        import json

        payload = json.loads(result.to_json())
        assert payload["measured"]["runtime"] == "process"
        assert payload["measured"]["wall_rounds_s"] == result.wall_rounds_s

    def test_simulated_runs_report_their_runtime_too(self, tiny_edges):
        result = run_app("d-galois", "bfs", tiny_edges, num_hosts=4)
        assert result.runtime == "simulated"

    def test_metrics_reconcile_across_runtimes(self, tiny_edges):
        sim_obs, proc_obs = Observability(), Observability()
        sim = run_app(
            "d-galois",
            "bfs",
            tiny_edges,
            num_hosts=4,
            observability=sim_obs,
        )
        proc = run_app(
            "d-galois",
            "bfs",
            tiny_edges,
            num_hosts=4,
            observability=proc_obs,
            runtime="process",
            workers=2,
        )
        for name in ("bytes_sent_total", "bytes_recv_total", "messages_total"):
            assert proc_obs.metrics.counter_total(
                name
            ) == sim_obs.metrics.counter_total(name)
        assert proc_obs.metrics.counter_total("bytes_sent_total") == (
            proc.communication_volume + proc.construction_bytes
        )
        assert proc.mode_counts == sim.mode_counts


class TestGuards:
    def test_unknown_runtime(self, tiny_edges):
        with pytest.raises(ExecutionError, match="unknown runtime"):
            build_executor(tiny_edges, runtime="quantum")

    def test_workers_require_the_process_runtime(self, tiny_edges):
        with pytest.raises(ExecutionError, match="workers only applies"):
            build_executor(tiny_edges, workers=2)

    def test_sanitizer_is_simulated_only(self, tiny_edges):
        with pytest.raises(ExecutionError, match="sanitizer requires"):
            build_executor(tiny_edges, runtime="process", sanitize=True)

    def test_crash_plans_are_simulated_only(self, tiny_edges):
        config = ResilienceConfig(
            plan=FaultPlan(crashes=(CrashFault(2, 1),), seed=1)
        )
        with pytest.raises(ExecutionError, match="crash-fault plans require"):
            build_executor(tiny_edges, runtime="process", resilience=config)

    def test_checkpoints_are_simulated_only(self, tiny_edges):
        config = ResilienceConfig(checkpoint_every=2)
        with pytest.raises(
            ExecutionError, match="periodic checkpoints require"
        ):
            build_executor(tiny_edges, runtime="process", resilience=config)

    def test_repartition_is_simulated_only(self, tiny_edges):
        ex = build_executor(tiny_edges, runtime="process", workers=2)
        ex.run(max_rounds=1)
        prep = prepare_input("bfs", tiny_edges)
        other = make_partitioner("oec").partition(prep.edges, 4)
        with pytest.raises(
            ExecutionError, match="repartitioning requires"
        ):
            ex.repartition(other)
