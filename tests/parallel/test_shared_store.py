"""Shared-memory store lifecycle: create/attach/detach/unlink, no leaks."""

from __future__ import annotations

import gc
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.parallel.shm import SharedArrayStore, SharedGraphStore
from repro.partition import make_partitioner
from repro.systems import prepare_input

SHM_DIR = Path("/dev/shm")

pytestmark = pytest.mark.skipif(
    not SHM_DIR.is_dir(), reason="shared-memory stores need a POSIX /dev/shm"
)


def shm_segments() -> set:
    """Names currently present in /dev/shm (other tenants included)."""
    return set(os.listdir(SHM_DIR))


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this module must leave /dev/shm as it found it."""
    before = shm_segments()
    yield
    gc.collect()
    leaked = shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


class TestSharedArrayStore:
    def test_create_attach_roundtrip(self):
        arrays = {
            "a": np.arange(100, dtype=np.uint32),
            "b": np.linspace(0.0, 1.0, 37),
            "mask": np.array([True, False, True]),
        }
        creator = SharedArrayStore.create(arrays)
        try:
            attached = SharedArrayStore.attach(creator.manifest)
            for name, arr in arrays.items():
                np.testing.assert_array_equal(attached.views[name], arr)
            attached.close()
        finally:
            creator.release()

    def test_attacher_sees_creator_writes_zero_copy(self):
        creator = SharedArrayStore.create(
            {"x": np.zeros(8, dtype=np.int64)}
        )
        try:
            attached = SharedArrayStore.attach(creator.manifest)
            creator.views["x"][3] = 42
            assert attached.views["x"][3] == 42  # same physical pages
            attached.close()
        finally:
            creator.release()

    def test_release_unlinks_the_segment(self):
        creator = SharedArrayStore.create({"x": np.ones(4)})
        name = creator.manifest.shm_name
        assert name in shm_segments()
        creator.release()
        assert name not in shm_segments()

    def test_attach_after_unlink_raises(self):
        creator = SharedArrayStore.create({"x": np.ones(4)})
        manifest = creator.manifest
        creator.release()
        with pytest.raises(ExecutionError, match="gone"):
            SharedArrayStore.attach(manifest)

    def test_finalizer_unlinks_on_garbage_collection(self):
        creator = SharedArrayStore.create({"x": np.ones(16)})
        name = creator.manifest.shm_name
        del creator
        gc.collect()
        assert name not in shm_segments()

    def test_attacher_close_does_not_unlink(self):
        creator = SharedArrayStore.create({"x": np.ones(4)})
        try:
            attached = SharedArrayStore.attach(creator.manifest)
            attached.close()
            assert creator.manifest.shm_name in shm_segments()
        finally:
            creator.release()

    def test_release_is_idempotent(self):
        creator = SharedArrayStore.create({"x": np.ones(4)})
        creator.release()
        creator.release()


class TestSharedGraphStore:
    def _partitioned(self, edges, policy="cvc", hosts=4):
        prep = prepare_input("bfs", edges)
        return make_partitioner(policy).partition(prep.edges, hosts)

    def test_export_attach_rebuilds_identical_graph(self, small_rmat):
        partitioned = self._partitioned(small_rmat)
        store = SharedGraphStore.export(partitioned)
        try:
            attached = SharedGraphStore.attach(store.manifest)
            rebuilt = attached.build_partitioned()
            assert rebuilt.num_global_nodes == partitioned.num_global_nodes
            assert rebuilt.num_global_edges == partitioned.num_global_edges
            assert rebuilt.policy_name == partitioned.policy_name
            np.testing.assert_array_equal(
                rebuilt.master_host, partitioned.master_host
            )
            for mine, theirs in zip(
                rebuilt.partitions, partitioned.partitions
            ):
                assert mine.num_masters == theirs.num_masters
                np.testing.assert_array_equal(
                    mine.graph.indptr, theirs.graph.indptr
                )
                np.testing.assert_array_equal(
                    mine.graph.indices, theirs.graph.indices
                )
                np.testing.assert_array_equal(
                    mine.local_to_global, theirs.local_to_global
                )
                np.testing.assert_array_equal(
                    mine.mirror_master_host, theirs.mirror_master_host
                )
            attached.close()
        finally:
            store.release()

    def test_weighted_graph_ships_weights(self, small_rmat):
        prep = prepare_input("sssp", small_rmat)
        partitioned = make_partitioner("oec").partition(prep.edges, 2)
        store = SharedGraphStore.export(partitioned)
        try:
            # The attached store must stay referenced while its views are
            # in use: a view's lifetime is bounded by its store's.
            attached = SharedGraphStore.attach(store.manifest)
            rebuilt = attached.build_partitioned()
            for mine, theirs in zip(
                rebuilt.partitions, partitioned.partitions
            ):
                assert (mine.graph.weights is None) == (
                    theirs.graph.weights is None
                )
                if theirs.graph.weights is not None:
                    np.testing.assert_array_equal(
                        mine.graph.weights, theirs.graph.weights
                    )
            attached.close()
        finally:
            store.release()


class TestCrashSafety:
    """The unlink guarantee must hold when processes die badly."""

    def test_no_leak_after_attached_worker_is_killed(self, small_rmat):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        partitioned = TestSharedGraphStore()._partitioned(small_rmat, hosts=2)
        store = SharedGraphStore.export(partitioned)
        name = store.manifest.store.shm_name

        proc = ctx.Process(
            target=_attach_and_hang, args=(store.manifest,), daemon=True
        )
        proc.start()
        proc.join(timeout=0.2)  # still hanging
        proc.kill()
        proc.join(timeout=10)
        assert proc.exitcode is not None
        store.release()
        assert name not in shm_segments()

    def test_keyboard_interrupt_in_creator_leaves_shm_clean(self):
        script = textwrap.dedent(
            """
            import numpy as np
            from repro.parallel.shm import SharedArrayStore

            store = SharedArrayStore.create({"x": np.ones(1024)})
            print(store.manifest.shm_name, flush=True)
            raise KeyboardInterrupt
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
            env={**os.environ, "PYTHONPATH": _src_path()},
        )
        name = proc.stdout.strip()
        assert name, proc.stderr
        assert proc.returncode != 0  # the interrupt propagated
        # The finalizer ran during interpreter shutdown: segment gone,
        # and the resource tracker had nothing left to complain about.
        assert name not in shm_segments()
        assert "resource_tracker" not in proc.stderr, proc.stderr

    def test_normal_exit_leaves_no_resource_tracker_warnings(self):
        script = textwrap.dedent(
            """
            import numpy as np
            from repro.parallel.shm import SharedArrayStore

            store = SharedArrayStore.create({"x": np.arange(64)})
            attached = SharedArrayStore.attach(store.manifest)
            attached.close()
            store.release()
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
            env={**os.environ, "PYTHONPATH": _src_path()},
        )
        assert proc.returncode == 0, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr


def _attach_and_hang(manifest):  # pragma: no cover - runs in a child
    import time

    SharedGraphStore.attach(manifest)
    time.sleep(300)


def _src_path() -> str:
    return str(Path(__file__).resolve().parents[2] / "src")
