"""PipeTransport: the in-process transport's contract over real pipes.

These tests exercise the inter-process surface directly — framing,
phase markers, delivery order, the per-receiving-host buffer isolation
— and the fault-injection satellite: drop/dup/corrupt across a real
process boundary must reproduce the exact recovery accounting the
simulated :class:`FaultyTransport` produces.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.errors import HostCrashedError, TransportError
from repro.parallel.pipes import PipeFabric, PipeTransport
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.transport import FaultyTransport

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX multiprocessing required"
)


def _ctx():
    return multiprocessing.get_context("fork")


# ---------------------------------------------------------------------------
# Child-process bodies (module-level for clean fork semantics).
# ---------------------------------------------------------------------------


def _echo_child(fabric, results):  # pragma: no cover - runs in a child
    """Host 1: receive a phase from host 0, send it back reversed."""
    transport = PipeTransport(fabric, receive_timeout_s=30)
    got = transport.receive_all(1)
    for _, payload in got:
        transport.send(1, 0, payload[::-1])
    transport.finish_phase(1)
    results.put([(sender, bytes(p)) for sender, p in got])


def _interleaved_child(fabric, barrier):  # pragma: no cover - child
    """Hosts 1 and 2 share one transport; send interleaved to host 0."""
    transport = PipeTransport(fabric, receive_timeout_s=30)
    transport.send(2, 0, b"from-2-first")
    transport.send(1, 0, b"from-1")
    transport.send(2, 0, b"from-2-second")
    transport.finish_phase(1)
    transport.finish_phase(2)
    barrier.wait(timeout=30)


def _faulty_receiver_child(fabric, plan, results):  # pragma: no cover
    """Host 1 behind its own reliability layer; reports what survived."""
    pipe = PipeTransport(fabric, receive_timeout_s=30)
    wrapper = FaultyTransport(2, FaultInjector(plan), inner=pipe)
    payloads = wrapper.receive_all(1)
    results.put(
        {
            "payloads": [(sender, bytes(p)) for sender, p in payloads],
            "checksum_failures": wrapper.faults.checksum_failures,
            "duplicates_discarded": wrapper.faults.duplicates_discarded,
        }
    )


class TestCrossProcess:
    def test_send_receive_echo_roundtrip(self):
        ctx = _ctx()
        fabric = PipeFabric(2, ctx)
        results = ctx.Queue()
        child = ctx.Process(
            target=_echo_child, args=(fabric, results), daemon=True
        )
        child.start()
        transport = PipeTransport(fabric, receive_timeout_s=30)
        messages = [b"alpha", b"beta", b"gamma"]
        for message in messages:
            transport.send(0, 1, message)
        transport.finish_phase(0)
        echoed = transport.receive_all(0)
        child_saw = results.get(timeout=30)
        child.join(timeout=30)
        assert child_saw == [(0, m) for m in messages]
        assert echoed == [(1, m[::-1]) for m in messages]
        fabric.shutdown()

    def test_delivery_is_ascending_sender_fifo(self):
        """The simulated mailbox order, reproduced across processes."""
        ctx = _ctx()
        fabric = PipeFabric(3, ctx)
        barrier = ctx.Barrier(2)
        child = ctx.Process(
            target=_interleaved_child, args=(fabric, barrier), daemon=True
        )
        child.start()
        transport = PipeTransport(fabric, receive_timeout_s=30)
        transport.finish_phase(0)
        delivered = transport.receive_all(0)
        barrier.wait(timeout=30)
        child.join(timeout=30)
        assert delivered == [
            (1, b"from-1"),
            (2, b"from-2-first"),
            (2, b"from-2-second"),
        ]
        fabric.shutdown()


class TestPhaseBuffers:
    """In-process protocol checks (the queues work fine single-process)."""

    def test_markers_are_isolated_per_receiving_host(self):
        """Regression: a worker owning hosts 1 and 2 on one transport
        must not let host 2's receive consume a future-phase marker that
        was drained from host 1's inbox (the marker-theft race)."""
        ctx = _ctx()
        fabric = PipeFabric(3, ctx)
        sender = PipeTransport(fabric, receive_timeout_s=5)
        owner = PipeTransport(fabric, receive_timeout_s=5)
        # Every host finishes phases 0 and 1 up front (the BSP pattern);
        # host 0 also ships one phase-0 frame to host 1.
        sender.send(0, 1, b"p0")
        sender.finish_phase(0)
        sender.finish_phase(0)
        for phase in range(2):
            owner.finish_phase(1)
            owner.finish_phase(2)
        # Drain host 1's whole inbox into the phase buffers, so its
        # phase-1 markers are already buffered before host 2 receives
        # phase 1 — the exact state the shared-buffer race corrupted.
        deadline = time.monotonic() + 5
        while owner.pending(1) < 1:
            assert time.monotonic() < deadline, "frame never arrived"
            time.sleep(0.01)
        time.sleep(0.2)  # let the phase-1 markers land in the buffer too
        assert owner.pending(1) == 1
        assert owner.receive_all(1) == [(0, b"p0")]
        assert owner.receive_all(2) == []
        assert owner.receive_all(2) == []  # must not steal host 1's markers
        assert owner.receive_all(1) == []  # host 1's phase-1 markers intact
        fabric.shutdown()

    def test_pending_counts_only_the_hosts_own_frames(self):
        ctx = _ctx()
        fabric = PipeFabric(3, ctx)
        sender = PipeTransport(fabric)
        owner = PipeTransport(fabric)
        sender.send(0, 1, b"x")
        sender.send(0, 1, b"y")
        sender.send(0, 2, b"z")
        deadline = time.monotonic() + 5
        while owner.pending(1) < 2 or owner.pending(2) < 1:
            assert time.monotonic() < deadline, "frames never arrived"
            time.sleep(0.01)
        assert owner.pending(1) == 2
        assert owner.pending(2) == 1
        fabric.shutdown()

    def test_end_round_rejects_undelivered_frames(self):
        ctx = _ctx()
        fabric = PipeFabric(2, ctx)
        sender = PipeTransport(fabric)
        receiver = PipeTransport(fabric)
        sender.send(0, 1, b"stranded")
        # pending() is non-blocking: poll until the queue feeder thread
        # has actually delivered the frame into the phase buffer.
        deadline = time.monotonic() + 5
        while receiver.pending(1) < 1:
            assert time.monotonic() < deadline, "frame never arrived"
            time.sleep(0.01)
        with pytest.raises(TransportError, match="undelivered"):
            receiver.end_round()
        fabric.shutdown()

    def test_guards(self):
        ctx = _ctx()
        fabric = PipeFabric(2, ctx)
        transport = PipeTransport(fabric)
        with pytest.raises(TransportError, match="out of range"):
            transport.send(0, 7, b"x")
        with pytest.raises(TransportError, match="itself"):
            transport.send(0, 0, b"x")
        with pytest.raises(TransportError, match="bytes-like"):
            transport.send(0, 1, "text")
        transport.crash(1)
        assert transport.is_crashed(1)
        assert transport.crashed_hosts == frozenset({1})
        with pytest.raises(HostCrashedError):
            transport.send(0, 1, b"x")
        fabric.shutdown()

    def test_receive_timeout_names_a_dead_cluster(self):
        ctx = _ctx()
        fabric = PipeFabric(2, ctx)
        transport = PipeTransport(fabric, receive_timeout_s=0.05)
        with pytest.raises(TransportError, match="timed out"):
            transport.receive_all(0)
        fabric.shutdown()


class TestFaultInjectionAcrossProcesses:
    """Satellite: transient faults across a real process boundary must
    reproduce the simulated FaultyTransport's recovery accounting."""

    PLAN = FaultPlan(
        drop_rate=0.15, corrupt_rate=0.1, duplicate_rate=0.1, seed=7
    )
    MESSAGES = [f"payload-{i}".encode() * 3 for i in range(60)]

    def _reference(self):
        """The same traffic through the all-in-process stack."""
        wrapper = FaultyTransport(2, FaultInjector(self.PLAN))
        for message in self.MESSAGES:
            wrapper.send(0, 1, message)
        payloads = wrapper.receive_all(1)
        return wrapper, payloads

    def test_recovery_accounting_matches_simulated(self):
        ref_wrapper, ref_payloads = self._reference()

        ctx = _ctx()
        fabric = PipeFabric(2, ctx)
        results = ctx.Queue()
        child = ctx.Process(
            target=_faulty_receiver_child,
            args=(fabric, self.PLAN, results),
            daemon=True,
        )
        child.start()
        pipe = PipeTransport(fabric, receive_timeout_s=30)
        wrapper = FaultyTransport(2, FaultInjector(self.PLAN), inner=pipe)
        for message in self.MESSAGES:
            wrapper.send(0, 1, message)
        pipe.finish_phase(0)
        report = results.get(timeout=30)
        child.join(timeout=30)

        # Send-side accounting: identical injector draws, identical cost.
        assert ref_wrapper.faults.total_injected > 0  # the test is live
        assert wrapper.faults.dropped == ref_wrapper.faults.dropped
        assert wrapper.faults.corrupted == ref_wrapper.faults.corrupted
        assert wrapper.faults.duplicated == ref_wrapper.faults.duplicated
        assert wrapper.faults.fault_bytes == ref_wrapper.faults.fault_bytes
        assert (
            wrapper.faults.framing_bytes == ref_wrapper.faults.framing_bytes
        )
        # Receive-side accounting, detected across the process boundary.
        assert (
            report["checksum_failures"]
            == ref_wrapper.faults.checksum_failures
        )
        assert (
            report["duplicates_discarded"]
            == ref_wrapper.faults.duplicates_discarded
        )
        # The reliability layer delivered the clean sequence either way.
        assert report["payloads"] == [
            (sender, bytes(p)) for sender, p in ref_payloads
        ]
        assert [p for _, p in report["payloads"]] == self.MESSAGES
        # Wire bytes match: every transmission was recorded symmetrically.
        recorded = pipe.stats.take()
        pipe_bytes = sum(
            nbytes
            for per_src in recorded.values()
            for bucket in per_src.values()
            for _, nbytes in bucket
        )
        assert pipe_bytes == ref_wrapper.stats.total_bytes
        fabric.shutdown()
