"""CLI tests for the observability surface: --trace/--metrics/--json,
--per-round, and the `repro trace` subcommand."""

import json

import pytest

from repro.cli import main

RUN = [
    "run",
    "--system", "d-galois",
    "--app", "bfs",
    "--workload", "rmat22s",
    "--hosts", "4",
    "--scale-delta", "-4",
]


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestTraceAndMetricsFlags:
    def test_trace_flag_writes_valid_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        code, out, err = run_cli(RUN + ["--trace", str(trace)], capsys)
        assert code == 0
        assert f"trace written to {trace}" in err
        doc = json.loads(trace.read_text())
        events = doc["traceEvents"]
        process_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        # One process per simulated host, plus the driver.
        assert process_names == {"driver"} | {f"host {h}" for h in range(4)}
        assert any(
            e["ph"] == "X" and e["name"] == "round" for e in events
        )
        assert doc["otherData"]["app"] == "bfs"

    def test_metrics_flag_reconciles_with_reported_volume(
        self, tmp_path, capsys
    ):
        metrics = tmp_path / "metrics.json"
        code, out, err = run_cli(
            RUN + ["--metrics", str(metrics), "--json"], capsys
        )
        assert code == 0
        payload = json.loads(out)
        dumped = json.loads(metrics.read_text())
        sent = sum(
            v
            for k, v in dumped["counters"].items()
            if k.startswith("bytes_sent_total")
        )
        comm_bytes = sum(r["comm_bytes"] for r in payload["rounds"])
        assert sent == comm_bytes + payload["construction"]["bytes"]

    def test_metrics_csv_by_suffix(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.csv"
        code, _, _ = run_cli(RUN + ["--metrics", str(metrics)], capsys)
        assert code == 0
        assert metrics.read_text().startswith("kind,name,labels,stat,value")

    def test_untraced_run_has_no_observability_files_or_noise(
        self, tmp_path, capsys
    ):
        code, out, err = run_cli(RUN, capsys)
        assert code == 0
        assert "trace written" not in err
        assert "run summary" in out


class TestJsonFlag:
    def test_json_emits_full_run_result(self, capsys):
        code, out, _ = run_cli(RUN + ["--json"], capsys)
        assert code == 0
        payload = json.loads(out)  # stdout is exactly one JSON document
        assert payload["summary"]["system"] == "d-galois"
        assert payload["summary"]["converged"] is True
        assert "resilience" in payload
        assert "metrics" in payload
        assert len(payload["rounds"]) == payload["summary"]["rounds"]

    def test_json_includes_metrics_when_observed(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        code, out, _ = run_cli(
            RUN + ["--json", "--metrics", str(metrics)], capsys
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["metrics"]["counters"]["rounds_total"] == (
            payload["summary"]["rounds"]
        )

    def test_json_includes_resilience_accounting(self, capsys):
        code, out, _ = run_cli(
            RUN + ["--json", "--checkpoint-every", "2"], capsys
        )
        payload = json.loads(out)
        assert payload["resilience"]["num_checkpoints"] >= 1


class TestPerRoundFlag:
    def test_per_round_table_printed(self, capsys):
        code, out, _ = run_cli(RUN + ["--per-round"], capsys)
        assert code == 0
        assert "per-round breakdown" in out
        assert "comp_max_ms" in out


class TestTraceSubcommand:
    @pytest.fixture()
    def trace_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        run_cli(RUN + ["--trace", str(trace)], capsys)
        return trace

    def test_summarizes_exported_trace(self, trace_file, capsys):
        code, out, _ = run_cli(["trace", str(trace_file)], capsys)
        assert code == 0
        assert "per-host busy/idle" in out
        assert "bytes by sync phase" in out
        assert "top spans by total time" in out
        assert "host 0" in out and "host 3" in out
        assert "reduce:dist" in out

    def test_top_limits_span_families(self, trace_file, capsys):
        code, out, _ = run_cli(["trace", str(trace_file), "--top", "1"], capsys)
        assert code == 0
        section = out.split("top spans by total time")[1]
        rows = [line for line in section.strip().splitlines()[2:] if line]
        assert len(rows) == 1

    def test_bad_top_rejected(self, trace_file, capsys):
        with pytest.raises(SystemExit):
            main(["trace", str(trace_file), "--top", "0"])

    def test_missing_file_is_parser_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["trace", str(tmp_path / "absent.json")])

    def test_invalid_json_is_parser_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(SystemExit):
            main(["trace", str(bad)])
