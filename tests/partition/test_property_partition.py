"""Property-based tests (hypothesis) for partitioners.

For arbitrary random graphs, host counts, and policies, every built
partition must satisfy the full invariant set of
:func:`repro.partition.metrics.verify_partition` — this is the load-bearing
correctness property the whole substrate rests on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.edgelist import EdgeList
from repro.partition import PARTITIONER_BY_NAME, make_partitioner
from repro.partition.metrics import verify_partition


@st.composite
def random_graphs(draw):
    num_nodes = draw(st.integers(min_value=1, max_value=60))
    num_edges = draw(st.integers(min_value=0, max_value=200))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges, dtype=np.uint32)
    dst = rng.integers(0, num_nodes, size=num_edges, dtype=np.uint32)
    return EdgeList(num_nodes, src, dst).deduplicate()


@given(
    edges=random_graphs(),
    num_hosts=st.integers(min_value=1, max_value=7),
    policy=st.sampled_from(sorted(PARTITIONER_BY_NAME)),
)
@settings(max_examples=60, deadline=None)
def test_any_policy_builds_valid_partition(edges, num_hosts, policy):
    partitioned = make_partitioner(policy).partition(edges, num_hosts)
    assert verify_partition(partitioned) == []


@given(
    edges=random_graphs(),
    num_hosts=st.integers(min_value=1, max_value=7),
    policy=st.sampled_from(sorted(PARTITIONER_BY_NAME)),
)
@settings(max_examples=40, deadline=None)
def test_proxy_counts_consistent(edges, num_hosts, policy):
    partitioned = make_partitioner(policy).partition(edges, num_hosts)
    # Exactly one master per global node.
    assert (
        sum(p.num_masters for p in partitioned.partitions) == edges.num_nodes
    )
    # Replication factor equals total proxies / nodes.
    total_proxies = sum(p.num_nodes for p in partitioned.partitions)
    if edges.num_nodes:
        assert partitioned.replication_factor() == (
            total_proxies / edges.num_nodes
        )


@given(
    edges=random_graphs(),
    num_hosts=st.integers(min_value=1, max_value=7),
)
@settings(max_examples=40, deadline=None)
def test_local_edges_preserve_global_endpoints(edges, num_hosts):
    """Translating local edges back to global IDs recovers the input."""
    partitioned = make_partitioner("cvc").partition(edges, num_hosts)
    recovered = []
    for part in partitioned.partitions:
        src, dst = part.graph.edges()
        recovered.extend(
            zip(
                part.local_to_global[src].tolist(),
                part.local_to_global[dst].tolist(),
            )
        )
    expected = sorted(zip(edges.src.tolist(), edges.dst.tolist()))
    assert sorted(recovered) == expected
