"""Unit tests for partitioned-graph construction (repro.partition.base)."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph.edgelist import EdgeList
from repro.partition.base import (
    EdgeAssignment,
    build_partitioned_graph,
    _chunk_boundaries,
)
from repro.partition.edge_cut import OutgoingEdgeCut
from repro.partition.strategy import PartitionStrategy


class TestEdgeAssignment:
    def test_rejects_zero_hosts(self):
        with pytest.raises(PartitionError):
            EdgeAssignment(
                0, np.array([0]), np.array([], dtype=np.int32)
            )

    def test_rejects_out_of_range_master(self):
        with pytest.raises(PartitionError):
            EdgeAssignment(2, np.array([0, 2]), np.array([], dtype=np.int32))

    def test_rejects_out_of_range_edge_host(self):
        with pytest.raises(PartitionError):
            EdgeAssignment(2, np.array([0, 1]), np.array([-1]))

    def test_rejects_bad_extra_proxies_length(self):
        with pytest.raises(PartitionError):
            EdgeAssignment(
                2,
                np.array([0, 1]),
                np.array([], dtype=np.int32),
                extra_proxies=[np.array([], np.uint32)],
            )


class TestChunkBoundaries:
    def test_covers_all_items(self):
        b = _chunk_boundaries(np.array([1, 1, 1, 1]), 2)
        assert b[0] == 0 and b[-1] == 4
        assert np.all(np.diff(b) >= 0)

    def test_balances_weight(self):
        weights = np.array([10, 1, 1, 1, 1, 1, 1, 1, 1, 1])
        b = _chunk_boundaries(weights, 2)
        # The heavy first node alone roughly balances the rest.
        assert b[1] <= 5

    def test_more_chunks_than_items(self):
        b = _chunk_boundaries(np.array([1, 1]), 5)
        assert b[0] == 0 and b[-1] == 2
        assert len(b) == 6

    def test_single_chunk(self):
        b = _chunk_boundaries(np.array([3, 1, 4]), 1)
        assert b.tolist() == [0, 3]

    def test_zero_chunks_rejected(self):
        with pytest.raises(PartitionError):
            _chunk_boundaries(np.array([1]), 0)


class TestBuildPartitionedGraph:
    def test_figure2_oec_example(self, tiny_edges):
        """Reproduce Figure 2's two-host OEC partition structure."""
        partitioned = OutgoingEdgeCut().partition(tiny_edges, 2)
        assert partitioned.num_hosts == 2
        total_masters = sum(p.num_masters for p in partitioned.partitions)
        assert total_masters == 10
        # Edge conservation.
        total_edges = sum(p.graph.num_edges for p in partitioned.partitions)
        assert total_edges == tiny_edges.num_edges
        # OEC: mirrors never have outgoing edges.
        for part in partitioned.partitions:
            out_deg = part.graph.out_degree()
            assert not np.any(out_deg[part.num_masters :] > 0)

    def test_local_global_roundtrip(self, tiny_edges):
        partitioned = OutgoingEdgeCut().partition(tiny_edges, 2)
        for part in partitioned.partitions:
            for lid in range(part.num_nodes):
                gid = part.to_global(lid)
                assert part.to_local(gid) == lid
                assert part.has_proxy(gid)

    def test_masters_first_ordering(self, tiny_edges):
        partitioned = OutgoingEdgeCut().partition(tiny_edges, 2)
        for part in partitioned.partitions:
            for lid in range(part.num_nodes):
                assert part.is_master(lid) == (lid < part.num_masters)

    def test_master_locals_and_mirror_locals(self, tiny_edges):
        partitioned = OutgoingEdgeCut().partition(tiny_edges, 3)
        for part in partitioned.partitions:
            assert len(part.master_locals()) == part.num_masters
            assert len(part.mirror_locals()) == part.num_mirrors
            assert part.num_masters + part.num_mirrors == part.num_nodes

    def test_mirror_master_host_consistent(self, tiny_edges):
        partitioned = OutgoingEdgeCut().partition(tiny_edges, 3)
        for part in partitioned.partitions:
            for lid in part.mirror_locals():
                owner = part.master_host_of_mirror(int(lid))
                gid = part.to_global(int(lid))
                assert owner == int(partitioned.master_host[gid])
                assert owner != part.host

    def test_master_host_of_mirror_rejects_master(self, tiny_edges):
        partitioned = OutgoingEdgeCut().partition(tiny_edges, 2)
        part = partitioned.partitions[0]
        with pytest.raises(IndexError):
            part.master_host_of_mirror(0)

    def test_to_local_unknown_gid_raises(self, tiny_edges):
        partitioned = OutgoingEdgeCut().partition(tiny_edges, 2)
        part = partitioned.partitions[0]
        missing = [
            g for g in range(tiny_edges.num_nodes) if not part.has_proxy(g)
        ]
        if missing:
            with pytest.raises(KeyError):
                part.to_local(missing[0])

    def test_isolated_nodes_get_masters(self):
        # Node 3 has no edges but must still be mastered somewhere.
        edges = EdgeList(
            4, np.array([0, 1], np.uint32), np.array([1, 2], np.uint32)
        )
        partitioned = OutgoingEdgeCut().partition(edges, 2)
        total_masters = sum(p.num_masters for p in partitioned.partitions)
        assert total_masters == 4

    def test_replication_factor_single_host_is_one(self, tiny_edges):
        partitioned = OutgoingEdgeCut().partition(tiny_edges, 1)
        assert partitioned.replication_factor() == pytest.approx(1.0)

    def test_replication_factor_grows_with_hosts(self, small_rmat):
        rep2 = OutgoingEdgeCut().partition(small_rmat, 2).replication_factor()
        rep8 = OutgoingEdgeCut().partition(small_rmat, 8).replication_factor()
        assert rep8 > rep2 >= 1.0

    def test_mismatched_assignment_sizes_rejected(self, tiny_edges):
        assignment = EdgeAssignment(
            2,
            np.zeros(5, dtype=np.int32),  # wrong node count
            np.zeros(tiny_edges.num_edges, dtype=np.int32),
        )
        with pytest.raises(PartitionError):
            build_partitioned_graph(
                tiny_edges, assignment, PartitionStrategy.OEC, "oec"
            )

    def test_zero_hosts_rejected(self, tiny_edges):
        with pytest.raises(PartitionError):
            OutgoingEdgeCut().partition(tiny_edges, 0)
