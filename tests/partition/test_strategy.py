"""Unit tests for repro.partition.strategy legality rules (§3.1)."""

import pytest

from repro.errors import StrategyError
from repro.partition.strategy import (
    DataFlow,
    OperatorClass,
    PartitionStrategy,
    check_strategy_legal,
)


class TestPushLegality:
    @pytest.mark.parametrize("strategy", list(PartitionStrategy))
    def test_reduction_single_value_push_always_legal(self, strategy):
        check_strategy_legal(
            strategy, OperatorClass.PUSH, is_reduction=True
        )  # must not raise

    @pytest.mark.parametrize(
        "strategy",
        [PartitionStrategy.UVC, PartitionStrategy.CVC, PartitionStrategy.IEC],
    )
    def test_non_single_value_push_requires_oec(self, strategy):
        with pytest.raises(StrategyError):
            check_strategy_legal(
                strategy,
                OperatorClass.PUSH,
                is_reduction=True,
                single_value_push=False,
            )

    def test_oec_allows_non_single_value_push(self):
        check_strategy_legal(
            PartitionStrategy.OEC,
            OperatorClass.PUSH,
            is_reduction=True,
            single_value_push=False,
        )

    @pytest.mark.parametrize(
        "strategy",
        [PartitionStrategy.UVC, PartitionStrategy.CVC, PartitionStrategy.IEC],
    )
    def test_non_reduction_push_requires_oec(self, strategy):
        with pytest.raises(StrategyError):
            check_strategy_legal(
                strategy, OperatorClass.PUSH, is_reduction=False
            )


class TestPullLegality:
    @pytest.mark.parametrize("strategy", list(PartitionStrategy))
    def test_reduction_pull_always_legal(self, strategy):
        check_strategy_legal(strategy, OperatorClass.PULL, is_reduction=True)

    @pytest.mark.parametrize(
        "strategy",
        [PartitionStrategy.UVC, PartitionStrategy.CVC, PartitionStrategy.OEC],
    )
    def test_non_reduction_pull_requires_iec(self, strategy):
        with pytest.raises(StrategyError):
            check_strategy_legal(
                strategy, OperatorClass.PULL, is_reduction=False
            )

    def test_iec_allows_non_reduction_pull(self):
        check_strategy_legal(
            PartitionStrategy.IEC, OperatorClass.PULL, is_reduction=False
        )


class TestEnums:
    def test_strategy_values(self):
        assert PartitionStrategy("oec") is PartitionStrategy.OEC

    def test_dataflow_single_member(self):
        assert DataFlow.SOURCE_TO_DESTINATION.value == "src->dst"
