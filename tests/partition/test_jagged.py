"""Tests for the jagged 2-D vertex cut."""

import numpy as np
import pytest

from repro.graph.generators import web_like
from repro.partition import make_partitioner
from repro.partition.cartesian import CartesianVertexCut, grid_shape
from repro.partition.jagged import JaggedVertexCut
from repro.partition.metrics import compute_metrics, verify_partition
from repro.systems import prepare_input, run_app
from tests.conftest import reference_bfs


@pytest.mark.parametrize("num_hosts", [1, 2, 4, 6, 9])
def test_invariants_hold(small_rmat, num_hosts):
    partitioned = JaggedVertexCut().partition(small_rmat, num_hosts)
    assert verify_partition(partitioned) == []


def test_rows_follow_source_owner(small_rmat):
    num_hosts = 6
    partitioned = JaggedVertexCut().partition(small_rmat, num_hosts)
    rows, cols = grid_shape(num_hosts)
    owner = partitioned.master_host
    for part in partitioned.partitions:
        src, _ = part.graph.edges()
        src_gid = part.local_to_global[src]
        assert np.all(owner[src_gid] // cols == part.host // cols)


def test_columns_differ_per_row(small_rmat):
    """The jagged point: rows choose their own column boundaries, so the
    same destination node can map to different columns in different rows."""
    num_hosts = 4
    partitioner = JaggedVertexCut()
    assignment = partitioner.assign(small_rmat, num_hosts)
    rows, cols = grid_shape(num_hosts)
    # Per destination node, collect the column it landed in per row.
    column_of = {}
    src_row = assignment.master_host[small_rmat.src] // cols
    jagged_col = assignment.edge_host % cols
    differs = False
    for dst, row, col in zip(
        small_rmat.dst.tolist(), src_row.tolist(), jagged_col.tolist()
    ):
        seen = column_of.setdefault(dst, {})
        if row in seen:
            continue
        seen[row] = col
        if len(set(seen.values())) > 1:
            differs = True
            break
    assert differs


def test_balances_skewed_inputs_better_than_cvc():
    """On in-skewed web graphs, jagged's per-row splits reduce the edge
    imbalance that fixed CVC columns suffer."""
    edges = web_like(scale=12, seed=11)
    cvc = compute_metrics(CartesianVertexCut().partition(edges, 16))
    jagged = compute_metrics(JaggedVertexCut().partition(edges, 16))
    assert jagged.edge_imbalance <= cvc.edge_imbalance


def test_factory_knows_jagged():
    assert make_partitioner("jagged").name == "jagged"


def test_apps_run_correctly_on_jagged(small_rmat):
    prep = prepare_input("bfs", small_rmat)
    expected = reference_bfs(prep.edges, prep.ctx.source)
    result = run_app(
        "d-galois", "bfs", small_rmat, num_hosts=6, policy="jagged"
    )
    got = result.executor.gather_result("dist").astype(np.uint64)
    assert np.array_equal(got, expected)


def test_pagerank_on_jagged(small_rmat):
    from tests.conftest import reference_pagerank

    result = run_app(
        "d-galois", "pr", small_rmat, num_hosts=4, policy="jagged"
    )
    np.testing.assert_allclose(
        result.executor.gather_result("rank"),
        reference_pagerank(small_rmat),
        rtol=1e-9,
    )
