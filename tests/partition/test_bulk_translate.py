"""Vectorized global->local translation (LocalPartition.to_local_array).

The bulk path backs every GLOBAL_IDS decode and the memoization
exchange, so it must agree with the scalar ``to_local`` on every proxy
and reject unknown IDs the same way.
"""

import numpy as np
import pytest

from repro.graph.generators import rmat
from repro.partition.edge_cut import OutgoingEdgeCut


@pytest.fixture(scope="module")
def partitions():
    edges = rmat(scale=7, edge_factor=6, seed=21)
    return OutgoingEdgeCut().partition(edges, 3).partitions


class TestToLocalArray:
    def test_matches_scalar_on_every_proxy(self, partitions):
        for part in partitions:
            gids = part.local_to_global.copy()
            lids = part.to_local_array(gids)
            assert lids.dtype == np.uint32
            assert np.array_equal(lids, np.arange(part.num_nodes))
            expected = np.array(
                [part.to_local(int(g)) for g in gids], dtype=np.uint32
            )
            assert np.array_equal(lids, expected)

    def test_shuffled_and_repeated_ids(self, partitions):
        part = partitions[0]
        rng = np.random.default_rng(4)
        gids = rng.choice(part.local_to_global, size=200, replace=True)
        lids = part.to_local_array(gids)
        assert np.array_equal(part.local_to_global[lids], gids)

    def test_empty_input(self, partitions):
        part = partitions[0]
        out = part.to_local_array(np.empty(0, dtype=np.uint32))
        assert out.dtype == np.uint32
        assert len(out) == 0

    def test_unknown_gid_raises_keyerror_naming_first_miss(
        self, partitions
    ):
        part = partitions[0]
        held = set(int(g) for g in part.local_to_global)
        missing = next(g for g in range(10_000_000) if g not in held)
        gids = np.array(
            [int(part.local_to_global[0]), missing], dtype=np.uint32
        )
        with pytest.raises(KeyError) as excinfo:
            part.to_local_array(gids)
        assert excinfo.value.args[0] == missing

    def test_accepts_non_uint32_input(self, partitions):
        part = partitions[0]
        gids = part.local_to_global[:5].astype(np.int64)
        assert np.array_equal(
            part.to_local_array(gids), np.arange(5, dtype=np.uint32)
        )
