"""Tests for the concrete partitioning policies and their invariants (§3.1).

Every policy is checked on several graph shapes with
:func:`repro.partition.metrics.verify_partition`, which enforces the
generic proxy invariants *and* the per-strategy structural invariants of
Figure 3 — the properties Gluon's OSI optimization relies on.
"""

import numpy as np
import pytest

from repro.partition import make_partitioner
from repro.partition.cartesian import CartesianVertexCut, grid_shape
from repro.partition.edge_cut import IncomingEdgeCut, OutgoingEdgeCut
from repro.partition.hybrid import HybridVertexCut
from repro.partition.metrics import verify_partition
from repro.partition.random_cut import RandomEdgeCut

POLICIES = ["oec", "iec", "cvc", "hvc", "random"]
HOST_COUNTS = [1, 2, 3, 4, 8]


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("num_hosts", HOST_COUNTS)
def test_policy_invariants_on_rmat(small_rmat, policy, num_hosts):
    partitioned = make_partitioner(policy).partition(small_rmat, num_hosts)
    assert verify_partition(partitioned) == []


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_invariants_on_grid(small_grid, policy):
    partitioned = make_partitioner(policy).partition(small_grid, 4)
    assert verify_partition(partitioned) == []


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_invariants_on_path(small_path, policy):
    partitioned = make_partitioner(policy).partition(small_path, 3)
    assert verify_partition(partitioned) == []


@pytest.mark.parametrize("policy", POLICIES)
def test_single_host_has_no_mirrors(small_rmat, policy):
    partitioned = make_partitioner(policy).partition(small_rmat, 1)
    assert partitioned.partitions[0].num_mirrors == 0
    assert partitioned.partitions[0].num_masters == small_rmat.num_nodes


class TestOEC:
    def test_mirrors_have_no_out_edges(self, small_rmat):
        partitioned = OutgoingEdgeCut().partition(small_rmat, 4)
        for part in partitioned.partitions:
            mirror_out = part.graph.out_degree()[part.num_masters :]
            assert not np.any(mirror_out > 0)

    def test_all_out_edges_at_master(self, small_rmat):
        """Every out-edge of a node lives on its master's host."""
        partitioned = OutgoingEdgeCut().partition(small_rmat, 4)
        total_master_out = 0
        for part in partitioned.partitions:
            out_deg = part.graph.out_degree()
            total_master_out += int(out_deg[: part.num_masters].sum())
        assert total_master_out == small_rmat.num_edges

    def test_chunks_are_contiguous(self, small_rmat):
        partitioned = OutgoingEdgeCut().partition(small_rmat, 4)
        owners = partitioned.master_host
        # Contiguous blocks: owner sequence is non-decreasing.
        assert np.all(np.diff(owners) >= 0)

    def test_out_edge_balance(self, medium_rmat):
        partitioned = OutgoingEdgeCut().partition(medium_rmat, 4)
        per_host = [p.graph.num_edges for p in partitioned.partitions]
        assert max(per_host) < 2.5 * (sum(per_host) / len(per_host))


class TestIEC:
    def test_mirrors_have_no_in_edges(self, small_rmat):
        partitioned = IncomingEdgeCut().partition(small_rmat, 4)
        for part in partitioned.partitions:
            mirror_in = part.graph.in_degree()[part.num_masters :]
            assert not np.any(mirror_in > 0)

    def test_all_in_edges_at_master(self, small_rmat):
        partitioned = IncomingEdgeCut().partition(small_rmat, 4)
        total_master_in = 0
        for part in partitioned.partitions:
            in_deg = part.graph.in_degree()
            total_master_in += int(in_deg[: part.num_masters].sum())
        assert total_master_in == small_rmat.num_edges


class TestCVC:
    def test_grid_shape_near_square(self):
        assert grid_shape(1) == (1, 1)
        assert grid_shape(4) == (2, 2)
        assert grid_shape(6) == (2, 3)
        assert grid_shape(8) == (2, 4)
        assert grid_shape(7) == (1, 7)  # prime: degenerate grid
        assert grid_shape(16) == (4, 4)

    def test_grid_shape_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            grid_shape(0)

    def test_mirrors_never_have_both_directions(self, small_rmat):
        partitioned = CartesianVertexCut().partition(small_rmat, 4)
        for part in partitioned.partitions:
            out_deg = part.graph.out_degree()[part.num_masters :]
            in_deg = part.graph.in_degree()[part.num_masters :]
            assert not np.any((out_deg > 0) & (in_deg > 0))

    def test_edges_follow_grid_placement(self, small_rmat):
        """Edge (u,v) lands on (row(owner(u)), col(owner(v)))."""
        num_hosts = 6
        partitioned = CartesianVertexCut().partition(small_rmat, num_hosts)
        rows, cols = grid_shape(num_hosts)
        owner = partitioned.master_host
        for part in partitioned.partitions:
            src, dst = part.graph.edges()
            src_gid = part.local_to_global[src]
            dst_gid = part.local_to_global[dst]
            expected = (owner[src_gid] // cols) * cols + (owner[dst_gid] % cols)
            assert np.all(expected == part.host)

    def test_replication_bounded_by_grid(self, medium_rmat):
        """A node has proxies only on its master's grid row and column."""
        num_hosts = 16
        partitioned = CartesianVertexCut().partition(medium_rmat, num_hosts)
        rows, cols = grid_shape(num_hosts)
        max_proxies = rows + cols - 1
        proxy_count = np.zeros(medium_rmat.num_nodes, dtype=np.int64)
        for part in partitioned.partitions:
            proxy_count[part.local_to_global] += 1
        assert proxy_count.max() <= max_proxies


class TestHVC:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            HybridVertexCut(threshold_factor=0)

    def test_low_degree_edges_live_with_destination(self, small_er):
        """With a huge threshold, HVC degenerates to an incoming edge cut."""
        partitioned = HybridVertexCut(threshold_factor=1e9).partition(
            small_er, 4
        )
        owner = partitioned.master_host
        for part in partitioned.partitions:
            src, dst = part.graph.edges()
            dst_gid = part.local_to_global[dst]
            assert np.all(owner[dst_gid] == part.host)

    def test_hub_in_edges_are_cut(self, small_rmat):
        """High in-degree nodes have their in-edges spread across hosts."""
        partitioned = HybridVertexCut(threshold_factor=2.0).partition(
            small_rmat, 4
        )
        # Mirrors with in-edges exist <=> some hub's in-edges were cut.
        mirrors_with_in = 0
        for part in partitioned.partitions:
            in_deg = part.graph.in_degree()[part.num_masters :]
            mirrors_with_in += int((in_deg > 0).sum())
        assert mirrors_with_in > 0


class TestRandomCut:
    def test_deterministic_for_seed(self, small_rmat):
        a = RandomEdgeCut(seed=5).partition(small_rmat, 4)
        b = RandomEdgeCut(seed=5).partition(small_rmat, 4)
        assert np.array_equal(a.master_host, b.master_host)

    def test_different_seeds_differ(self, small_rmat):
        a = RandomEdgeCut(seed=5).partition(small_rmat, 4)
        b = RandomEdgeCut(seed=6).partition(small_rmat, 4)
        assert not np.array_equal(a.master_host, b.master_host)

    def test_out_edges_at_master(self, small_rmat):
        partitioned = RandomEdgeCut(seed=1).partition(small_rmat, 4)
        for part in partitioned.partitions:
            mirror_out = part.graph.out_degree()[part.num_masters :]
            assert not np.any(mirror_out > 0)


class TestFactory:
    def test_known_names(self):
        for name in POLICIES:
            assert make_partitioner(name).name == name

    def test_case_insensitive(self):
        assert make_partitioner("CVC").name == "cvc"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            make_partitioner("metis")
