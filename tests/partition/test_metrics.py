"""Unit tests for repro.partition.metrics."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.partition.base import EdgeAssignment, build_partitioned_graph
from repro.partition.cartesian import CartesianVertexCut
from repro.partition.edge_cut import OutgoingEdgeCut
from repro.partition.metrics import (
    assert_partition_valid,
    compute_metrics,
    verify_partition,
)
from repro.partition.strategy import PartitionStrategy


class TestComputeMetrics:
    def test_metrics_fields(self, small_rmat):
        partitioned = OutgoingEdgeCut().partition(small_rmat, 4)
        metrics = compute_metrics(partitioned)
        assert metrics.policy == "oec"
        assert metrics.num_hosts == 4
        assert metrics.total_masters == small_rmat.num_nodes
        assert metrics.replication_factor >= 1.0
        assert metrics.edge_imbalance >= 1.0

    def test_single_host_metrics(self, small_rmat):
        metrics = compute_metrics(OutgoingEdgeCut().partition(small_rmat, 1))
        assert metrics.total_mirrors == 0
        assert metrics.replication_factor == pytest.approx(1.0)
        assert metrics.edge_imbalance == pytest.approx(1.0)

    def test_as_row(self, small_rmat):
        row = compute_metrics(
            OutgoingEdgeCut().partition(small_rmat, 2)
        ).as_row()
        assert row["policy"] == "oec"
        assert row["hosts"] == 2

    def test_cvc_lower_replication_than_oec_at_scale(self, medium_rmat):
        """§5.2: CVC keeps the replication factor lower at high host counts."""
        oec = compute_metrics(OutgoingEdgeCut().partition(medium_rmat, 16))
        cvc = compute_metrics(CartesianVertexCut().partition(medium_rmat, 16))
        assert cvc.replication_factor < oec.replication_factor


class TestVerifyPartition:
    def test_valid_partition_is_clean(self, small_rmat):
        partitioned = OutgoingEdgeCut().partition(small_rmat, 4)
        assert verify_partition(partitioned) == []
        assert_partition_valid(partitioned)  # must not raise

    def test_detects_wrong_strategy_claim(self, small_rmat):
        """Claiming IEC for an OEC partition violates mirror invariants."""
        partitioned = OutgoingEdgeCut().partition(small_rmat, 4)
        partitioned.strategy = PartitionStrategy.IEC
        violations = verify_partition(partitioned)
        assert any("in-edges" in v for v in violations)

    def test_detects_duplicate_master(self, tiny_edges):
        assignment = EdgeAssignment(
            2,
            np.zeros(tiny_edges.num_nodes, dtype=np.int32),
            np.zeros(tiny_edges.num_edges, dtype=np.int32),
        )
        partitioned = build_partitioned_graph(
            tiny_edges, assignment, PartitionStrategy.OEC, "oec"
        )
        # Corrupt: pretend node 0's master lives on host 1.
        partitioned.master_host[0] = 1
        violations = verify_partition(partitioned)
        assert violations  # owner mismatch and/or master count

    def test_detects_edge_loss(self, small_rmat):
        partitioned = OutgoingEdgeCut().partition(small_rmat, 2)
        partitioned.num_global_edges += 1
        violations = verify_partition(partitioned)
        assert any("edge conservation" in v for v in violations)

    def test_assert_raises_on_violation(self, small_rmat):
        partitioned = OutgoingEdgeCut().partition(small_rmat, 2)
        partitioned.num_global_edges += 1
        with pytest.raises(PartitionError):
            assert_partition_valid(partitioned)
