"""Shared fixtures: small deterministic graphs and reference algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.edgelist import EdgeList
from repro.graph.generators import erdos_renyi, grid_graph, path_graph, rmat


@pytest.fixture(scope="session")
def tiny_edges() -> EdgeList:
    """The paper's running example graph (Figure 2): 10 nodes A..J.

    Node letters map to integers A=0 .. J=9.
    """
    pairs = [
        (0, 1),  # A -> B
        (0, 4),  # A -> E
        (1, 2),  # B -> C
        (1, 6),  # B -> G
        (4, 5),  # E -> F
        (5, 2),  # F -> C
        (5, 8),  # F -> I
        (2, 3),  # C -> D
        (6, 7),  # G -> H
        (2, 9),  # C -> J
        (6, 9),  # G -> J
        (3, 7),  # D -> H
    ]
    src = np.array([p[0] for p in pairs], dtype=np.uint32)
    dst = np.array([p[1] for p in pairs], dtype=np.uint32)
    return EdgeList(10, src, dst)


@pytest.fixture(scope="session")
def small_rmat() -> EdgeList:
    """A small scale-free graph for end-to-end tests."""
    return rmat(scale=9, edge_factor=8, seed=3)


@pytest.fixture(scope="session")
def medium_rmat() -> EdgeList:
    """A medium scale-free graph for integration tests."""
    return rmat(scale=11, edge_factor=16, seed=5)


@pytest.fixture(scope="session")
def small_er() -> EdgeList:
    """A small uniform random graph (no degree skew)."""
    return erdos_renyi(300, avg_degree=6.0, seed=17)


@pytest.fixture(scope="session")
def small_grid() -> EdgeList:
    """A high-diameter grid graph."""
    return grid_graph(12, 12)


@pytest.fixture(scope="session")
def small_path() -> EdgeList:
    """A directed path (worst-case round count)."""
    return path_graph(40)


# ---------------------------------------------------------------------------
# Reference (single-machine, oracle) algorithms used across app tests.
# ---------------------------------------------------------------------------


def reference_bfs(edges: EdgeList, source: int) -> np.ndarray:
    """Oracle BFS distances; unreached nodes get uint32 max."""
    inf = np.iinfo(np.uint32).max
    dist = np.full(edges.num_nodes, inf, dtype=np.uint64)
    adjacency = [[] for _ in range(edges.num_nodes)]
    for s, d in zip(edges.src.tolist(), edges.dst.tolist()):
        adjacency[s].append(d)
    dist[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        nxt = []
        for u in frontier:
            for v in adjacency[u]:
                if dist[v] == inf:
                    dist[v] = level
                    nxt.append(v)
        frontier = nxt
    return dist


def reference_sssp(edges: EdgeList, source: int) -> np.ndarray:
    """Oracle Dijkstra distances; unreached nodes get uint32 max."""
    import heapq

    inf = np.iinfo(np.uint32).max
    dist = np.full(edges.num_nodes, inf, dtype=np.uint64)
    adjacency = [[] for _ in range(edges.num_nodes)]
    weights = (
        edges.weight
        if edges.weight is not None
        else np.ones(edges.num_edges, dtype=np.uint32)
    )
    for s, d, w in zip(
        edges.src.tolist(), edges.dst.tolist(), weights.tolist()
    ):
        adjacency[s].append((d, w))
    dist[source] = 0
    heap = [(0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in adjacency[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def reference_cc(edges: EdgeList) -> np.ndarray:
    """Oracle connected-component labels: min global ID per component.

    ``edges`` must already be symmetrized.
    """
    parent = np.arange(edges.num_nodes, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    for s, d in zip(edges.src.tolist(), edges.dst.tolist()):
        rs, rd = find(s), find(d)
        if rs != rd:
            parent[max(rs, rd)] = min(rs, rd)
    labels = np.array(
        [find(n) for n in range(edges.num_nodes)], dtype=np.uint64
    )
    return labels


def reference_pagerank(
    edges: EdgeList,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    max_iterations: int = 100,
) -> np.ndarray:
    """Oracle pagerank in the Galois (1-d) + d*sum formulation."""
    n = edges.num_nodes
    out_degree = np.bincount(edges.src, minlength=n).astype(np.float64)
    rank = np.full(n, 1.0 - damping, dtype=np.float64)
    src = edges.src.astype(np.int64)
    dst = edges.dst.astype(np.int64)
    for iteration in range(max_iterations):
        contrib = np.where(out_degree > 0, rank / np.maximum(out_degree, 1), 0.0)
        acc = np.zeros(n, dtype=np.float64)
        np.add.at(acc, dst, contrib[src])
        new_rank = (1.0 - damping) + damping * acc
        delta = float(np.abs(new_rank - rank).sum())
        rank = new_rank
        if iteration > 0 and delta / max(n, 1) < tolerance:
            break
    return rank


def reference_kcore(edges: EdgeList, k: int) -> np.ndarray:
    """Oracle k-core membership (1/0) by iterative peeling.

    ``edges`` must already be symmetrized; degree = out-degree.
    """
    degree = np.bincount(edges.src, minlength=edges.num_nodes).astype(
        np.int64
    )
    alive = np.ones(edges.num_nodes, dtype=np.uint64)
    adjacency = [[] for _ in range(edges.num_nodes)]
    for s, d in zip(edges.src.tolist(), edges.dst.tolist()):
        adjacency[s].append(d)
    changed = True
    while changed:
        changed = False
        for node in range(edges.num_nodes):
            if alive[node] and degree[node] < k:
                alive[node] = 0
                changed = True
                for neighbor in adjacency[node]:
                    degree[neighbor] -= 1
    return alive
