"""Tests for the Gemini and Gunrock baseline systems' distinctive traits."""

import numpy as np
import pytest

from repro.core.metadata import MetadataMode
from repro.engines.gemini import GeminiPartitioner
from repro.errors import ExecutionError
from repro.partition.cartesian import CartesianVertexCut
from repro.partition.metrics import verify_partition
from repro.systems import run_app


class TestGeminiPartitioner:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            GeminiPartitioner(mode="sideways")

    def test_dual_rep_inflates_replication(self, medium_rmat):
        """§5.2: Gemini's replication factor exceeds CVC's at scale."""
        gemini = GeminiPartitioner("push").partition(medium_rmat, 16)
        cvc = CartesianVertexCut().partition(medium_rmat, 16)
        assert gemini.replication_factor() > cvc.replication_factor()

    def test_partition_is_structurally_valid(self, small_rmat):
        partitioned = GeminiPartitioner("push").partition(small_rmat, 4)
        assert verify_partition(partitioned) == []

    def test_push_mode_homes_edges_with_source(self, small_rmat):
        partitioned = GeminiPartitioner("push").partition(small_rmat, 4)
        owner = partitioned.master_host
        for part in partitioned.partitions:
            src, _ = part.graph.edges()
            src_gid = part.local_to_global[src]
            assert np.all(owner[src_gid] == part.host)

    def test_pull_mode_homes_edges_with_destination(self, small_rmat):
        partitioned = GeminiPartitioner("pull").partition(small_rmat, 4)
        owner = partitioned.master_host
        for part in partitioned.partitions:
            _, dst = part.graph.edges()
            dst_gid = part.local_to_global[dst]
            assert np.all(owner[dst_gid] == part.host)

    def test_edge_conservation_holds(self, small_rmat):
        """Dual-rep adds proxies, not edges: computation edges are stored
        once."""
        partitioned = GeminiPartitioner("push").partition(small_rmat, 4)
        total = sum(p.graph.num_edges for p in partitioned.partitions)
        assert total == small_rmat.num_edges


class TestGeminiSystem:
    def test_ships_global_ids(self, small_rmat):
        result = run_app("gemini", "bfs", small_rmat, num_hosts=4)
        assert result.translations > 0
        assert set(result.mode_counts) == {MetadataMode.GLOBAL_IDS}

    def test_rejects_other_policies(self, small_rmat):
        with pytest.raises(ExecutionError, match="edge cut"):
            run_app("gemini", "bfs", small_rmat, num_hosts=4, policy="cvc")

    def test_sends_more_than_dgalois(self, medium_rmat):
        """Figure 8(b): Gemini's volume far exceeds the Gluon systems'."""
        gemini = run_app("gemini", "bfs", medium_rmat, num_hosts=8)
        dgalois = run_app(
            "d-galois", "bfs", medium_rmat, num_hosts=8, policy="cvc"
        )
        assert (
            gemini.communication_volume > 2 * dgalois.communication_volume
        )


class TestGunrockSystem:
    def test_single_node_limit(self, small_rmat):
        with pytest.raises(ExecutionError, match="single-node"):
            run_app("gunrock", "bfs", small_rmat, num_hosts=8)

    def test_oec_only(self, small_rmat):
        with pytest.raises(ExecutionError, match="outgoing edge cut"):
            run_app("gunrock", "bfs", small_rmat, num_hosts=4, policy="cvc")

    def test_runs_on_four_gpus(self, small_rmat):
        result = run_app("gunrock", "cc", small_rmat, num_hosts=4)
        assert result.converged
        assert result.num_hosts == 4

    def test_random_policy_allowed(self, small_rmat):
        result = run_app(
            "gunrock", "bfs", small_rmat, num_hosts=2, policy="random"
        )
        assert result.converged
