"""Unit tests for per-engine cost parameters and baseline engine behavior."""

import numpy as np
import pytest

from repro.apps import make_app
from repro.engines import make_engine
from repro.engines.gemini import GeminiEngine
from repro.engines.gunrock import GunrockEngine
from repro.partition import make_partitioner
from repro.runtime.timing import WorkStats
from repro.systems import prepare_input


class TestCostParameterShapes:
    def test_gpu_engines_declare_device_transfer(self):
        for name in ("irgl", "gunrock"):
            cost = make_engine(name).cost
            assert cost.device_bandwidth_bytes_per_s is not None
            assert cost.device_latency_s > 0

    def test_cpu_engines_have_no_device_transfer(self):
        for name in ("galois", "ligra", "gemini"):
            cost = make_engine(name).cost
            assert cost.device_bandwidth_bytes_per_s is None

    def test_gpu_translation_pricier_than_cpu(self):
        """§5.6: translation hits GPUs harder (done on the host CPU)."""
        assert (
            make_engine("irgl").cost.translation_s
            > make_engine("galois").cost.translation_s
        )

    def test_gemini_engine_slower_per_edge_than_galois(self):
        assert (
            GeminiEngine.cost.per_edge_s
            > make_engine("galois").cost.per_edge_s
        )


class TestBaselineEngineStepping:
    def make(self, edges, app_name, engine_cls):
        prep = prepare_input(app_name, edges)
        part = make_partitioner("oec").partition(prep.edges, 1).partitions[0]
        app = make_app(app_name)
        state = app.make_state(part, prep.ctx)
        frontier = app.initial_frontier(part, state, prep.ctx)
        return engine_cls(), app, part, state, frontier

    @pytest.mark.parametrize("engine_cls", [GeminiEngine, GunrockEngine])
    def test_single_step_per_round(self, small_path, engine_cls):
        """Baseline engines are level-synchronous: one step per round, so
        a path graph advances exactly one hop per compute_round."""
        engine, app, part, state, frontier = self.make(
            small_path, "bfs", engine_cls
        )
        outcome = engine.compute_round(app, part, state, frontier)
        dist = state["dist"]
        assert dist[1] == 1
        assert dist[2] == np.iinfo(np.uint32).max  # not yet
        assert outcome.work.inner_steps == 1

    @pytest.mark.parametrize("engine_cls", [GeminiEngine, GunrockEngine])
    def test_work_counts_match_frontier(self, small_rmat, engine_cls):
        engine, app, part, state, frontier = self.make(
            small_rmat, "bfs", engine_cls
        )
        outcome = engine.compute_round(app, part, state, frontier)
        source_degree = part.graph.out_degree(
            part.to_local(int(np.flatnonzero(frontier)[0]))
        )
        assert outcome.work.edges_processed == source_degree


class TestComputeTimeMonotonicity:
    @pytest.mark.parametrize(
        "name", ["galois", "ligra", "irgl", "gemini", "gunrock"]
    )
    def test_time_monotone_in_every_dimension(self, name):
        engine = make_engine(name)
        base = engine.compute_time(WorkStats(100, 10, 1))
        assert engine.compute_time(WorkStats(200, 10, 1)) > base
        assert engine.compute_time(WorkStats(100, 20, 1)) > base
        assert engine.compute_time(WorkStats(100, 10, 2)) > base
