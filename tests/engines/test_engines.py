"""Unit tests for the compute engines."""

import numpy as np
import pytest

from repro.apps import make_app
from repro.engines import ENGINE_BY_NAME, make_engine
from repro.engines.galois import GaloisEngine
from repro.engines.ligra import LigraEngine
from repro.partition import make_partitioner
from repro.runtime.timing import WorkStats
from repro.systems import prepare_input


def single_partition(edges):
    return make_partitioner("oec").partition(edges, 1).partitions[0]


class TestFactory:
    def test_all_engines_constructible(self):
        for name in ENGINE_BY_NAME:
            engine = make_engine(name)
            assert engine.name == name

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_engine("spark")

    def test_gpu_flags(self):
        assert make_engine("irgl").is_gpu
        assert make_engine("gunrock").is_gpu
        assert not make_engine("galois").is_gpu
        assert not make_engine("ligra").is_gpu
        assert not make_engine("gemini").is_gpu


class TestComputeTime:
    def test_time_scales_with_work(self):
        engine = make_engine("galois")
        small = engine.compute_time(WorkStats(100, 10, 1))
        large = engine.compute_time(WorkStats(10000, 1000, 1))
        assert large > small > 0

    def test_gpu_faster_per_edge_than_cpu(self):
        """§5.3 attributes D-IrGL wins to GPU compute throughput."""
        cpu = make_engine("galois")
        gpu = make_engine("irgl")
        work = WorkStats(10_000_000, 0, 0)
        assert gpu.compute_time(work) < cpu.compute_time(work)

    def test_gpu_has_higher_step_overhead(self):
        cpu = make_engine("galois")
        gpu = make_engine("irgl")
        assert gpu.cost.step_overhead_s > cpu.cost.step_overhead_s


class TestGaloisLocalFixpoint:
    def test_runs_to_local_fixpoint(self, small_path):
        """On one host, async bfs finishes the whole path in one round."""
        prep = prepare_input("bfs", small_path, source=0)
        app = make_app("bfs")
        part = single_partition(prep.edges)
        state = app.make_state(part, prep.ctx)
        frontier = app.initial_frontier(part, state, prep.ctx)
        outcome = GaloisEngine().compute_round(app, part, state, frontier)
        # One step per path hop plus the final step that finds no updates.
        assert outcome.work.inner_steps == small_path.num_nodes
        assert np.array_equal(
            state["dist"], np.arange(small_path.num_nodes, dtype=np.uint32)
        )

    def test_respects_iterate_locally_false(self, small_rmat):
        prep = prepare_input("pr", small_rmat)
        app = make_app("pr")
        part = single_partition(prep.edges)
        state = app.make_state(part, prep.ctx)
        frontier = app.initial_frontier(part, state, prep.ctx)
        outcome = GaloisEngine().compute_round(app, part, state, frontier)
        assert outcome.work.inner_steps == 1

    def test_empty_frontier_is_cheap(self, small_rmat):
        prep = prepare_input("bfs", small_rmat)
        app = make_app("bfs")
        part = single_partition(prep.edges)
        state = app.make_state(part, prep.ctx)
        frontier = np.zeros(part.num_nodes, dtype=bool)
        outcome = GaloisEngine().compute_round(app, part, state, frontier)
        assert outcome.work.edges_processed == 0
        assert not outcome.updated.any()


class TestLigraDirectionOptimization:
    def test_sparse_frontier_pushes(self, small_rmat):
        prep = prepare_input("bfs", small_rmat)
        app = make_app("bfs")
        part = single_partition(prep.edges)
        frontier = np.zeros(part.num_nodes, dtype=bool)
        frontier[prep.ctx.source] = False
        # A single low-degree node: push.
        low_degree = int(np.argmin(part.graph.out_degree()))
        frontier[low_degree] = True
        assert (
            LigraEngine()._choose_direction(app, part, frontier) == "push"
        )

    def test_dense_frontier_pulls(self, small_rmat):
        prep = prepare_input("bfs", small_rmat)
        app = make_app("bfs")
        part = single_partition(prep.edges)
        frontier = np.ones(part.num_nodes, dtype=bool)
        assert (
            LigraEngine()._choose_direction(app, part, frontier) == "pull"
        )

    def test_pull_only_for_apps_supporting_it(self, small_rmat):
        prep = prepare_input("sssp", small_rmat)
        app = make_app("sssp")  # push-only
        part = single_partition(prep.edges)
        frontier = np.ones(part.num_nodes, dtype=bool)
        assert (
            LigraEngine()._choose_direction(app, part, frontier) == "push"
        )

    def test_pull_operator_always_pulls(self, small_rmat):
        prep = prepare_input("pr", small_rmat)
        app = make_app("pr")
        part = single_partition(prep.edges)
        frontier = np.zeros(part.num_nodes, dtype=bool)
        assert (
            LigraEngine()._choose_direction(app, part, frontier) == "pull"
        )

    def test_direction_optimized_bfs_correct(self, small_rmat):
        """Level-synchronous bfs with direction switching matches push-only."""
        from repro.systems import run_app
        from tests.conftest import reference_bfs

        prep = prepare_input("bfs", small_rmat)
        expected = reference_bfs(prep.edges, prep.ctx.source)
        result = run_app("d-ligra", "bfs", small_rmat, num_hosts=4, policy="cvc")
        got = result.executor.gather_result("dist").astype(np.uint64)
        assert np.array_equal(got, expected)
