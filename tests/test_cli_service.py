"""CLI tests for `repro serve`, `repro submit`, and `run --cache-dir`."""

import json

import pytest

from repro.cli import main

_BATCH = {
    "defaults": {"workload": "rmat22s", "hosts": 4, "scale_delta": -6},
    "jobs": [
        {"app": "bfs", "policy": "cvc"},
        {"app": "pr", "policy": "cvc", "priority": 1},
    ],
}


@pytest.fixture()
def batch_file(tmp_path):
    path = tmp_path / "jobs.json"
    path.write_text(json.dumps(_BATCH))
    return str(path)


class TestServe:
    def test_prints_summary_and_exits_zero(self, batch_file, capsys):
        assert main(["serve", batch_file]) == 0
        out = capsys.readouterr().out
        assert "serve summary" in out
        assert "throughput" in out
        assert out.count(" ok ") >= 1

    def test_warm_second_pass_hits_the_result_cache(
        self, batch_file, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        assert main(["serve", batch_file, "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["serve", batch_file, "--cache-dir", cache]) == 0
        assert "2 result hit(s)" in capsys.readouterr().out

    def test_json_mode_emits_one_document(self, batch_file, capsys):
        assert main(["serve", batch_file, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["results"]) == 2
        assert doc["jobs_per_s"] > 0
        assert doc["stats"]["jobs"]["completed"] == 2
        # Priority 1 (pr) is served before priority 0 (bfs).
        assert [r["spec"]["app"] for r in doc["results"]] == ["pr", "bfs"]

    def test_missing_batch_file_is_a_parser_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["serve", str(tmp_path / "nope.json")])
        assert "not found" in capsys.readouterr().err

    def test_bad_job_is_named(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"app": "warp", "workload": "rmat22s"}]))
        with pytest.raises(SystemExit):
            main(["serve", str(path)])
        assert "job #1" in capsys.readouterr().err

    def test_zero_workers_rejected(self, batch_file, capsys):
        with pytest.raises(SystemExit):
            main(["serve", batch_file, "--workers", "0"])
        assert "--workers" in capsys.readouterr().err


class TestSubmit:
    _BASE = ["submit", "--app", "bfs", "--workload", "rmat22s",
             "--scale-delta", "-6", "--policy", "cvc"]

    def test_runs_and_reports_cache_provenance(self, capsys):
        assert main(self._BASE) == 0
        out = capsys.readouterr().out
        assert "result cache" in out
        assert "output digest" in out

    def test_resubmit_hits_via_disk_cache(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(self._BASE + cache) == 0
        capsys.readouterr()
        assert main(self._BASE + cache + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["result_cache"] == "hit"
        assert doc["status"] == "ok"

    def test_negative_retries_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self._BASE + ["--retries", "-1"])
        assert "--retries" in capsys.readouterr().err


class TestRunCacheDir:
    _BASE = ["run", "--system", "d-galois", "--app", "bfs",
             "--workload", "rmat22s", "--scale-delta", "-6",
             "--policy", "cvc", "--hosts", "4"]

    def test_cold_then_warm_partition_cache(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(self._BASE + cache) == 0
        assert "partition cache    : miss" in capsys.readouterr().out
        assert main(self._BASE + cache) == 0
        assert "partition cache    : hit" in capsys.readouterr().out

    def test_no_cache_dir_prints_no_cache_line(self, capsys):
        assert main(self._BASE) == 0
        assert "partition cache" not in capsys.readouterr().out
