"""Static sync-contract lint: every rule fires, every app is clean."""

import pytest

from repro.analysis import lint_all_apps, lint_programs
from repro.analysis.astlint import analyze_program, lint_program
from repro.analysis.findings import RULES, has_errors
from repro.analysis.linter import lint_module_path
from repro.apps import APP_BY_NAME
from repro.apps.bfs import BFS

from tests.analysis.broken_programs import (
    RULE_FIXTURES,
    UnsyncedWrite,
    WrongWriteEndpoint,
)


class TestBrokenFixtures:
    @pytest.mark.parametrize(
        "rule_id,cls",
        sorted(RULE_FIXTURES.items()),
        ids=sorted(RULE_FIXTURES),
    )
    def test_rule_fires(self, rule_id, cls):
        findings = lint_programs([cls])
        fired = {f.rule_id for f in findings}
        assert rule_id in fired, (
            f"{cls.__name__} should trigger {rule_id}, got {sorted(fired)}"
        )
        finding = next(f for f in findings if f.rule_id == rule_id)
        assert finding.severity == RULES[rule_id].severity
        assert finding.subject == cls.__name__

    def test_findings_carry_anchors(self):
        findings = lint_programs([WrongWriteEndpoint])
        finding = next(f for f in findings if f.rule_id == "GL001")
        assert finding.file.endswith("broken_programs.py")
        assert finding.line > 0
        assert finding.field_name == "dist"
        assert "destination" in finding.message

    def test_unsynced_write_names_the_state_key(self):
        findings = lint_program(UnsyncedWrite)
        finding = next(f for f in findings if f.rule_id == "GL003")
        assert "hops" in finding.message

    def test_module_path_lints_the_fixture_file(self):
        import tests.analysis.broken_programs as module

        findings = lint_module_path(module.__file__)
        assert set(RULE_FIXTURES) <= {f.rule_id for f in findings}
        subjects = {f.subject for f in findings}
        assert "WrongWriteEndpoint" in subjects


class TestEndpointInference:
    def test_bfs_push_endpoints(self):
        report = analyze_program(BFS)
        writes = {
            e.key: e.endpoint for e in report.events if e.kind == "write"
        }
        reads = {e.key: e.endpoint for e in report.events if e.kind == "read"}
        assert writes.get("dist") == "destination"
        assert reads.get("dist") == "source"

    def test_bfs_pull_path_detected(self):
        report = analyze_program(BFS)
        assert report.has_pull_path
        assert report.gathers_forward
        assert report.gathers_transpose


class TestBuiltinAppsClean:
    def test_all_apps_have_no_errors(self):
        names, findings = lint_all_apps()
        # Aliases collapse to one target, but every app class is covered.
        assert {APP_BY_NAME[n] for n in names} == set(APP_BY_NAME.values())
        errors = [f for f in findings if f.severity == "error"]
        assert not has_errors(findings), [f.to_dict() for f in errors]

    @pytest.mark.parametrize("app_name", sorted(APP_BY_NAME))
    def test_each_app_individually_clean(self, app_name):
        from repro.analysis import lint_app

        findings = lint_app(app_name)
        errors = [f for f in findings if f.severity == "error"]
        assert not errors, [f.to_dict() for f in errors]
