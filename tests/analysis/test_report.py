"""Tests for the one-shot reproduction report."""

import pytest

from repro.analysis.report import generate_report


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory):
    target = tmp_path_factory.mktemp("report") / "report.md"
    text = generate_report(output_path=str(target), quick=True)
    return target, text


class TestGenerateReport:
    def test_written_file_matches_returned_text(self, quick_report):
        target, text = quick_report
        assert target.read_text() == text

    def test_structure(self, quick_report):
        _, text = quick_report
        assert text.startswith("# Gluon reproduction report")
        for heading in (
            "## Headline factors",
            "## Table 1 — inputs",
            "## Figure 10 — communication optimizations",
            "## Metadata modes (§4.2)",
        ):
            assert heading in text
        assert "geomean OSTI speedup over UNOPT" in text
        assert "paper: ~2.6x" in text

    def test_quick_mode_noted(self, quick_report):
        _, text = quick_report
        assert "mode: quick" in text


def test_cli_report(tmp_path, capsys, monkeypatch):
    import repro.cli as cli

    calls = {}

    def fake_generate(output_path=None, quick=True):
        calls["output"] = output_path
        calls["quick"] = quick
        from pathlib import Path

        Path(output_path).write_text("# stub")
        return "# stub"

    import repro.analysis.report as report_module

    monkeypatch.setattr(report_module, "generate_report", fake_generate)
    target = tmp_path / "out.md"
    assert cli.main(["report", "--output", str(target)]) == 0
    assert "report written" in capsys.readouterr().out
    assert calls == {"output": str(target), "quick": True}
    assert target.read_text() == "# stub"
