"""Unit tests for the paper-scale memory projection."""

import pytest

from repro.analysis.memory import (
    CPU_HOST_CAPACITY_GB,
    GPU_HOST_CAPACITY_GB,
    PAPER_SIZES,
    project,
)
from repro.engines.gemini import GeminiPartitioner
from repro.partition import make_partitioner


class TestProjection:
    def test_gpu_capacity_smaller_than_cpu(self):
        assert GPU_HOST_CAPACITY_GB < CPU_HOST_CAPACITY_GB

    def test_known_paper_inputs(self):
        assert set(PAPER_SIZES) == {
            "rmat26",
            "rmat28",
            "twitter40",
            "kron30",
            "clueweb12",
            "wdc12",
        }

    def test_unknown_input_rejected(self, small_rmat):
        partitioned = make_partitioner("cvc").partition(small_rmat, 4)
        with pytest.raises(ValueError, match="unknown paper input"):
            project(partitioned, "facebook", is_gpu=False)

    def test_bad_host_scale_rejected(self, small_rmat):
        partitioned = make_partitioner("cvc").partition(small_rmat, 4)
        with pytest.raises(ValueError):
            project(partitioned, "rmat28", is_gpu=False, host_scale=0)

    def test_wdc12_exceeds_gpu_memory(self, small_rmat):
        """Table 3: D-IrGL cannot hold wdc12 even on 64 GPUs."""
        partitioned = make_partitioner("cvc").partition(small_rmat, 16)
        projection = project(partitioned, "wdc12", is_gpu=True, host_scale=4)
        assert not projection.fits

    def test_wdc12_fits_cpu_cluster(self, small_rmat):
        """Table 3: the Gluon CPU systems do run wdc12 at 256 hosts."""
        partitioned = make_partitioner("cvc").partition(small_rmat, 16)
        projection = project(
            partitioned, "wdc12", is_gpu=False, host_scale=16
        )
        assert projection.fits

    def test_rmat28_fits_gpus(self, small_rmat):
        partitioned = make_partitioner("cvc").partition(small_rmat, 16)
        assert project(partitioned, "rmat28", is_gpu=True, host_scale=4).fits

    def test_host_scale_shrinks_footprint(self, small_rmat):
        partitioned = make_partitioner("cvc").partition(small_rmat, 8)
        unscaled = project(partitioned, "clueweb12", is_gpu=True)
        scaled = project(
            partitioned, "clueweb12", is_gpu=True, host_scale=8
        )
        assert scaled.max_host_gb < unscaled.max_host_gb

    def test_dual_representation_doubles_edge_bytes(self, small_rmat):
        partitioned = GeminiPartitioner().partition(small_rmat, 8)
        single = project(partitioned, "rmat28", is_gpu=False)
        dual = project(
            partitioned, "rmat28", is_gpu=False, dual_representation=True
        )
        assert dual.max_host_gb > single.max_host_gb
