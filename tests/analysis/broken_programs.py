"""Deliberately-broken vertex programs: one per sync-contract rule.

Each class here violates exactly the invariant its name says (plus, in a
few cases, the over-declaration warning that logically accompanies the
violation).  ``tests/analysis`` imports them to prove every lint rule
fires; the runnable ones double as runtime-sanitizer victims.  The file
is also a valid ``repro lint --module`` target.

They are all small variants of BFS so the broken declaration is the
*only* difference from a correct program.  The endpoint-sensitive
fixtures inline the push relaxation in their own ``step`` — the lint
pass infers endpoints from the method body itself, so factoring the
relaxation into a shared helper would hide it from the checker (exactly
as it would for a real user's program).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.apps.base import (
    AppContext,
    StepOutcome,
    VertexProgram,
    gather_frontier_edges,
)
from repro.apps.sssp import INFINITY
from repro.core.sync_structures import (
    ADD,
    ASSIGN,
    MIN,
    FieldSpec,
    ReductionOp,
)
from repro.partition.base import LocalPartition
from repro.partition.strategy import OperatorClass
from repro.runtime.timing import WorkStats

BOTH_ENDS = frozenset({"source", "destination"})

#: A reduction that is a plain max on 1-D input (so it passes every
#: GL10x law, which are measured over vectors) but rotates columns on
#: 2-D input — the row-mixing defect GL011 exists to catch.
ROWMIX = ReductionOp(
    name="rowmix",
    combine=lambda a, b: np.maximum(
        a, np.roll(b, 1, axis=-1) if b.ndim > 1 else b
    ),
    identity_for=lambda dtype: (
        np.iinfo(dtype).min
        if np.issubdtype(dtype, np.integer)
        else dtype.type(-np.inf)
    ),
    idempotent=True,
)


class _BrokenBFSBase(VertexProgram):
    """Shared BFS scaffolding; subclasses break one declaration each."""

    name = "broken-bfs"
    needs_weights = False
    operator_class = OperatorClass.PUSH

    def make_state(self, part: LocalPartition, ctx: AppContext) -> Dict:
        dist = np.full(part.num_nodes, INFINITY, dtype=np.uint32)
        if part.has_proxy(ctx.source):
            dist[part.to_local(ctx.source)] = 0
        return {"dist": dist}

    def initial_frontier(
        self, part: LocalPartition, state: Dict, ctx: AppContext
    ) -> np.ndarray:
        frontier = np.zeros(part.num_nodes, dtype=bool)
        if part.has_proxy(ctx.source):
            frontier[part.to_local(ctx.source)] = True
        return frontier


def _relax(part, state, frontier) -> StepOutcome:
    """Push relaxation for the fixtures whose defect is declaration-only."""
    dist = state["dist"]
    usable = frontier & (dist != INFINITY)
    src_rep, dst, _ = gather_frontier_edges(part.graph, usable)
    updated = np.zeros(part.num_nodes, dtype=bool)
    work = WorkStats(
        edges_processed=len(dst), nodes_processed=int(usable.sum())
    )
    if len(dst) == 0:
        return StepOutcome(updated=updated, work=work)
    candidate = np.minimum(
        dist[src_rep].astype(np.int64) + 1, int(INFINITY)
    ).astype(np.uint32)
    before = dist.copy()
    np.minimum.at(dist, dst, candidate)
    updated = dist != before
    return StepOutcome(updated=updated, work=work)


class WrongWriteEndpoint(_BrokenBFSBase):
    """GL001: writes at the destination, declares ``writes={"source"}``.

    The reduce phase only ships source-side (out-edge) mirrors, so every
    destination-mirror relaxation is silently lost — the seeded mislabel
    of EXPERIMENTS.md's worked example, and the runtime GL201 victim.
    """

    name = "wrong-write-endpoint"

    def make_fields(self, part, state) -> List[FieldSpec]:
        return [
            FieldSpec(
                name="dist",
                values=state["dist"],
                reduce_op=MIN,
                writes={"source"},
            )
        ]

    def step(self, part, state, frontier, direction="push") -> StepOutcome:
        dist = state["dist"]
        usable = frontier & (dist != INFINITY)
        src_rep, dst, _ = gather_frontier_edges(part.graph, usable)
        updated = np.zeros(part.num_nodes, dtype=bool)
        work = WorkStats(len(dst), int(usable.sum()))
        if len(dst) == 0:
            return StepOutcome(updated=updated, work=work)
        candidate = np.minimum(
            dist[src_rep].astype(np.int64) + 1, int(INFINITY)
        ).astype(np.uint32)
        before = dist.copy()
        np.minimum.at(dist, dst, candidate)
        updated = dist != before
        return StepOutcome(updated=updated, work=work)


class WrongReadEndpoint(_BrokenBFSBase):
    """GL002: reads at the destination, declares ``reads={"source"}``.

    The settled-check ``dist[dst]`` consumes destination-side values the
    broadcast never refreshes (it only ships to the declared source-side
    readers) — the runtime GL202 victim.
    """

    name = "wrong-read-endpoint"

    def make_fields(self, part, state) -> List[FieldSpec]:
        return [
            FieldSpec(
                name="dist",
                values=state["dist"],
                reduce_op=MIN,
                reads={"source"},
            )
        ]

    def step(self, part, state, frontier, direction="push") -> StepOutcome:
        dist = state["dist"]
        usable = frontier & (dist != INFINITY)
        src_rep, dst, _ = gather_frontier_edges(part.graph, usable)
        updated = np.zeros(part.num_nodes, dtype=bool)
        work = WorkStats(len(dst), int(usable.sum()))
        if len(dst) == 0:
            return StepOutcome(updated=updated, work=work)
        candidate = np.minimum(
            dist[src_rep].astype(np.int64) + 1, int(INFINITY)
        ).astype(np.uint32)
        improving = candidate < dist[dst]  # destination-side settled check
        dst = dst[improving]
        candidate = candidate[improving]
        if len(dst) == 0:
            return StepOutcome(updated=updated, work=work)
        before = dist.copy()
        np.minimum.at(dist, dst, candidate)
        updated = dist != before
        return StepOutcome(updated=updated, work=work)


class UnsyncedWrite(_BrokenBFSBase):
    """GL003: scatters to ``state["hops"]`` but never synchronizes it."""

    name = "unsynced-write"

    def make_state(self, part, ctx) -> Dict:
        state = super().make_state(part, ctx)
        state["hops"] = np.zeros(part.num_nodes, dtype=np.uint32)
        return state

    def make_fields(self, part, state) -> List[FieldSpec]:
        return [FieldSpec(name="dist", values=state["dist"], reduce_op=MIN)]

    def step(self, part, state, frontier, direction="push") -> StepOutcome:
        outcome = _relax(part, state, frontier)
        hops = state["hops"]
        dist = state["dist"]
        usable = frontier & (dist != INFINITY)
        _, dst, _ = gather_frontier_edges(part.graph, usable)
        np.maximum.at(hops, dst, np.uint32(1))
        return outcome


class OverDeclaredWrite(_BrokenBFSBase):
    """GL004: declares writes at both endpoints, writes only one."""

    name = "over-declared-write"

    def make_fields(self, part, state) -> List[FieldSpec]:
        return [
            FieldSpec(
                name="dist",
                values=state["dist"],
                reduce_op=MIN,
                writes=BOTH_ENDS,
            )
        ]

    def step(self, part, state, frontier, direction="push") -> StepOutcome:
        dist = state["dist"]
        usable = frontier & (dist != INFINITY)
        src_rep, dst, _ = gather_frontier_edges(part.graph, usable)
        updated = np.zeros(part.num_nodes, dtype=bool)
        work = WorkStats(len(dst), int(usable.sum()))
        if len(dst) == 0:
            return StepOutcome(updated=updated, work=work)
        candidate = np.minimum(
            dist[src_rep].astype(np.int64) + 1, int(INFINITY)
        ).astype(np.uint32)
        before = dist.copy()
        np.minimum.at(dist, dst, candidate)
        updated = dist != before
        return StepOutcome(updated=updated, work=work)


class OverDeclaredRead(_BrokenBFSBase):
    """GL005: declares reads at both endpoints, reads only the source."""

    name = "over-declared-read"

    def make_fields(self, part, state) -> List[FieldSpec]:
        return [
            FieldSpec(
                name="dist",
                values=state["dist"],
                reduce_op=MIN,
                reads=BOTH_ENDS,
            )
        ]

    def step(self, part, state, frontier, direction="push") -> StepOutcome:
        dist = state["dist"]
        usable = frontier & (dist != INFINITY)
        src_rep, dst, _ = gather_frontier_edges(part.graph, usable)
        updated = np.zeros(part.num_nodes, dtype=bool)
        work = WorkStats(len(dst), int(usable.sum()))
        if len(dst) == 0:
            return StepOutcome(updated=updated, work=work)
        candidate = np.minimum(
            dist[src_rep].astype(np.int64) + 1, int(INFINITY)
        ).astype(np.uint32)
        before = dist.copy()
        np.minimum.at(dist, dst, candidate)
        updated = dist != before
        return StepOutcome(updated=updated, work=work)


class PhantomPull(_BrokenBFSBase):
    """GL006: ``supports_pull=True`` with a push-only step."""

    name = "phantom-pull"
    supports_pull = True

    def make_fields(self, part, state) -> List[FieldSpec]:
        return [FieldSpec(name="dist", values=state["dist"], reduce_op=MIN)]

    def step(self, part, state, frontier, direction="push") -> StepOutcome:
        return _relax(part, state, frontier)


class UnsafeLocalIteration(_BrokenBFSBase):
    """GL007: local fixpoint iteration over a non-idempotent reduction."""

    name = "unsafe-local-iteration"
    iterate_locally = True

    def make_fields(self, part, state) -> List[FieldSpec]:
        return [FieldSpec(name="dist", values=state["dist"], reduce_op=ADD)]

    def step(self, part, state, frontier, direction="push") -> StepOutcome:
        return _relax(part, state, frontier)


class SameArrayHook(_BrokenBFSBase):
    """GL008: a master-side hook on a same-array (non-derived) field."""

    name = "same-array-hook"

    def make_fields(self, part, state) -> List[FieldSpec]:
        return [
            FieldSpec(
                name="dist",
                values=state["dist"],
                reduce_op=MIN,
                on_master_after_reduce=lambda changed: changed,
            )
        ]

    def step(self, part, state, frontier, direction="push") -> StepOutcome:
        return _relax(part, state, frontier)


class NonCommutativeReduce(_BrokenBFSBase):
    """GL009: synchronizes with the order-dependent ``assign``."""

    name = "non-commutative-reduce"

    def make_fields(self, part, state) -> List[FieldSpec]:
        return [
            FieldSpec(name="dist", values=state["dist"], reduce_op=ASSIGN)
        ]

    def step(self, part, state, frontier, direction="push") -> StepOutcome:
        return _relax(part, state, frontier)


class MislabeledPull(_BrokenBFSBase):
    """GL010: declares a PULL operator but gathers forward edges only."""

    name = "mislabeled-pull"
    operator_class = OperatorClass.PULL

    def make_fields(self, part, state) -> List[FieldSpec]:
        return [FieldSpec(name="dist", values=state["dist"], reduce_op=MIN)]

    def step(self, part, state, frontier, direction="push") -> StepOutcome:
        dist = state["dist"]
        usable = frontier & (dist != INFINITY)
        src_rep, dst, _ = gather_frontier_edges(part.graph, usable)
        updated = np.zeros(part.num_nodes, dtype=bool)
        work = WorkStats(len(dst), int(usable.sum()))
        if len(dst) == 0:
            return StepOutcome(updated=updated, work=work)
        candidate = np.minimum(
            dist[src_rep].astype(np.int64) + 1, int(INFINITY)
        ).astype(np.uint32)
        before = dist.copy()
        np.minimum.at(dist, dst, candidate)
        updated = dist != before
        return StepOutcome(updated=updated, work=work)


class RowMixingWideReduce(_BrokenBFSBase):
    """GL011: a wide (n, d) field reduced with a row-mixing combine.

    ``ROWMIX`` measures clean under every 1-D reduction law, so only the
    row-wise probe over matrix samples can reject it.
    """

    name = "rowmix-wide-reduce"

    def make_state(self, part, ctx) -> Dict:
        state = super().make_state(part, ctx)
        state["votes"] = np.zeros((part.num_nodes, 4), dtype=np.float64)
        return state

    def make_fields(self, part, state) -> List[FieldSpec]:
        return [
            FieldSpec(name="dist", values=state["dist"], reduce_op=MIN),
            FieldSpec(name="votes", values=state["votes"], reduce_op=ROWMIX),
        ]

    def step(self, part, state, frontier, direction="push") -> StepOutcome:
        return _relax(part, state, frontier)


#: Static rule -> the fixture class that must trigger it.
RULE_FIXTURES = {
    "GL001": WrongWriteEndpoint,
    "GL002": WrongReadEndpoint,
    "GL003": UnsyncedWrite,
    "GL004": OverDeclaredWrite,
    "GL005": OverDeclaredRead,
    "GL006": PhantomPull,
    "GL007": UnsafeLocalIteration,
    "GL008": SameArrayHook,
    "GL009": NonCommutativeReduce,
    "GL010": MislabeledPull,
    "GL011": RowMixingWideReduce,
}
