"""Tiny-scale smoke tests for the remaining experiment harnesses.

The benchmark suite runs these at full scale; here they run at minimal
scale so a refactor that breaks a harness's plumbing fails in seconds.
"""

from repro.analysis import experiments
from repro.analysis.tables import format_table


def test_table2_smoke():
    rows = experiments.table2_rows(
        scale_delta=-3, hosts=(2,), inputs=("rmat24s",)
    )
    assert len(rows) == 3
    assert {row["system"] for row in rows} == {"d-ligra", "d-galois", "gemini"}
    format_table(rows)


def test_table2_single_host_smoke():
    rows = experiments.table2_single_host_rows(
        scale_delta=-3, inputs=("rmat22s",)
    )
    assert len(rows) == 3
    assert all(row["construction_s"] > 0 for row in rows)


def test_table4_smoke():
    rows = experiments.table4_rows(
        scale_delta=-3, inputs=("rmat24s",), apps=("bfs",)
    )
    assert len(rows) == 1
    for system in ("ligra", "d-ligra", "galois", "d-galois", "gemini"):
        assert rows[0][system] > 0


def test_table5_smoke():
    rows = experiments.table5_rows(
        scale_delta=-3, inputs=("rmat22s",), apps=("bfs",)
    )
    assert len(rows) == 1
    assert "gunrock" in rows[0]
    assert "d-irgl(cvc)" in rows[0]


def test_fig8_smoke():
    rows = experiments.fig8_series(
        scale_delta=-3,
        hosts=(2, 4),
        inputs=("rmat24s",),
        apps=("bfs",),
        systems=("d-galois",),
    )
    assert len(rows) == 2
    assert rows[0]["hosts"] == 2 and rows[1]["hosts"] == 4


def test_fig9_smoke():
    rows = experiments.fig9_series(
        scale_delta=-3, gpus=(4,), inputs=("rmat24s",), apps=("bfs",)
    )
    assert len(rows) == 1
    assert rows[0]["gpus"] == 4


def test_table3_smoke():
    rows = experiments.table3_rows(
        scale_delta=-3,
        cpu_hosts=(2,),
        gpu_hosts=(2,),
        inputs=("rmat24s",),
        apps=("bfs",),
    )
    assert len(rows) == 1
    assert "ms" in rows[0]["d-galois"]


def test_load_imbalance_smoke():
    rows = experiments.load_imbalance_rows(
        scale_delta=-3, num_hosts=2, inputs=("clueweb12s",), apps=("bfs",)
    )
    assert all(row["max/mean"] >= 1.0 for row in rows)


def test_headline_summary_smoke():
    rows = experiments.headline_summary(scale_delta=-3)
    assert len(rows) == 4
    assert all("measured" in row for row in rows)
