"""Unit tests for table rendering and summary statistics."""

import pytest

from repro.analysis.tables import format_table, geomean


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geomean([3.5]) == pytest.approx(3.5)

    def test_identity(self):
        assert geomean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([-1.0])


class TestFormatTable:
    def test_renders_columns_in_order(self):
        text = format_table([{"b": 1, "a": 2}])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_title_included(self):
        text = format_table([{"x": 1}], title="My Table")
        assert text.startswith("My Table")

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="t")

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            format_table([{"a": 1}, {"b": 2}])

    def test_float_formatting(self):
        text = format_table(
            [{"big": 1234.5, "mid": 3.14159, "small": 0.00123, "zero": 0.0}]
        )
        assert "1234" in text
        assert "3.14" in text
        assert "0.0012" in text

    def test_alignment(self):
        text = format_table([{"col": 1}, {"col": 100}])
        lines = text.splitlines()
        assert len(set(len(line) for line in lines[1:])) == 1
