"""The whole-program sync dataflow analyzer (GL3xx).

Three obligations:

* every rule *fires* on a fixture spec engineered to violate it
  (GL301 dead syncs, GL302 fusion, GL303 stabilization mismatch,
  GL304 static hazards, GL305 tampered endpoints);
* the analyzer is *exact* on the migrated specs — the dead-sync tables
  and stabilization certificates below are the hand-checked ground
  truth this PR's optimizer relies on;
* the sweep is *clean* on every registered program, handwritten and
  generated: info-severity eliminations only, no hazards, no
  certificate mismatches (no false positives).
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.astlint import analyze_program
from repro.analysis.dataflow import (
    analyze_class,
    analyze_spec,
    certificate_for,
    certify_report,
    certify_spec,
    dataflow_programs,
    dead_sync_table,
    fusion_candidates,
    graph_from_report,
    graph_from_spec,
    kernel_is_monotone,
)
from repro.analysis.linter import all_builtin_programs, all_compiled_programs
from repro.apps import BFS, ConnectedComponents, PageRank, make_app
from repro.apps.specs import PROGRAM_SPECS
from repro.compiler import FieldDecl, PhaseSpec, ProgramSpec, SyncDecl
from repro.partition.strategy import PartitionStrategy


def _noop_hook(part, state):
    return np.zeros(part.num_nodes, dtype=bool)


def fuse_spec():
    """Two adjacent push phases sharing a gather — GL302 must fire."""
    return ProgramSpec(
        name="fixture-fuse",
        fields=(
            FieldDecl("x", np.uint32, None, "np.arange(n, dtype=np.uint32)"),
            FieldDecl("a", np.uint32, "min",
                      "np.full(n, 4294967295, dtype=np.uint32)"),
            FieldDecl("b", np.uint32, "min",
                      "np.full(n, 4294967295, dtype=np.uint32)"),
        ),
        phases=(
            PhaseSpec("scatter_a", "frontier_push", "a",
                      kernel="np.minimum({dst.a}, {src.x} + np.uint32(1))"),
            PhaseSpec("scatter_b", "frontier_push", "b",
                      kernel="np.minimum({dst.b}, {src.x} + np.uint32(2))"),
        ),
        sync=(SyncDecl("a"), SyncDecl("b")),
        frontier="all",
    )


def hazard_spec():
    """A later phase reads a field an earlier phase scatter-wrote in the
    same round — the GL304 stale-mirror-read shape."""
    return ProgramSpec(
        name="fixture-hazard",
        fields=(
            FieldDecl("x", np.uint32, None, "np.arange(n, dtype=np.uint32)"),
            FieldDecl("a", np.uint32, "min",
                      "np.full(n, 4294967295, dtype=np.uint32)"),
            FieldDecl("c", np.uint64, "min",
                      "np.full(n, 2**64 - 1, dtype=np.uint64)"),
        ),
        phases=(
            PhaseSpec("scatter_a", "frontier_push", "a",
                      kernel="{src.x} + np.uint32(1)"),
            PhaseSpec("combine", "frontier_push", "c",
                      kernel="{src.a}.astype(np.uint64) + np.uint64(1)"),
        ),
        sync=(SyncDecl("a"),),
        frontier="all",
    )


def mismatch_spec():
    """Idempotent reduction + master hook: the reduce-op-only heuristic
    certifies it, the GL303 proof denies it — the mismatch must fire."""
    return ProgramSpec(
        name="fixture-mismatch",
        fields=(
            FieldDecl("alive", np.uint32, None,
                      "np.ones(n, dtype=np.uint32)"),
            FieldDecl("acc", np.uint32, "min",
                      "np.full(n, 4294967295, dtype=np.uint32)"),
        ),
        phases=(
            PhaseSpec("notify", "frontier_push", "acc",
                      kernel="np.uint32(1)",
                      guard="{alive} == np.uint32(1)"),
        ),
        sync=(SyncDecl(field="acc", broadcast="alive", hook=_noop_hook),),
        frontier="all",
    )


def tampered_spec():
    """Hand-pinned endpoints void every whole-program proof (GL305)."""
    return dataclasses.replace(
        PROGRAM_SPECS["bfs"],
        endpoint_overrides=(
            ("dist", (frozenset({"source"}),
                      frozenset({"source", "destination"}))),
        ),
    )


#: Hand-checked ground truth: dead sync phases per migrated spec.
EXPECTED_DEAD = {
    "bfs": {"iec": {"dist": ("reduce",)}},
    "sssp": {"iec": {"dist": ("reduce",)},
             "oec": {"dist": ("broadcast",)}},
    "cc": {"iec": {"label": ("reduce",)},
           "oec": {"label": ("broadcast",)}},
    "kcore": {"iec": {"removed_acc": ("reduce",)},
              "oec": {"removed_acc": ("broadcast",)}},
    "pr": {"iec": {"rank_acc": ("reduce",)},
           "oec": {"rank_acc": ("broadcast",)}},
    "pr-push": {"iec": {"residual": ("reduce",)},
                "oec": {"residual": ("broadcast",)}},
    "featprop": {"iec": {"feat_acc": ("reduce",)},
                 "oec": {"feat_acc": ("broadcast",)}},
    "labelprop": {"iec": {"count_acc": ("reduce",)},
                  "oec": {"count_acc": ("broadcast",)}},
}

#: Hand-checked ground truth: which migrated specs certify GL303.
EXPECTED_CERTIFIED = {
    "bfs": True,
    "sssp": True,
    "cc": True,
    "kcore": False,
    "pr": False,
    "pr-push": False,
    "featprop": False,
    "labelprop": False,
}


class TestGraphModel:
    def test_spec_graph_shape(self):
        graph = graph_from_spec(PROGRAM_SPECS["sssp"])
        assert graph.origin == "spec"
        assert [p.name for p in graph.phases] == ["relax"]
        assert [w.wire for w in graph.wires] == ["dist"]
        wire = graph.wires[0]
        assert wire.writes == frozenset({"destination"})
        assert wire.uses == frozenset({"source"})

    def test_bfs_pull_targets_keep_destination_use(self):
        """bfs's adopt phase reads dist in its pull_targets mask — a
        destination-side read invisible to derive_phase_access that the
        analyzer must add, or it would wrongly kill the broadcast
        under OEC."""
        graph = graph_from_spec(PROGRAM_SPECS["bfs"])
        wire = graph.wires[0]
        assert "destination" in wire.uses

    def test_ast_graph_recovered_from_handwritten(self):
        graph = graph_from_report(analyze_program(BFS))
        assert graph.origin == "ast"
        assert graph.wires, "no wires recovered from handwritten bfs"


class TestGL301:
    @pytest.mark.parametrize("app", sorted(EXPECTED_DEAD))
    def test_dead_sync_tables_are_exact(self, app):
        table = dead_sync_table(graph_from_spec(PROGRAM_SPECS[app]))
        assert table == EXPECTED_DEAD[app], app

    def test_bfs_broadcast_survives_oec(self):
        """The pull-path destination read keeps bfs's broadcast alive
        under OEC — the one asymmetry in the migrated-spec table."""
        table = dead_sync_table(graph_from_spec(PROGRAM_SPECS["bfs"]))
        assert "oec" not in table

    def test_findings_fire_on_every_spec(self):
        for app in EXPECTED_DEAD:
            found = [
                f for f in analyze_spec(PROGRAM_SPECS[app])
                if f.rule.rule_id == "GL301"
            ]
            assert found, f"{app}: no GL301 finding"
            assert all(f.severity == "info" for f in found)

    def test_handwritten_path_agrees_on_sssp(self):
        """AST recovery reaches the same oec-broadcast-dead conclusion
        the spec path proves (sssp has no pull path, so the AST
        conservatism does not mask it)."""
        findings = analyze_class(make_app("sssp").__class__)
        dead = [
            f.details for f in findings if f.rule.rule_id == "GL301"
        ]
        assert any(
            d["sync_phase"] == "broadcast" and "oec" in d["strategies"]
            for d in dead
        )

    def test_dead_phases_respect_strategy_invariants(self):
        """Under UVC/CVC mirrors can sit at either endpoint — nothing
        is ever provably dead there."""
        for app in EXPECTED_DEAD:
            table = dead_sync_table(graph_from_spec(PROGRAM_SPECS[app]))
            assert PartitionStrategy.UVC.value not in table
            assert PartitionStrategy.CVC.value not in table


class TestGL302:
    def test_fixture_pair_detected(self):
        pairs = fusion_candidates(graph_from_spec(fuse_spec()))
        assert [(a.name, b.name) for a, b in pairs] == [
            ("scatter_a", "scatter_b")
        ]

    def test_finding_fires(self):
        found = [
            f for f in analyze_spec(fuse_spec())
            if f.rule.rule_id == "GL302"
        ]
        assert len(found) == 1
        assert found[0].severity == "info"

    def test_no_candidates_on_migrated_specs(self):
        for app, spec in PROGRAM_SPECS.items():
            assert not fusion_candidates(graph_from_spec(spec)), app

    def test_read_dependency_blocks_fusion(self):
        """If the later phase consumes the earlier phase's target the
        shared gather would feed it pre-scatter values — not fusible."""
        spec = hazard_spec()
        assert not fusion_candidates(graph_from_spec(spec))


class TestGL303:
    @pytest.mark.parametrize("app", sorted(EXPECTED_CERTIFIED))
    def test_certificates_match_ground_truth(self, app):
        cert = certify_spec(PROGRAM_SPECS[app])
        assert cert.self_stabilizing is EXPECTED_CERTIFIED[app], (
            app, cert.reasons,
        )

    def test_no_mismatch_on_migrated_specs(self):
        """The certificate only *tightens* the old heuristic where the
        heuristic was wrong; on every migrated spec the two agree."""
        for app, spec in PROGRAM_SPECS.items():
            assert not certify_spec(spec).mismatch, app

    def test_mismatch_fixture_fires(self):
        cert = certify_spec(mismatch_spec())
        assert cert.heuristic, "fixture must pass the weak heuristic"
        assert not cert.self_stabilizing
        assert cert.reasons == ("no-master-hooks",)
        found = [
            f for f in analyze_spec(mismatch_spec())
            if f.rule.rule_id == "GL303"
        ]
        assert len(found) == 1
        assert found[0].severity == "warning"

    def test_handwritten_bc_denied(self):
        """bc folds accumulators through ADD — denied by heuristic and
        certificate alike (the ISSUE's misclassification concern turns
        out to be guarded twice)."""
        from repro.apps.bc import _ForwardBC

        cert = certificate_for(_ForwardBC)
        assert cert is not None
        assert not cert.self_stabilizing

    def test_certificate_for_handwritten_and_compiled(self):
        ast_cert = certificate_for(make_app("bfs"))
        assert ast_cert is not None
        assert ast_cert.origin == "ast"
        assert ast_cert.self_stabilizing
        spec_cert = certificate_for(make_app("bfs@compiled"))
        assert spec_cert is not None
        assert spec_cert.origin == "spec"
        assert spec_cert.self_stabilizing

    def test_ast_and_spec_paths_agree_on_registered_apps(self):
        for cls, spec in (
            (BFS, PROGRAM_SPECS["bfs"]),
            (ConnectedComponents, PROGRAM_SPECS["cc"]),
            (PageRank, PROGRAM_SPECS["pr"]),
        ):
            ast_cert = certify_report(analyze_program(cls))
            assert (
                ast_cert.self_stabilizing
                == certify_spec(spec).self_stabilizing
            ), cls.__name__


class TestMonotoneKernels:
    @pytest.mark.parametrize("kernel", [
        "{src.dist} + {w}",
        "{src.label}",
        "np.minimum({dst.a}, {src.x} + np.uint32(1))",
        "np.maximum({src.a}, {dst.a})",
        "{src.feat_acc}.astype(np.float64)",
        "np.uint32(1)",
        "{src.x} * 2",
    ])
    def test_monotone(self, kernel):
        assert kernel_is_monotone(kernel)

    @pytest.mark.parametrize("kernel", [
        "np.where({dst.dist} > level, np.uint32(level + 1), {dst.dist})",
        "{src.rank} / np.maximum({src.out_degree}, 1)",
        "{src.x} * -1",
        "-{src.x}",
    ])
    def test_non_monotone(self, kernel):
        assert not kernel_is_monotone(kernel)

    def test_missing_kernel_is_vacuously_monotone(self):
        assert kernel_is_monotone(None)


class TestGL304:
    def test_hazard_fixture_fires_error(self):
        found = [
            f for f in analyze_spec(hazard_spec())
            if f.rule.rule_id == "GL304"
        ]
        assert found, "stale-read hazard not detected"
        assert all(f.severity == "error" for f in found)

    def test_optimize_gate_refuses_hazard(self):
        from repro.compiler.program_codegen import compile_program
        from repro.compiler.spec import CompileError

        with pytest.raises(CompileError, match="GL304"):
            compile_program(hazard_spec(), optimize=True)
        # The unoptimized build is still allowed (hazard diagnostics
        # are for the optimizer's proofs, not a new compile gate).
        assert compile_program(hazard_spec()) is not None

    def test_handwritten_cc_same_statement_is_clean(self):
        """cc's pull direction gathers and scatters in one statement
        spanning several source lines; line-order comparison used to
        misread it as a stale read-after-write.  Statement identity
        (AccessEvent.statement) must keep it clean."""
        findings = analyze_class(ConnectedComponents)
        assert not [
            f for f in findings if f.rule.rule_id == "GL304"
        ]


class TestGL305:
    def test_tampered_spec_flagged_and_analysis_halts(self):
        findings = analyze_spec(tampered_spec())
        assert [f.rule.rule_id for f in findings] == ["GL305"]
        assert findings[0].severity == "warning"

    def test_tampered_spec_yields_empty_tables(self):
        graph = graph_from_spec(tampered_spec())
        assert graph.overridden
        assert dead_sync_table(graph) == {}
        assert fusion_candidates(graph) == []

    def test_optimizer_refuses_tampered_proofs(self):
        from repro.compiler.program_codegen import render_program

        source = render_program(tampered_spec(), optimize=True)
        assert "_DEAD_SYNC" not in source
        assert "sync_phases" not in source


class TestCleanSweep:
    def test_no_errors_or_mismatches_on_any_registered_program(self):
        programs = [
            cls
            for _, app_programs in all_builtin_programs()
            for cls in app_programs
        ]
        programs.extend(cls for _, cls in all_compiled_programs())
        findings = dataflow_programs(programs)
        assert findings, "the sweep found nothing at all"
        bad = [
            f for f in findings
            if f.rule.rule_id in ("GL303", "GL304", "GL305")
            or f.severity == "error"
        ]
        assert not bad, [f"{f.rule.rule_id}: {f.message}" for f in bad]

    def test_lint_integration(self):
        from repro.analysis.linter import run_lint

        _, plain = run_lint()
        _, with_dataflow = run_lint(dataflow=True)
        gl3 = [
            f for f in with_dataflow if f.rule.rule_id.startswith("GL3")
        ]
        assert gl3, "--dataflow added no GL3xx findings"
        assert len(with_dataflow) == len(plain) + len(gl3)
