"""Tests for the experiment harnesses (at tiny scales for speed)."""

import pytest

from repro.analysis import experiments
from repro.analysis.tables import format_table
from repro.core.optimization import OptimizationLevel


class TestTable1:
    def test_rows_cover_all_workloads(self):
        rows = experiments.table1_rows(scale_delta=-3)
        assert len(rows) == 6
        assert {row["stands in for"] for row in rows} == set(
            experiments.PAPER_TABLE1
        )

    def test_rows_render(self):
        text = format_table(experiments.table1_rows(scale_delta=-3))
        assert "rmat24s" in text


class TestBenchNetwork:
    def test_cpu_systems_use_scaled_lci(self):
        params = experiments.bench_network("d-galois", 16)
        assert params.name == "lci-scaled"

    def test_gunrock_uses_intranode(self):
        params = experiments.bench_network("gunrock", 4)
        assert params.name == "intra-node-scaled"

    def test_dirgl_switches_fabric_with_size(self):
        intra = experiments.bench_network("d-irgl", 4)
        inter = experiments.bench_network("d-irgl", 16)
        assert intra.name == "intra-node-scaled"
        assert inter.name == "lci-scaled"

    def test_gpu_fabric_faster_than_cpu_fabric(self):
        gpu = experiments.bench_network("d-irgl", 16)
        cpu = experiments.bench_network("d-galois", 16)
        assert gpu.bandwidth_bytes_per_s > cpu.bandwidth_bytes_per_s


class TestMetadataModeRows:
    def test_density_sweep_structure(self):
        rows = experiments.metadata_mode_rows(num_agreed=1024)
        assert rows[0]["mode"] == "EMPTY"
        assert rows[-1]["mode"] == "FULL"
        modes = [row["mode"] for row in rows]
        assert "BITVEC" in modes and "INDICES" in modes


class TestReplicationRows:
    def test_structure(self):
        rows = experiments.replication_rows(
            scale_delta=-3, hosts=(2, 4), workload="rmat24s"
        )
        assert len(rows) == 2
        for row in rows:
            for policy in ("oec", "iec", "cvc", "hvc", "gemini"):
                assert row[policy] >= 1.0


class TestFig10Speedup:
    def test_speedup_computation(self):
        rows = [
            {"panel": "p", "app": "bfs", "level": "unopt", "time_ms": 4.0},
            {"panel": "p", "app": "bfs", "level": "osti", "time_ms": 2.0},
            {"panel": "p", "app": "cc", "level": "unopt", "time_ms": 9.0},
            {"panel": "p", "app": "cc", "level": "osti", "time_ms": 1.0},
        ]
        assert experiments.fig10_speedup(rows) == pytest.approx(
            (2.0 * 9.0) ** 0.5
        )

    def test_small_end_to_end(self):
        rows = experiments.fig10_rows(
            scale_delta=-2,
            configs=[("d-galois", "rmat24s", "cvc", 4)],
            apps=("bfs",),
        )
        assert len(rows) == 4
        assert {row["level"] for row in rows} == {
            level.value for level in OptimizationLevel
        }
        assert experiments.fig10_speedup(rows) > 1.0


class TestRoundCountRows:
    def test_small_end_to_end(self):
        rows = experiments.round_count_rows(
            scale_delta=-2, num_hosts=4, inputs=("rmat24s",), apps=("bfs",)
        )
        assert len(rows) == 1
        assert rows[0]["d-ligra rounds"] >= rows[0]["d-galois rounds"]
