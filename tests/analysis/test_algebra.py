"""Algebraic reduction checker: broken ops caught, registry clean."""

import numpy as np

from repro.analysis import check_reduction, check_reductions
from repro.core.sync_structures import REDUCTIONS, ReductionOp


def _rule_ids(findings):
    return sorted({f.rule_id for f in findings})


class TestBrokenOps:
    def test_bad_identity_fires_gl101(self):
        op = ReductionOp(
            name="bad-identity-add",
            combine=lambda a, b: a + b,
            identity_for=lambda dtype: dtype.type(1),  # 1 + x != x
            idempotent=False,
        )
        findings = check_reduction(op)
        assert "GL101" in _rule_ids(findings)
        assert all(f.severity == "error" for f in findings)

    def test_false_idempotence_fires_gl102(self):
        op = ReductionOp(
            name="false-idempotent-add",
            combine=lambda a, b: a + b,
            identity_for=lambda dtype: dtype.type(0),
            idempotent=True,  # add(a, a) == 2a
        )
        assert "GL102" in _rule_ids(check_reduction(op))

    def test_false_commutativity_fires_gl103(self):
        # First-nonidentity-wins: both identity laws hold, but the
        # result depends on application order.
        op = ReductionOp(
            name="first-wins",
            combine=lambda a, b: np.where(a == 0, b, a),
            identity_for=lambda dtype: dtype.type(0),
            idempotent=True,
        )
        ids = _rule_ids(check_reduction(op))
        assert "GL103" in ids
        assert "GL101" not in ids

    def test_undeclared_idempotence_fires_gl104(self):
        op = ReductionOp(
            name="shy-min",
            combine=np.minimum,
            identity_for=lambda dtype: (
                dtype.type(np.iinfo(dtype).max)
                if np.issubdtype(dtype, np.integer)
                else dtype.type(np.finfo(dtype).max)
            ),
            idempotent=False,  # min is idempotent; declaring it isn't
        )
        findings = check_reduction(op)
        assert _rule_ids(findings) == ["GL104"]
        assert findings[0].severity == "info"

    def test_partial_dtype_ops_are_checked_where_defined(self):
        # bitwise-or has no float meaning; the checker must skip the
        # dtype instead of crashing, and still catch integer defects.
        op = ReductionOp(
            name="bad-bor",
            combine=np.bitwise_or,
            identity_for=lambda dtype: dtype.type(1),  # 1 | x != x
            idempotent=True,
        )
        assert "GL101" in _rule_ids(check_reduction(op))


class TestRegistry:
    def test_builtin_registry_is_clean(self):
        findings = check_reductions()
        assert findings == [], [f.to_dict() for f in findings]

    def test_duplicate_ops_measured_once(self):
        op = REDUCTIONS["min"]
        findings = check_reductions([op, op, op])
        assert findings == []

    def test_assign_declared_noncommutative(self):
        # The declaration that makes GL009/GL103 meaningful: assign is
        # order-dependent and says so, so no algebraic finding fires.
        assert not REDUCTIONS["assign"].commutative
        assert check_reduction(REDUCTIONS["assign"]) == []
