"""Tests for the ASCII plot renderer."""

import pytest

from repro.analysis.plots import ascii_plot, scaling_plot


class TestAsciiPlot:
    def test_renders_markers_and_legend(self):
        text = ascii_plot(
            {"a": [(1, 1), (10, 10)], "b": [(1, 10), (10, 1)]},
            title="t",
        )
        assert text.startswith("t")
        assert "o=a" in text and "x=b" in text
        assert "o" in text and "x" in text

    def test_empty_series(self):
        assert "(no data)" in ascii_plot({})
        assert "(no data)" in ascii_plot({"a": []})

    def test_log_scale_requires_positive(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": [(0, 1)]})

    def test_linear_scale_allows_zero(self):
        text = ascii_plot(
            {"a": [(0, 0), (5, 5)]}, log_x=False, log_y=False
        )
        assert "o" in text

    def test_extreme_corners_land_on_canvas(self):
        text = ascii_plot(
            {"a": [(1, 1)], "b": [(100, 100)]}, width=20, height=5
        )
        lines = text.splitlines()
        body = [line for line in lines if line.startswith("|")]
        assert body[0].rstrip("|").rstrip().endswith("x")  # top right
        assert body[-1][1] == "o"  # bottom left

    def test_constant_series_handled(self):
        text = ascii_plot({"flat": [(1, 5), (10, 5)]})
        assert "o" in text

    def test_axis_annotations(self):
        text = ascii_plot(
            {"a": [(2, 3), (20, 30)]}, x_label="hosts", y_label="ms"
        )
        assert "hosts:" in text
        assert "ms:" in text
        assert "(log)" in text


class TestScalingPlot:
    def test_groups_rows_into_series(self):
        rows = [
            {"hosts": 2, "time": 4.0, "system": "a"},
            {"hosts": 4, "time": 2.0, "system": "a"},
            {"hosts": 2, "time": 8.0, "system": "b"},
            {"hosts": 4, "time": 6.0, "system": "b"},
        ]
        text = scaling_plot(rows, "hosts", "time", "system", title="s")
        assert "o=a" in text and "x=b" in text

    def test_sorts_points_by_x(self):
        rows = [
            {"x": 10, "y": 1.0, "s": "a"},
            {"x": 1, "y": 2.0, "s": "a"},
        ]
        text = scaling_plot(rows, "x", "y", "s")
        assert "x: 1 .. 10" in text
