"""CLI surface of the contract checker: ``repro lint`` and ``--sanitize``."""

import json

import pytest

from repro.cli import main

import tests.analysis.broken_programs as broken_programs

FIXTURE_PATH = broken_programs.__file__


class TestLintCommand:
    def test_default_sweep_is_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "linting:" in out
        assert "0 error(s)" in out

    def test_single_app_target(self, capsys):
        assert main(["lint", "--app", "bfs"]) == 0
        assert "linting: bfs" in capsys.readouterr().out

    def test_unknown_app_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "--app", "wcc"])

    def test_broken_module_exits_nonzero(self, capsys):
        assert main(["lint", "--module", FIXTURE_PATH]) == 1
        out = capsys.readouterr().out
        assert "GL001" in out
        assert "GL003" in out

    def test_json_document(self, capsys):
        assert main(["lint", "--module", FIXTURE_PATH, "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["targets"] == [FIXTURE_PATH]
        assert doc["counts"]["error"] > 0
        rules = {f["rule"] for f in doc["findings"]}
        assert {"GL001", "GL002", "GL003"} <= rules
        first = doc["findings"][0]
        assert {"rule", "severity", "subject", "message", "file", "line"} <= (
            set(first)
        )
        # Errors sort before warnings before infos.
        severities = [f["severity"] for f in doc["findings"]]
        order = {"error": 0, "warning": 1, "info": 2}
        assert severities == sorted(severities, key=order.__getitem__)

    def test_rules_catalog(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("GL001", "GL010", "GL101", "GL104", "GL201", "GL202"):
            assert rule_id in out

    def test_app_and_module_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["lint", "--app", "bfs", "--module", FIXTURE_PATH])


class TestRunSanitize:
    _BASE = [
        "run",
        "--system", "d-galois",
        "--app", "bfs",
        "--workload", "rmat22s",
        "--scale-delta", "-5",
        "--hosts", "2",
    ]

    def test_clean_run_reports_clean(self, capsys):
        assert main(self._BASE + ["--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer          : clean (no contract violations)" in out

    def test_sanitize_preserves_results(self, capsys):
        assert main(self._BASE + ["--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert main(self._BASE + ["--sanitize", "--json"]) == 0
        guarded = json.loads(capsys.readouterr().out)
        assert "sanitizer_findings" not in guarded
        assert guarded["summary"]["rounds"] == plain["summary"]["rounds"]
        assert guarded["summary"]["comm_MB"] == plain["summary"]["comm_MB"]
