"""Proxy-access sanitizer: transparent on clean runs, loud on broken ones."""

import numpy as np
import pytest

from repro.engines import make_engine
from repro.graph.generators import rmat
from repro.partition import make_partitioner
from repro.runtime.executor import DistributedExecutor
from repro.systems import prepare_input, run_app

from tests.analysis.broken_programs import (
    WrongReadEndpoint,
    WrongWriteEndpoint,
)

RESULT_KEYS = {"bfs": "dist", "cc": "label", "pr-push": "rank"}


@pytest.fixture(scope="module")
def sanitizer_rmat():
    return rmat(scale=7, edge_factor=8, seed=3)


def _run_broken(edges, program, policy="oec", num_hosts=3, sanitize=True):
    prep = prepare_input("bfs", edges)
    partitioned = make_partitioner(policy).partition(prep.edges, num_hosts)
    executor = DistributedExecutor(
        partitioned,
        make_engine("galois"),
        program,
        prep.ctx,
        system_name="d-galois",
        sanitize=sanitize,
    )
    result = executor.run(max_rounds=100)
    return executor, result


class TestTransparency:
    @pytest.mark.parametrize("app_name", sorted(RESULT_KEYS))
    def test_bitwise_identical_and_clean(self, sanitizer_rmat, app_name):
        plain = run_app("d-galois", app_name, sanitizer_rmat, 3)
        guarded = run_app(
            "d-galois", app_name, sanitizer_rmat, 3, sanitize=True
        )
        assert guarded.sanitizer_findings == []
        key = RESULT_KEYS[app_name]
        assert np.array_equal(
            plain.executor.gather_result(key),
            guarded.executor.gather_result(key),
        )
        assert guarded.num_rounds == plain.num_rounds
        assert guarded.communication_volume == plain.communication_volume

    def test_bc_two_phase_clean(self, sanitizer_rmat):
        plain = run_app("d-galois", "bc", sanitizer_rmat, 3)
        guarded = run_app("d-galois", "bc", sanitizer_rmat, 3, sanitize=True)
        assert guarded.sanitizer_findings == []
        assert np.array_equal(
            plain.executor.gather_result("delta"),
            guarded.executor.gather_result("delta"),
        )

    def test_guards_are_removed_after_each_round(self, sanitizer_rmat):
        executor, _ = _run_broken(
            sanitizer_rmat, WrongWriteEndpoint(), sanitize=True
        )
        for state in executor.states:
            assert type(state["dist"]) is np.ndarray


class TestViolations:
    def test_lost_update_fires_gl201(self, sanitizer_rmat):
        _, result = _run_broken(sanitizer_rmat, WrongWriteEndpoint())
        rules = {f["rule"] for f in result.sanitizer_findings}
        assert rules == {"GL201"}
        finding = result.sanitizer_findings[0]
        assert finding["severity"] == "error"
        assert finding["field"] == "dist"
        assert finding["subject"] == "WrongWriteEndpoint"
        assert finding["details"]["count"] > 0
        assert finding["details"]["sample_global_ids"]
        assert finding["file"].endswith("broken_programs.py")

    def test_stale_read_fires_gl202(self, sanitizer_rmat):
        _, result = _run_broken(sanitizer_rmat, WrongReadEndpoint())
        rules = {f["rule"] for f in result.sanitizer_findings}
        assert "GL202" in rules
        finding = next(
            f for f in result.sanitizer_findings if f["rule"] == "GL202"
        )
        # Reads are only audited once a sync has completed: round 1's
        # pre-broadcast reads are legitimately unchecked.
        assert finding["details"]["first_round"] >= 2

    def test_unsanitized_broken_run_stays_silent(self, sanitizer_rmat):
        _, result = _run_broken(
            sanitizer_rmat, WrongWriteEndpoint(), sanitize=False
        )
        assert result.sanitizer_findings == []

    def test_findings_reach_json_payload(self, sanitizer_rmat):
        import json

        _, result = _run_broken(sanitizer_rmat, WrongWriteEndpoint())
        payload = json.loads(result.to_json())
        assert payload["sanitizer_findings"][0]["rule"] == "GL201"
