"""The bounded priority queue: ordering, backpressure, shedding."""

import pytest

from repro.errors import AdmissionError, ServiceError
from repro.observability.metrics import MetricsRegistry
from repro.service import JobQueue, JobSpec


def _spec(app="bfs", priority=0, **kw):
    return JobSpec(app=app, workload="rmat22s", priority=priority, **kw)


class TestOrdering:
    def test_higher_priority_first(self):
        queue = JobQueue()
        queue.push(_spec(app="bfs", priority=0))
        queue.push(_spec(app="pr", priority=5))
        queue.push(_spec(app="cc", priority=2))
        assert [s.app for s in queue.drain()] == ["pr", "cc", "bfs"]

    def test_fifo_within_a_priority_class(self):
        queue = JobQueue()
        for hosts in (2, 4, 8):
            queue.push(_spec(hosts=hosts, priority=1))
        assert [s.hosts for s in queue.drain()] == [2, 4, 8]

    def test_pop_empties_then_returns_none(self):
        queue = JobQueue()
        queue.push(_spec())
        assert queue.pop() is not None
        assert queue.pop() is None
        assert queue.depth == 0


class TestAdmission:
    def test_reject_raises_with_depth(self):
        queue = JobQueue(max_pending=2)
        queue.push(_spec(hosts=2))
        queue.push(_spec(hosts=4))
        with pytest.raises(AdmissionError, match="queue full") as exc:
            queue.push(_spec(hosts=8))
        assert exc.value.depth == 2
        assert queue.depth == 2  # nothing lost

    def test_shed_evicts_lowest_priority_for_a_higher_one(self):
        queue = JobQueue(max_pending=2, admission="shed")
        queue.push(_spec(app="bfs", priority=0))
        queue.push(_spec(app="pr", priority=3))
        queue.push(_spec(app="cc", priority=1))  # outranks bfs -> sheds it
        assert sorted(s.app for s in queue.drain()) == ["cc", "pr"]

    def test_shed_still_rejects_an_equal_priority_job(self):
        queue = JobQueue(max_pending=1, admission="shed")
        queue.push(_spec(app="bfs", priority=1))
        with pytest.raises(AdmissionError, match="does not outrank"):
            queue.push(_spec(app="pr", priority=1))

    def test_shed_victim_is_newest_within_lowest_class(self):
        queue = JobQueue(max_pending=2, admission="shed")
        queue.push(_spec(hosts=2, priority=0))
        queue.push(_spec(hosts=4, priority=0))
        queue.push(_spec(app="pr", priority=5))  # sheds the hosts=4 entry
        assert [(s.app, s.hosts) for s in queue.drain()] == [
            ("pr", 4), ("bfs", 2)
        ]

    def test_configuration_is_validated(self):
        with pytest.raises(ServiceError, match="max_pending"):
            JobQueue(max_pending=0)
        with pytest.raises(ServiceError, match="admission"):
            JobQueue(admission="fifo")


class TestInstrumentation:
    def test_depth_gauge_and_rejection_counters(self):
        metrics = MetricsRegistry()
        queue = JobQueue(max_pending=1, metrics=metrics)
        queue.push(_spec())
        assert metrics.gauge("service_queue_depth").value == 1
        with pytest.raises(AdmissionError):
            queue.push(_spec(hosts=8))
        assert (
            metrics.counter_total("service_jobs_rejected_total") == 1
        )
        queue.drain()
        assert metrics.gauge("service_queue_depth").value == 0

    def test_pending_hashes_groups_identical_work(self):
        queue = JobQueue()
        queue.push(_spec(priority=1))
        queue.push(_spec(priority=4))  # same work, different scheduling
        queue.push(_spec(app="pr"))
        counts = queue.pending_hashes()
        assert sorted(counts.values()) == [1, 2]
