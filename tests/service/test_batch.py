"""The ``repro serve`` batch-file format."""

import json

import pytest

from repro.errors import JobSpecError
from repro.service import load_batch
from repro.service.batch import parse_batch


class TestParseBatch:
    def test_bare_list(self):
        specs = parse_batch(
            [
                {"app": "bfs", "workload": "rmat22s"},
                {"app": "pr", "workload": "rmat22s", "hosts": 8},
            ]
        )
        assert [s.app for s in specs] == ["bfs", "pr"]
        assert specs[1].hosts == 8

    def test_defaults_merge_under_each_job(self):
        specs = parse_batch(
            {
                "defaults": {"workload": "rmat22s", "hosts": 8},
                "jobs": [
                    {"app": "bfs"},
                    {"app": "pr", "hosts": 2},  # job fields win
                ],
            }
        )
        assert specs[0].hosts == 8
        assert specs[1].hosts == 2

    def test_unknown_batch_keys_are_errors(self):
        with pytest.raises(JobSpecError, match="unknown batch key"):
            parse_batch({"jobs": [], "retries": 3})

    def test_missing_jobs_list(self):
        with pytest.raises(JobSpecError, match='"jobs"'):
            parse_batch({"defaults": {}})

    def test_empty_batch(self):
        with pytest.raises(JobSpecError, match="no jobs"):
            parse_batch([])

    def test_job_errors_name_the_offending_entry(self):
        with pytest.raises(JobSpecError, match="job #2"):
            parse_batch(
                [
                    {"app": "bfs", "workload": "rmat22s"},
                    {"app": "warp", "workload": "rmat22s"},
                ]
            )

    def test_non_object_job(self):
        with pytest.raises(JobSpecError, match="job #1"):
            parse_batch(["bfs"])

    def test_non_list_document(self):
        with pytest.raises(JobSpecError, match="batch document"):
            parse_batch("jobs.json")


class TestLoadBatch:
    def test_roundtrip_from_disk(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(
            json.dumps(
                {
                    "defaults": {"workload": "rmat22s"},
                    "jobs": [{"app": "bfs"}, {"app": "cc", "priority": 2}],
                }
            )
        )
        specs = load_batch(path)
        assert [s.app for s in specs] == ["bfs", "cc"]
        assert specs[1].priority == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(JobSpecError, match="not found"):
            load_batch(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{jobs: [")
        with pytest.raises(JobSpecError, match="not valid JSON"):
            load_batch(path)
