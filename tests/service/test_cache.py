"""The two-level cache: LRU order, integrity frames, corruption fallback."""

import pickle

import pytest

from repro.errors import CacheError
from repro.observability.metrics import MetricsRegistry
from repro.service import CacheLevel, ServiceCache
from repro.service.cache import _frame, _unframe


class TestIntegrityFrame:
    def test_roundtrip(self):
        assert _unframe(_frame(b"payload")) == b"payload"

    def test_flipped_byte_is_refused(self):
        blob = bytearray(_frame(b"payload"))
        blob[-1] ^= 0xFF
        assert _unframe(bytes(blob)) is None

    def test_garbage_is_refused(self):
        assert _unframe(b"not a frame") is None
        assert _unframe(b"") is None


class TestLRUMemory:
    def test_eviction_is_least_recently_used(self):
        level = CacheLevel("partition", max_entries=2)
        level.put("a", 1)
        level.put("b", 2)
        assert level.get("a") == 1  # touch: b is now the LRU victim
        level.put("c", 3)
        assert level.keys() == ["a", "c"]
        assert level.get("b") is None

    def test_put_refreshes_recency(self):
        level = CacheLevel("partition", max_entries=2)
        level.put("a", 1)
        level.put("b", 2)
        level.put("a", 10)  # re-store: a is now most recent
        level.put("c", 3)
        assert level.get("a") == 10
        assert level.get("b") is None

    def test_capacity_bound_is_validated(self):
        with pytest.raises(CacheError, match="max_entries"):
            CacheLevel("partition", max_entries=0)


class TestLRUDisk:
    def test_entries_survive_a_new_instance(self, tmp_path):
        CacheLevel("result", directory=tmp_path).put("k", {"x": 1})
        reopened = CacheLevel("result", directory=tmp_path)
        assert reopened.get("k") == {"x": 1}

    def test_eviction_deletes_the_file(self, tmp_path):
        level = CacheLevel("result", directory=tmp_path, max_entries=1)
        level.put("a", 1)
        level.put("b", 2)
        assert not (tmp_path / "result" / "a.blob").exists()
        assert (tmp_path / "result" / "b.blob").exists()
        assert len(level) == 1

    def test_get_deserializes_a_fresh_object(self, tmp_path):
        level = CacheLevel("result", directory=tmp_path)
        stored = {"nested": [1, 2, 3]}
        level.put("k", stored)
        fetched = level.get("k")
        assert fetched == stored and fetched is not stored
        fetched["nested"].append(4)
        assert level.get("k") == stored  # cache state was not aliased


class TestCorruption:
    def test_flipped_byte_falls_back_to_miss(self, tmp_path):
        metrics = MetricsRegistry()
        level = CacheLevel("result", directory=tmp_path, metrics=metrics)
        level.put("k", "value")
        path = tmp_path / "result" / "k.blob"
        blob = bytearray(path.read_bytes())
        blob[70] ^= 0xFF  # flip a payload byte under the digest
        path.write_bytes(bytes(blob))
        assert level.get("k") is None
        assert level.corruptions.value == 1
        assert not path.exists()  # dropped, so recompute can re-store
        level.put("k", "recomputed")
        assert level.get("k") == "recomputed"

    def test_valid_frame_around_bad_pickle_counts_too(self, tmp_path):
        level = CacheLevel(
            "result", directory=tmp_path, metrics=MetricsRegistry()
        )
        path = tmp_path / "result" / "k.blob"
        path.write_bytes(_frame(b"\x80\x05 this is not pickle"))
        level._order["k"] = None  # adopted entry
        assert level.get("k") is None
        assert level.corruptions.value == 1

    def test_file_deleted_behind_our_back_is_a_miss(self, tmp_path):
        level = CacheLevel(
            "result", directory=tmp_path, metrics=MetricsRegistry()
        )
        level.put("k", "value")
        (tmp_path / "result" / "k.blob").unlink()
        assert level.get("k") is None
        assert level.misses.value == 1


class TestCounters:
    def test_hit_miss_store_eviction_counts(self):
        metrics = MetricsRegistry()
        level = CacheLevel("partition", max_entries=1, metrics=metrics)
        assert level.get("a") is None
        level.put("a", 1)
        assert level.get("a") == 1
        level.put("b", 2)  # evicts a
        snapshot = level.stats()
        assert snapshot == {
            "entries": 1, "hits": 1, "misses": 1,
            "evictions": 1, "corruptions": 0, "stores": 2,
            "reuses": 0, "invalidations": 0,
        }
        assert (
            metrics.counter_total("service_cache_hits_total") == 1
        )

    def test_levels_are_labeled_separately(self):
        metrics = MetricsRegistry()
        cache = ServiceCache(metrics=metrics)
        cache.partitions.get("x")
        cache.results.get("y")
        cache.results.get("z")
        stats = cache.stats()
        assert stats["partition"]["misses"] == 1
        assert stats["result"]["misses"] == 2


class TestServiceCache:
    def test_partition_entry_carries_prepared_sync(self):
        cache = ServiceCache()
        cache.put_partition("key", "the-partition", prepared_sync="books")
        entry = cache.get_partition("key")
        assert entry.partitioned == "the-partition"
        assert entry.prepared_sync == "books"
        assert cache.get_partition("other") is None

    def test_result_level_refuses_foreign_types(self, tmp_path):
        cache = ServiceCache(directory=tmp_path)
        # Simulate a key collision with data that is not a JobResult.
        cache.results.put("h" * 64, {"not": "a JobResult"})
        assert cache.get_result("h" * 64) is None

    def test_disk_roundtrip_of_numpy_payloads(self, tmp_path):
        import numpy as np

        from repro.service.spec import JobResult, values_digest

        values = np.arange(32, dtype=np.uint32)
        result = JobResult(
            job_id="j", spec_hash="s" * 64, spec={"app": "bfs"},
            values=values, output_digest=values_digest(values),
        )
        ServiceCache(directory=tmp_path).put_result("s" * 64, result)
        fetched = ServiceCache(directory=tmp_path).get_result("s" * 64)
        assert np.array_equal(fetched.values, values)
        assert fetched.output_digest == values_digest(fetched.values)


class TestPickleStability:
    def test_frame_uses_highest_protocol(self):
        # Documented invariant: disk entries are plain pickle under the
        # frame, so the multiprocessing workers can read them.
        payload = _unframe(_frame(pickle.dumps([1, 2])))
        assert pickle.loads(payload) == [1, 2]
