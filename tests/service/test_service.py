"""End-to-end service behavior: caching soundness, retries, backends."""

import numpy as np
import pytest

from repro.errors import ExecutionError, ServiceError
from repro.observability.metrics import MetricsRegistry
from repro.service import (
    JobService,
    JobSpec,
    ServiceCache,
    ServiceConfig,
    execute_job,
    serve_batch,
)
from repro.service import worker as worker_module

#: Small enough to keep every test fast; big enough to run real rounds.
SCALE = -6


def _spec(app="bfs", **kw):
    kw.setdefault("policy", "cvc")
    kw.setdefault("scale_delta", SCALE)
    return JobSpec(app=app, workload="rmat22s", **kw)


class TestResultCache:
    def test_identical_resubmit_hits_and_is_bitwise_identical(self):
        metrics = MetricsRegistry()
        cache = ServiceCache(metrics=metrics)
        cold = execute_job(_spec(), cache=cache)
        warm = execute_job(_spec(), cache=cache)
        assert cold.result_cache == "miss"
        assert warm.result_cache == "hit"
        # Bitwise-identical output and identical deterministic payload.
        assert np.array_equal(cold.values, warm.values)
        assert cold.payload() == warm.payload()
        assert cold.output_digest == warm.output_digest
        # The hit skipped partitioning entirely: only the cold run stored
        # a partition, and the warm lookup touched no partition entry.
        stats = cache.stats()
        assert stats["result"]["hits"] == 1
        assert stats["partition"]["stores"] == 1
        assert stats["partition"]["misses"] == 1

    def test_hit_survives_the_disk_and_a_new_process_view(self, tmp_path):
        cold = execute_job(_spec(), cache=ServiceCache(directory=tmp_path))
        warm = execute_job(_spec(), cache=ServiceCache(directory=tmp_path))
        assert warm.result_cache == "hit"
        assert np.array_equal(cold.values, warm.values)

    def test_decayed_entry_recomputes_instead_of_serving(self):
        cache = ServiceCache()
        spec = _spec()
        cold = execute_job(spec, cache=cache)
        # Corrupt the stored values so the digest re-check fails.
        stored = cache.get_result(spec.content_hash())
        stored.values = stored.values + 1
        cache.put_result(spec.content_hash(), stored)
        again = execute_job(spec, cache=cache)
        assert again.result_cache == "miss"  # fell through to recompute
        assert np.array_equal(again.values, cold.values)

    def test_scheduling_fields_share_one_cache_entry(self):
        cache = ServiceCache()
        execute_job(_spec(priority=0), cache=cache)
        warm = execute_job(_spec(priority=9, max_attempts=3), cache=cache)
        assert warm.result_cache == "hit"
        assert warm.priority == 9  # bookkeeping reflects *this* submission


class TestPartitionCache:
    def test_second_app_on_same_graph_reuses_the_partition(self):
        cache = ServiceCache()
        bfs = execute_job(_spec("bfs"), cache=cache)
        pr = execute_job(_spec("pr"), cache=cache)
        assert bfs.partition_cache == "miss"
        assert pr.partition_cache == "hit"
        # Warm construction is credited, not skipped, in the accounting:
        # a cached partition must not change the deterministic answer.
        assert pr.construction_bytes > 0

    def test_cc_keys_apart_because_it_symmetrizes(self):
        cache = ServiceCache()
        execute_job(_spec("bfs"), cache=cache)
        cc = execute_job(_spec("cc", policy="oec"), cache=cache)
        assert cc.partition_cache == "miss"

    def test_warm_and_cold_runs_agree_on_everything_deterministic(self):
        cold = execute_job(_spec("pr"), cache=ServiceCache())
        shared = ServiceCache()
        execute_job(_spec("bfs"), cache=shared)  # seeds the partition
        warm = execute_job(_spec("pr"), cache=shared)
        assert warm.partition_cache == "hit"
        assert cold.payload() == warm.payload()
        assert np.array_equal(cold.values, warm.values)


class TestRetries:
    def test_transient_failure_retries_with_backoff(self, monkeypatch):
        real = worker_module._run_once
        failures = {"left": 2}

        def flaky(spec, cache):
            if failures["left"]:
                failures["left"] -= 1
                raise ExecutionError("injected transient failure")
            return real(spec, cache)

        monkeypatch.setattr(worker_module, "_run_once", flaky)
        naps = []
        result = execute_job(
            _spec(max_attempts=3), backoff_s=0.01, sleep=naps.append
        )
        assert result.status == "ok"
        assert result.attempts == 3
        assert naps == [0.01, 0.02]  # exponential
        assert result.backoff_s == pytest.approx(0.03)

    def test_exhausted_attempts_fail_without_raising(self, monkeypatch):
        def doomed(spec, cache):
            raise ExecutionError("always down")

        monkeypatch.setattr(worker_module, "_run_once", doomed)
        result = execute_job(
            _spec(max_attempts=2), backoff_s=0.0, sleep=lambda _s: None
        )
        assert result.status == "failed"
        assert result.attempts == 2
        assert "always down" in result.error

    def test_programming_errors_still_propagate(self, monkeypatch):
        def buggy(spec, cache):
            raise ValueError("a bug, not a fault")

        monkeypatch.setattr(worker_module, "_run_once", buggy)
        with pytest.raises(ValueError):
            execute_job(_spec(max_attempts=3), sleep=lambda _s: None)


class TestJobService:
    def test_batch_runs_in_priority_order_and_counts(self):
        service = JobService(ServiceConfig())
        results = service.run_batch(
            [_spec("bfs"), _spec("pr", priority=2), _spec("cc", policy="oec")]
        )
        assert [r.spec["app"] for r in results] == ["pr", "bfs", "cc"]
        stats = service.stats()
        assert stats["jobs"]["submitted"] == 3
        assert stats["jobs"]["completed"] == 3
        assert stats["jobs"]["failed"] == 0
        assert stats["queue_depth"] == 0

    def test_resubmitted_batch_is_all_result_hits(self):
        service = JobService(ServiceConfig())
        specs = [_spec("bfs"), _spec("pr")]
        first = service.run_batch(specs)
        second = service.run_batch(specs)
        assert all(r.result_cache == "hit" for r in second)
        assert service.stats()["jobs"]["result_cache_hits"] == 2
        for cold, warm in zip(first, second):
            assert np.array_equal(cold.values, warm.values)

    def test_failed_jobs_count_without_poisoning_the_batch(
        self, monkeypatch
    ):
        real = worker_module._run_once

        def flaky(spec, cache):
            if spec.app == "pr":
                raise ExecutionError("down")
            return real(spec, cache)

        monkeypatch.setattr(worker_module, "_run_once", flaky)
        service = JobService(ServiceConfig(retry_backoff_s=0.0))
        results = service.run_batch([_spec("bfs"), _spec("pr")])
        by_app = {r.spec["app"]: r for r in results}
        assert by_app["bfs"].status == "ok"
        assert by_app["pr"].status == "failed"
        stats = service.stats()["jobs"]
        assert (stats["completed"], stats["failed"]) == (1, 1)

    def test_thread_backend_smoke(self):
        service = JobService(ServiceConfig(backend="thread", workers=2))
        results = service.run_batch([_spec("bfs"), _spec("pr")])
        assert all(r.status == "ok" for r in results)

    def test_process_backend_shares_the_disk_cache(self, tmp_path):
        config = ServiceConfig(
            backend="process", workers=2, cache_dir=str(tmp_path)
        )
        service = JobService(config)
        first = service.run_batch([_spec("bfs"), _spec("pr")])
        assert all(r.status == "ok" for r in first)
        # The parent's reopened view serves the children's stored results.
        second = service.run_batch([_spec("bfs"), _spec("pr")])
        assert all(r.result_cache == "hit" for r in second)
        for cold, warm in zip(first, second):
            assert np.array_equal(cold.values, warm.values)

    def test_config_validation(self):
        with pytest.raises(ServiceError, match="backend"):
            ServiceConfig(backend="fiber")
        with pytest.raises(ServiceError, match="workers"):
            ServiceConfig(workers=0)
        with pytest.raises(ServiceError, match="admission"):
            ServiceConfig(admission="maybe")
        with pytest.raises(ServiceError, match="retry_backoff_s"):
            ServiceConfig(retry_backoff_s=-1.0)


class TestServeBatch:
    def test_returns_results_service_and_wall(self):
        results, service, wall = serve_batch(
            [_spec("bfs")], config=ServiceConfig()
        )
        assert len(results) == 1
        assert results[0].status == "ok"
        assert service.stats()["jobs"]["submitted"] == 1
        assert wall > 0
