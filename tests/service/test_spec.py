"""JobSpec/JobResult: identity, serialization, validation."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import JobSpecError
from repro.service import JobSpec, values_digest
from repro.service.spec import SCHEDULING_FIELDS, JobResult


class TestContentHash:
    def test_identical_specs_agree(self):
        a = JobSpec(app="bfs", workload="rmat22s", hosts=4, policy="cvc")
        b = JobSpec(app="bfs", workload="rmat22s", hosts=4, policy="cvc")
        assert a.content_hash() == b.content_hash()
        assert a.job_id == b.job_id == a.content_hash()[:12]

    def test_any_work_field_changes_the_hash(self):
        base = JobSpec(app="bfs", workload="rmat22s", hosts=4, policy="cvc")
        variants = [
            JobSpec(app="pr", workload="rmat22s", hosts=4, policy="cvc"),
            JobSpec(app="bfs", workload="rmat24s", hosts=4, policy="cvc"),
            JobSpec(app="bfs", workload="rmat22s", hosts=8, policy="cvc"),
            JobSpec(app="bfs", workload="rmat22s", hosts=4, policy="oec"),
            JobSpec(
                app="bfs", workload="rmat22s", hosts=4, policy="cvc",
                scale_delta=-1,
            ),
            JobSpec(
                app="bfs", workload="rmat22s", hosts=4, policy="cvc",
                level="oti",
            ),
        ]
        hashes = {v.content_hash() for v in variants}
        assert base.content_hash() not in hashes
        assert len(hashes) == len(variants)

    def test_scheduling_fields_do_not_fragment_the_hash(self):
        plain = JobSpec(app="bfs", workload="rmat22s")
        eager = JobSpec(
            app="bfs", workload="rmat22s", priority=7, max_attempts=3
        )
        assert plain.content_hash() == eager.content_hash()
        for name in SCHEDULING_FIELDS:
            assert name not in plain.hashed_dict()

    def test_hash_is_stable_across_processes(self):
        """The cache key must not depend on interpreter state (PYTHONHASHSEED
        randomizes the builtin ``hash``; sha256 over canonical JSON must
        not care)."""
        spec = JobSpec(app="cc", workload="rmat22s", hosts=4, policy="oec")
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        code = (
            "from repro.service import JobSpec; "
            "print(JobSpec(app='cc', workload='rmat22s', hosts=4, "
            "policy='oec').content_hash())"
        )
        child = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": os.path.abspath(src),
                "PYTHONHASHSEED": "12345",
            },
            check=True,
        )
        assert child.stdout.strip() == spec.content_hash()


class TestSerialization:
    def test_dict_roundtrip(self):
        spec = JobSpec(
            app="sssp", workload="rmat22s", hosts=8, policy="hvc",
            level="osti", scale_delta=-2, priority=3, max_attempts=2,
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(JobSpecError, match="unknown job field"):
            JobSpec.from_dict(
                {"app": "bfs", "workload": "rmat22s", "gpu": True}
            )

    def test_from_dict_requires_app_and_workload(self):
        with pytest.raises(JobSpecError, match="missing required"):
            JobSpec.from_dict({"app": "bfs"})
        with pytest.raises(JobSpecError, match="missing required"):
            JobSpec.from_dict({"workload": "rmat22s"})


class TestValidation:
    def test_unknown_app(self):
        with pytest.raises(JobSpecError, match="unknown app"):
            JobSpec(app="pagerank2", workload="rmat22s")

    def test_unknown_workload(self):
        with pytest.raises(JobSpecError, match="unknown workload"):
            JobSpec(app="bfs", workload="twitter-2010")

    def test_unknown_system(self):
        with pytest.raises(JobSpecError, match="unknown system"):
            JobSpec(app="bfs", workload="rmat22s", system="spark")

    def test_unknown_policy(self):
        with pytest.raises(JobSpecError, match="unknown policy"):
            JobSpec(app="bfs", workload="rmat22s", policy="metis")

    def test_unknown_level(self):
        with pytest.raises(JobSpecError, match="unknown optimization"):
            JobSpec(app="bfs", workload="rmat22s", level="turbo")

    def test_bad_hosts_and_attempts(self):
        with pytest.raises(JobSpecError, match="hosts"):
            JobSpec(app="bfs", workload="rmat22s", hosts=0)
        with pytest.raises(JobSpecError, match="max_attempts"):
            JobSpec(app="bfs", workload="rmat22s", max_attempts=0)

    def test_bad_fault_spec(self):
        with pytest.raises(JobSpecError, match="inject_fault"):
            JobSpec(app="bfs", workload="rmat22s", inject_fault="meteor:1")

    def test_bad_recovery_mode(self):
        with pytest.raises(JobSpecError, match="unknown recovery"):
            JobSpec(app="bfs", workload="rmat22s", recovery="pray")


class TestValuesDigest:
    def test_none_passthrough(self):
        assert values_digest(None) is None

    def test_deterministic_and_content_sensitive(self):
        a = np.arange(16, dtype=np.uint32)
        assert values_digest(a) == values_digest(a.copy())
        assert values_digest(a) != values_digest(a + 1)
        # dtype is part of the identity: same bytes, different meaning.
        assert values_digest(a) != values_digest(a.view(np.int32))


class TestJobResult:
    def _result(self):
        return JobResult(
            job_id="abc",
            spec_hash="abc" * 21 + "d",
            spec={"app": "bfs", "workload": "rmat22s", "hosts": 4},
            rounds=5,
            values=np.arange(4, dtype=np.uint32),
            wall_s=1.25,
            attempts=2,
            partition_cache="hit",
            result_cache="miss",
        )

    def test_payload_is_the_deterministic_projection(self):
        payload = self._result().payload()
        for bookkeeping in ("wall_s", "attempts", "backoff_s",
                            "partition_cache", "result_cache", "priority"):
            assert bookkeeping not in payload
        assert payload["rounds"] == 5

    def test_row_and_to_dict_carry_cache_provenance(self):
        result = self._result()
        assert result.row()["part$"] == "hit"
        assert result.row()["result$"] == "miss"
        doc = result.to_dict()
        assert doc["partition_cache"] == "hit"
        assert doc["attempts"] == 2
        assert "values" not in doc  # arrays reduce to their digest
