"""Streaming-facing service-cache behavior: reuse/invalidate turnover and
the level-1b per-host partition entries (ISSUE satellite: the new
counters must reconcile exactly)."""

import pytest

from repro.observability.metrics import MetricsRegistry
from repro.service.cache import CacheLevel, ServiceCache


class TestInvalidate:
    def test_present_entry_dropped_and_counted(self):
        level = CacheLevel("partition", metrics=MetricsRegistry())
        level.put("k", {"v": 1})
        assert level.invalidate("k") is True
        assert "k" not in level
        assert level.stats()["invalidations"] == 1

    def test_absent_entry_not_counted(self):
        level = CacheLevel("partition", metrics=MetricsRegistry())
        assert level.invalidate("missing") is False
        assert level.stats()["invalidations"] == 0

    def test_double_invalidate_counts_once(self):
        level = CacheLevel("partition", metrics=MetricsRegistry())
        level.put("k", 1)
        assert level.invalidate("k") is True
        assert level.invalidate("k") is False
        assert level.stats()["invalidations"] == 1

    def test_disk_backed_invalidate_removes_file(self, tmp_path):
        level = CacheLevel(
            "partition", directory=tmp_path, metrics=MetricsRegistry()
        )
        level.put("k", [1, 2, 3])
        assert (tmp_path / "partition" / "k.blob").exists()
        assert level.invalidate("k") is True
        assert not (tmp_path / "partition" / "k.blob").exists()


class TestReuse:
    def test_hit_counts_reuse_and_hit(self):
        level = CacheLevel("partition", metrics=MetricsRegistry())
        level.put("k", 42)
        assert level.reuse("k") == 42
        stats = level.stats()
        assert stats["reuses"] == 1
        assert stats["hits"] == 1

    def test_miss_counts_no_reuse(self):
        level = CacheLevel("partition", metrics=MetricsRegistry())
        assert level.reuse("missing") is None
        stats = level.stats()
        assert stats["reuses"] == 0
        assert stats["misses"] == 1

    def test_reconciliation_invariant(self):
        """Across a simulated mutation over N entries: every live entry is
        either reused or invalidated — the sum is exactly N."""
        num_hosts = 8
        level = CacheLevel(
            "partition", metrics=MetricsRegistry(), max_entries=64
        )
        for host in range(num_hosts):
            level.put(f"sig-{host}", host)
        changed = {2, 5}
        for host in range(num_hosts):
            if host in changed:
                assert level.invalidate(f"sig-{host}")
                level.put(f"sig-{host}-v2", host)
            else:
                assert level.reuse(f"sig-{host}") == host
        stats = level.stats()
        assert stats["reuses"] + stats["invalidations"] == num_hosts
        assert stats["reuses"] == num_hosts - len(changed)
        assert stats["invalidations"] == len(changed)


class TestHostPartitionApi:
    def test_round_trip(self):
        cache = ServiceCache(metrics=MetricsRegistry())
        cache.put_host_partition("abc", {"host": 0})
        assert cache.get_host_partition("abc") == {"host": 0}
        assert cache.reuse_host_partition("abc") == {"host": 0}
        assert cache.invalidate_host_partition("abc") is True
        assert cache.get_host_partition("abc") is None

    def test_keys_disjoint_from_whole_partition_keys(self):
        cache = ServiceCache(metrics=MetricsRegistry())
        cache.put_host_partition("abc", {"host": 0})
        # A whole-partition lookup under the raw signature misses.
        assert cache.get_partition("abc") is None
        assert ServiceCache.host_partition_key("abc") == "host-abc"

    def test_shares_partition_level_lru(self):
        cache = ServiceCache(max_partitions=2, metrics=MetricsRegistry())
        cache.put_host_partition("a", 1)
        cache.put_host_partition("b", 2)
        cache.put_host_partition("c", 3)
        assert len(cache.partitions) == 2
        assert cache.get_host_partition("a") is None  # evicted (LRU)
        assert cache.stats()["partition"]["evictions"] == 1

    def test_stats_expose_turnover_counters(self):
        cache = ServiceCache(metrics=MetricsRegistry())
        stats = cache.stats()["partition"]
        assert "reuses" in stats
        assert "invalidations" in stats


class TestNullMetricsDefault:
    def test_default_cache_still_functions(self):
        # Without a registry the counters are no-ops but behavior holds.
        cache = ServiceCache()
        cache.put_host_partition("x", 9)
        assert cache.reuse_host_partition("x") == 9
        assert cache.invalidate_host_partition("x") is True
        assert cache.stats()["partition"]["reuses"] == 0


@pytest.mark.parametrize("directory", [None, "disk"])
def test_levels_count_independently(tmp_path, directory):
    metrics = MetricsRegistry()
    kwargs = {"metrics": metrics}
    if directory:
        kwargs["directory"] = tmp_path
    cache = ServiceCache(**kwargs)
    cache.put_host_partition("sig", 1)
    cache.reuse_host_partition("sig")
    stats = cache.stats()
    assert stats["partition"]["reuses"] == 1
    assert stats["result"]["reuses"] == 0
