"""Tests for the GraphVersion chain: provenance hashing over mutations."""

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.streaming.batch import MutationBatch
from repro.streaming.version import GraphVersion


def base_edges():
    rng = np.random.default_rng(3)
    src = rng.integers(0, 30, size=120, dtype=np.uint32)
    dst = rng.integers(0, 30, size=120, dtype=np.uint32)
    return EdgeList(30, src, dst).deduplicate()


def fresh_pair(edges):
    """An (s, d) edge not present in ``edges`` (insertable without dups)."""
    present = set(zip(edges.src.tolist(), edges.dst.tolist()))
    for s in range(edges.num_nodes):
        for d in range(edges.num_nodes):
            if s != d and (s, d) not in present:
                return s, d
    raise AssertionError("graph is complete")


def fresh_insert(edges):
    s, d = fresh_pair(edges)
    return MutationBatch(insert_src=[s], insert_dst=[d])


def some_batches():
    # Deleting node 4 frees every (4, *) slot, so the later insert into
    # it can never collide; node 30 is brand new.
    return [
        MutationBatch(delete_nodes=[4]),
        MutationBatch(add_nodes=1, insert_src=[30], insert_dst=[0]),
        MutationBatch(insert_src=[4], insert_dst=[0]),
    ]


class TestChain:
    def test_initial_anchors_at_flat_hash(self):
        edges = base_edges()
        v0 = GraphVersion.initial(edges)
        assert v0.version == 0
        assert v0.content_hash == edges.content_hash()
        assert v0.parent_hash is None
        assert v0.batch_hash is None

    def test_apply_links_parent_and_batch(self):
        v0 = GraphVersion.initial(base_edges())
        batch = fresh_insert(v0.edges)
        v1, effect = v0.apply(batch)
        assert v1.version == 1
        assert v1.parent_hash == v0.content_hash
        assert v1.batch_hash == batch.batch_hash()
        assert v1.content_hash == GraphVersion.chain_hash(
            v0.content_hash, batch.batch_hash()
        )
        assert effect.inserted_count == 1

    def test_independent_streams_agree(self):
        """Same base + same batches => same content addresses."""
        chains = []
        for _ in range(2):
            version = GraphVersion.initial(base_edges())
            hashes = [version.content_hash]
            for batch in some_batches():
                version, _ = version.apply(batch)
                hashes.append(version.content_hash)
            chains.append((hashes, version))
        assert chains[0][0] == chains[1][0]
        # And the materialized lists agree too (flat-hash oracle).
        assert chains[0][1].full_rehash() == chains[1][1].full_rehash()

    def test_different_batches_diverge(self):
        v0 = GraphVersion.initial(base_edges())
        s, d = fresh_pair(v0.edges)
        a, _ = v0.apply(MutationBatch(insert_src=[s], insert_dst=[d]))
        b, _ = v0.apply(MutationBatch(delete_nodes=[s]))
        assert a.content_hash != b.content_hash

    def test_chain_hash_is_provenance_not_content(self):
        """Two mutation paths to the same graph get different chain hashes."""
        edges = base_edges()
        v0 = GraphVersion.initial(edges)
        s, d = fresh_pair(edges)
        insert = MutationBatch(insert_src=[s], insert_dst=[d])
        delete = MutationBatch(delete_src=[s], delete_dst=[d])
        via_round_trip, _ = v0.apply(insert)
        via_round_trip, _ = via_round_trip.apply(delete)
        # Same final edge content as the base...
        assert via_round_trip.full_rehash() == edges.content_hash()
        # ...but a different provenance address.
        assert via_round_trip.content_hash != v0.content_hash
        assert via_round_trip.version == 2

    def test_materialized_edges_track_batches(self):
        version = GraphVersion.initial(base_edges())
        expected = version.edges
        for batch in some_batches():
            version, _ = version.apply(batch)
            expected, _ = batch.apply(expected)
        assert np.array_equal(version.edges.src, expected.src)
        assert np.array_equal(version.edges.dst, expected.dst)
        assert version.edges.num_nodes == expected.num_nodes
