"""Incremental recomputation: plan strategies, and bitwise identity.

The headline acceptance property: streaming incremental re-execution
must be bitwise identical to a cold full recompute for bfs, cc, and
pagerank, across multiple partition policies.
"""

import numpy as np
import pytest

from repro.apps.base import AppContext
from repro.graph.edgelist import EdgeList
from repro.streaming.batch import MutationBatch, random_mutation_batch
from repro.streaming.incremental import plan_incremental
from repro.streaming.session import StreamingSession

_INF = np.iinfo(np.uint32).max


def path_effect(edges, batch):
    new_edges, effect = batch.apply(edges)
    return new_edges, effect


class TestPlanStrategies:
    def _path(self):
        # 0 -> 1 -> 2 -> 3, unweighted.
        return EdgeList(
            4,
            np.array([0, 1, 2], dtype=np.uint32),
            np.array([1, 2, 3], dtype=np.uint32),
        )

    def test_bfs_delete_resets_downstream_dag(self):
        edges = self._path()
        batch = MutationBatch(delete_src=[1], delete_dst=[2])
        new_edges, effect = path_effect(edges, batch)
        plan = plan_incremental(
            "bfs",
            edges,
            new_edges,
            effect,
            {"dist": np.array([0, 1, 2, 3], dtype=np.uint32)},
            AppContext(num_global_nodes=4, source=0),
        )
        assert plan.strategy == "min-plus"
        assert not plan.full_restart
        # 2 lost its support edge; 3's support came from 2.
        assert plan.affected.tolist() == [False, False, True, True]
        # Nothing finite borders the torn-off suffix: empty frontier.
        assert plan.frontier_count == 0

    def test_bfs_insert_only_pushes_from_inserted_sources(self):
        edges = self._path()
        batch = MutationBatch(insert_src=[0], insert_dst=[3])
        new_edges, effect = path_effect(edges, batch)
        plan = plan_incremental(
            "bfs",
            edges,
            new_edges,
            effect,
            {"dist": np.array([0, 1, 2, 3], dtype=np.uint32)},
            AppContext(num_global_nodes=4, source=0),
        )
        assert plan.strategy == "min-plus"
        assert plan.affected_count == 0
        assert plan.frontier.tolist() == [True, False, False, False]

    def test_source_never_affected(self):
        edges = self._path()
        batch = MutationBatch(delete_src=[0], delete_dst=[1])
        new_edges, effect = path_effect(edges, batch)
        plan = plan_incremental(
            "bfs",
            edges,
            new_edges,
            effect,
            {"dist": np.array([0, 1, 2, 3], dtype=np.uint32)},
            AppContext(num_global_nodes=4, source=0),
        )
        assert not plan.affected[0]
        assert plan.affected.tolist() == [False, True, True, True]

    def test_zero_weight_falls_back_to_replay(self):
        edges = EdgeList(
            3,
            np.array([0, 1], dtype=np.uint32),
            np.array([1, 2], dtype=np.uint32),
            np.array([0, 1], dtype=np.uint32),  # zero weight: cyclic DAG risk
        )
        batch = MutationBatch(delete_src=[1], delete_dst=[2])
        new_edges, effect = path_effect(edges, batch)
        plan = plan_incremental(
            "sssp",
            edges,
            new_edges,
            effect,
            {"dist": np.array([0, 0, 1], dtype=np.uint32)},
            AppContext(num_global_nodes=3, source=0),
        )
        assert plan.strategy == "replay"
        assert plan.full_restart

    def test_cc_delete_resets_whole_torn_component(self):
        # Two symmetric components: {0,1,2} and {3,4}.
        edges = EdgeList(
            5,
            np.array([0, 1, 1, 2, 3, 4], dtype=np.uint32),
            np.array([1, 0, 2, 1, 4, 3], dtype=np.uint32),
        )
        batch = MutationBatch(delete_src=[1, 2], delete_dst=[2, 1])
        new_edges, effect = path_effect(edges, batch)
        plan = plan_incremental(
            "cc",
            edges,
            new_edges,
            effect,
            {"label": np.array([0, 0, 0, 3, 3], dtype=np.uint32)},
            AppContext(num_global_nodes=5),
        )
        assert plan.strategy == "component"
        # The whole component of the torn edge resets; {3,4} untouched.
        assert plan.affected.tolist() == [True, True, True, False, False]

    def test_cc_insert_only_merges_without_reset(self):
        edges = EdgeList(
            4,
            np.array([0, 1, 2, 3], dtype=np.uint32),
            np.array([1, 0, 3, 2], dtype=np.uint32),
        )
        batch = MutationBatch(
            insert_src=[1, 2], insert_dst=[2, 1]
        )
        new_edges, effect = path_effect(edges, batch)
        plan = plan_incremental(
            "cc",
            edges,
            new_edges,
            effect,
            {"label": np.array([0, 0, 2, 2], dtype=np.uint32)},
            AppContext(num_global_nodes=4),
        )
        assert plan.affected_count == 0
        # Inserted endpoints push so the smaller label can flow.
        assert plan.frontier[1] and plan.frontier[2]

    def test_pagerank_always_replays(self):
        edges = self._path()
        batch = MutationBatch(insert_src=[3], insert_dst=[0])
        new_edges, effect = path_effect(edges, batch)
        plan = plan_incremental(
            "pagerank", edges, new_edges, effect, {},
            AppContext(num_global_nodes=4),
        )
        assert plan.strategy == "replay"
        assert plan.full_restart
        assert plan.affected_fraction(4) == 1.0

    def test_new_vertices_start_cold(self):
        edges = self._path()
        batch = MutationBatch(add_nodes=1, insert_src=[3], insert_dst=[4])
        new_edges, effect = path_effect(edges, batch)
        plan = plan_incremental(
            "bfs",
            edges,
            new_edges,
            effect,
            {"dist": np.array([0, 1, 2, 3], dtype=np.uint32)},
            AppContext(num_global_nodes=5, source=0),
        )
        assert plan.affected[4]
        # 3 is finite and has the new edge into the affected vertex.
        assert plan.frontier[3]


def _random_base(seed, n=48, m=220):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m, dtype=np.uint32)
    dst = rng.integers(0, n, size=m, dtype=np.uint32)
    return EdgeList(n, src, dst)


def _assert_stream_matches_cold(session, make_batch, num_batches):
    """Apply batches drawn against each successive version, then compare
    the streamed values to a cold recompute of the final version."""
    for _ in range(num_batches):
        session.apply_batch(make_batch(session.version.edges))
    warm = session.values()
    cold = session.cold_values(session.cold_run())
    assert set(warm) == set(cold)
    for key in cold:
        assert np.array_equal(warm[key], cold[key]), key


class TestBitwiseIdentity:
    """Streaming == cold recompute, the ISSUE acceptance bar."""

    @pytest.mark.parametrize(
        "app,policy",
        [
            ("bfs", "oec"),
            ("bfs", "cvc"),
            ("cc", "iec"),
            ("cc", "hvc"),
            ("pagerank", "oec"),
            ("pagerank", "jagged"),
        ],
    )
    def test_incremental_equals_cold(self, app, policy):
        session = StreamingSession(
            "d-galois", app, _random_base(5), num_hosts=4, policy=policy
        )
        session.run()
        rng = np.random.default_rng(17)

        def make_batch(edges):
            return random_mutation_batch(
                edges,
                rng,
                delete_fraction=0.01,
                insert_fraction=0.01,
                add_nodes=1,
            )

        _assert_stream_matches_cold(session, make_batch, num_batches=2)

    def test_sssp_weighted_with_node_churn(self):
        session = StreamingSession(
            "d-ligra", "sssp", _random_base(9), num_hosts=3, policy="random"
        )
        session.run()
        rng = np.random.default_rng(23)

        def make_batch(edges):
            return random_mutation_batch(
                edges,
                rng,
                delete_fraction=0.01,
                insert_fraction=0.02,
                delete_node_count=1,
                add_nodes=1,
            )

        _assert_stream_matches_cold(session, make_batch, num_batches=2)

    def test_kcore_replays_correctly(self):
        session = StreamingSession(
            "d-galois", "kcore", _random_base(31), num_hosts=2, policy="oec"
        )
        session.run()
        rng = np.random.default_rng(37)
        batch = random_mutation_batch(
            session.version.edges, rng,
            delete_fraction=0.02, insert_fraction=0.02,
        )
        step = session.apply_batch(batch)
        assert step.strategy == "replay"
        warm = session.values()
        cold = session.cold_values(session.cold_run())
        for key in cold:
            assert np.array_equal(warm[key], cold[key]), key

    def test_incremental_strategies_actually_run(self):
        """bfs deletions use min-plus; the step records strategy + counts."""
        session = StreamingSession(
            "d-galois", "bfs", _random_base(41), num_hosts=4, policy="oec"
        )
        session.run()
        edges = session.version.edges
        batch = MutationBatch(
            delete_src=edges.src[:1], delete_dst=edges.dst[:1]
        )
        step = session.apply_batch(batch)
        assert step.strategy == "min-plus"
        assert step.affected_count >= 0
        assert step.hosts_reused + step.hosts_rebuilt == 4
        assert 0.0 <= step.affected_fraction <= 1.0
        warm = session.values()
        cold = session.cold_values(session.cold_run())
        for key in cold:
            assert np.array_equal(warm[key], cold[key]), key
