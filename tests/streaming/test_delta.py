"""Property tests: delta-partitioning is bitwise identical to a rebuild.

The load-bearing streaming property (ISSUE satellite): for arbitrary
graphs, mutation batches, host counts, and *every* partition policy, the
patched partition must equal a from-scratch partition of the mutated
list — CSR arrays, proxy tables, and local-to-global maps — and the
patched address books must equal a from-scratch memoization exchange
array-for-array.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memoization import exchange_address_books
from repro.errors import PartitionError
from repro.graph.edgelist import EdgeList
from repro.network.transport import InProcessTransport
from repro.partition import PARTITIONER_BY_NAME, make_partitioner
from repro.streaming.batch import random_mutation_batch
from repro.streaming.delta import (
    delta_partition,
    patch_address_books,
    signature_of_host,
)

ALL_POLICIES = sorted(PARTITIONER_BY_NAME)


@st.composite
def graph_and_batch(draw, weighted=None):
    num_nodes = draw(st.integers(min_value=2, max_value=50))
    num_edges = draw(st.integers(min_value=1, max_value=180))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    if weighted is None:
        weighted = draw(st.booleans())
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges, dtype=np.uint32)
    dst = rng.integers(0, num_nodes, size=num_edges, dtype=np.uint32)
    weight = (
        rng.integers(1, 20, size=num_edges, dtype=np.uint32)
        if weighted
        else None
    )
    edges = EdgeList(num_nodes, src, dst, weight).deduplicate()
    batch = random_mutation_batch(
        edges,
        rng,
        delete_fraction=draw(st.floats(min_value=0.0, max_value=0.3)),
        insert_fraction=draw(st.floats(min_value=0.0, max_value=0.3)),
        add_nodes=draw(st.integers(min_value=0, max_value=3)),
        delete_node_count=draw(st.integers(min_value=0, max_value=2)),
    )
    return edges, batch


def assert_partitions_identical(actual, expected):
    assert actual.num_hosts == expected.num_hosts
    assert actual.num_global_nodes == expected.num_global_nodes
    assert actual.num_global_edges == expected.num_global_edges
    assert np.array_equal(actual.master_host, expected.master_host)
    for mine, theirs in zip(actual.partitions, expected.partitions):
        assert mine.host == theirs.host
        assert mine.num_masters == theirs.num_masters
        assert np.array_equal(mine.local_to_global, theirs.local_to_global)
        assert np.array_equal(
            mine.mirror_master_host, theirs.mirror_master_host
        )
        assert np.array_equal(mine.graph.indptr, theirs.graph.indptr)
        assert np.array_equal(mine.graph.indices, theirs.graph.indices)
        if theirs.graph.weights is None:
            assert mine.graph.weights is None
        else:
            assert np.array_equal(mine.graph.weights, theirs.graph.weights)


def assert_books_identical(actual, expected):
    assert len(actual) == len(expected)
    attrs = (
        "mirrors_all", "mirrors_reduce", "mirrors_broadcast", "mirrors_any",
        "masters_all", "masters_reduce", "masters_broadcast", "masters_any",
    )
    for mine, theirs in zip(actual, expected):
        assert mine.host == theirs.host
        assert mine.peer_order == theirs.peer_order
        for attr in attrs:
            mine_map = getattr(mine, attr)
            theirs_map = getattr(theirs, attr)
            for peer in range(theirs.num_hosts):
                if peer == theirs.host:
                    continue
                empty = np.empty(0, dtype=np.uint32)
                assert np.array_equal(
                    mine_map.get(peer, empty), theirs_map.get(peer, empty)
                ), f"host {mine.host} {attr}[{peer}] diverged"


@given(
    data=graph_and_batch(),
    num_hosts=st.integers(min_value=1, max_value=6),
    policy=st.sampled_from(ALL_POLICIES),
)
@settings(max_examples=60, deadline=None)
def test_delta_partition_equals_full_rebuild(data, num_hosts, policy):
    edges, batch = data
    partitioner = make_partitioner(policy)
    old_partitioned = partitioner.partition(edges, num_hosts)
    new_edges, _ = batch.apply(edges)
    delta = delta_partition(edges, old_partitioned, new_edges, partitioner)
    expected = partitioner.partition(new_edges, num_hosts)
    assert_partitions_identical(delta.partitioned, expected)
    assert sorted(delta.reused_hosts + delta.rebuilt_hosts) == list(
        range(num_hosts)
    )


@given(
    data=graph_and_batch(),
    num_hosts=st.integers(min_value=2, max_value=5),
    policy=st.sampled_from(ALL_POLICIES),
)
@settings(max_examples=40, deadline=None)
def test_patched_books_equal_full_exchange(data, num_hosts, policy):
    edges, batch = data
    partitioner = make_partitioner(policy)
    old_partitioned = partitioner.partition(edges, num_hosts)
    old_books = exchange_address_books(
        old_partitioned, InProcessTransport(num_hosts)
    )
    new_edges, _ = batch.apply(edges)
    delta = delta_partition(edges, old_partitioned, new_edges, partitioner)
    patched = patch_address_books(
        old_books,
        old_partitioned,
        delta.partitioned,
        delta.rebuilt_hosts,
        InProcessTransport(num_hosts),
    )
    expected = exchange_address_books(
        delta.partitioned, InProcessTransport(num_hosts)
    )
    assert_books_identical(patched, expected)


@given(
    data=graph_and_batch(),
    num_hosts=st.integers(min_value=1, max_value=6),
    policy=st.sampled_from(ALL_POLICIES),
)
@settings(max_examples=40, deadline=None)
def test_host_signature_tracks_reuse(data, num_hosts, policy):
    """Signatures change exactly when the host rebuilds (modulo collisions:
    a rebuilt host may coincidentally keep equal inputs — never the
    reverse)."""
    edges, batch = data
    partitioner = make_partitioner(policy)
    old_partitioned = partitioner.partition(edges, num_hosts)
    new_edges, _ = batch.apply(edges)
    old_assignment = partitioner.assign(edges, num_hosts)
    delta = delta_partition(edges, old_partitioned, new_edges, partitioner)
    for host in range(num_hosts):
        old_sig = signature_of_host(edges, old_assignment, host, policy)
        new_sig = signature_of_host(
            new_edges, delta.assignment, host, policy
        )
        if host in delta.reused_hosts:
            assert old_sig == new_sig
        # Signatures are per-host unique: host index is digested.
        other = (host + 1) % num_hosts
        if other != host:
            assert new_sig != signature_of_host(
                new_edges, delta.assignment, other, policy
            )


def test_policy_mismatch_rejected():
    rng = np.random.default_rng(0)
    edges = EdgeList(
        10,
        rng.integers(0, 10, size=30, dtype=np.uint32),
        rng.integers(0, 10, size=30, dtype=np.uint32),
    ).deduplicate()
    old = make_partitioner("oec").partition(edges, 2)
    with pytest.raises(PartitionError, match="policy"):
        delta_partition(edges, old, edges, make_partitioner("cvc"))


def test_stale_old_partition_rejected():
    rng = np.random.default_rng(1)
    edges = EdgeList(
        10,
        rng.integers(0, 10, size=30, dtype=np.uint32),
        rng.integers(0, 10, size=30, dtype=np.uint32),
    ).deduplicate()
    bigger = EdgeList(11, edges.src, edges.dst)
    old = make_partitioner("oec").partition(edges, 2)
    with pytest.raises(PartitionError, match="old edge list"):
        delta_partition(bigger, old, bigger, make_partitioner("oec"))


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_untouched_hosts_reused_under_single_edge_insert(policy):
    """Edge cuts keep most hosts warm under a tiny batch; vertex cuts may
    legitimately rebuild everything (chunk boundaries shift), but must
    still account for every host."""
    rng = np.random.default_rng(11)
    n = 40
    edges = EdgeList(
        n,
        rng.integers(0, n, size=200, dtype=np.uint32),
        rng.integers(0, n, size=200, dtype=np.uint32),
    ).deduplicate()
    partitioner = make_partitioner(policy)
    old = partitioner.partition(edges, 4)
    batch = random_mutation_batch(
        edges, rng, delete_fraction=0.0, insert_fraction=0.005
    )
    new_edges, _ = batch.apply(edges)
    delta = delta_partition(edges, old, new_edges, partitioner)
    assert delta.num_reused + delta.num_rebuilt == 4
    for host in delta.reused_hosts:
        assert delta.partitioned.partitions[host] is old.partitions[host]
