"""StreamingSession lifecycle, mirroring, cache turnover, observability."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.graph.edgelist import EdgeList
from repro.observability import Observability
from repro.observability.metrics import MetricsRegistry
from repro.service.cache import ServiceCache
from repro.streaming.batch import MutationBatch, random_mutation_batch
from repro.streaming.session import StreamingSession, mirror_batch


def small_graph(seed=2, n=40, m=180):
    rng = np.random.default_rng(seed)
    return EdgeList(
        n,
        rng.integers(0, n, size=m, dtype=np.uint32),
        rng.integers(0, n, size=m, dtype=np.uint32),
    )


def one_edge_delete(session):
    edges = session.version.edges
    return MutationBatch(
        delete_src=edges.src[:1], delete_dst=edges.dst[:1]
    )


class TestMirrorBatch:
    def test_adds_reverse_twins(self):
        batch = MutationBatch(
            insert_src=[1], insert_dst=[2],
            delete_src=[3], delete_dst=[4],
        )
        mirrored = mirror_batch(batch)
        inserted = set(
            zip(mirrored.insert_src.tolist(), mirrored.insert_dst.tolist())
        )
        deleted = set(
            zip(mirrored.delete_src.tolist(), mirrored.delete_dst.tolist())
        )
        assert inserted == {(1, 2), (2, 1)}
        assert deleted == {(3, 4), (4, 3)}

    def test_idempotent(self):
        batch = MutationBatch(
            insert_src=[1, 2], insert_dst=[2, 1],
            delete_src=[3], delete_dst=[4],
        )
        once = mirror_batch(batch)
        twice = mirror_batch(once)
        assert once.batch_hash() == twice.batch_hash()

    def test_self_loops_not_duplicated(self):
        mirrored = mirror_batch(
            MutationBatch(insert_src=[5], insert_dst=[5])
        )
        assert mirrored.num_inserts == 1

    def test_weights_mirror_with_edges(self):
        mirrored = mirror_batch(
            MutationBatch(
                insert_src=[1], insert_dst=[2], insert_weight=[7]
            )
        )
        assert mirrored.insert_weight.tolist() == [7, 7]


class TestLifecycle:
    def test_apply_before_run_rejected(self):
        session = StreamingSession(
            "d-galois", "bfs", small_graph(), num_hosts=2
        )
        with pytest.raises(ExecutionError, match="run\\(\\) the base"):
            session.apply_batch(MutationBatch())

    def test_run_twice_rejected(self):
        session = StreamingSession(
            "d-galois", "bfs", small_graph(), num_hosts=2
        )
        session.run()
        with pytest.raises(ExecutionError, match="already ran"):
            session.run()

    def test_multi_phase_app_rejected(self):
        with pytest.raises(ExecutionError, match="multi-phase"):
            StreamingSession("d-galois", "bc", small_graph(), num_hosts=2)

    def test_symmetrized_app_mirrors_batches(self):
        session = StreamingSession(
            "d-galois", "cc", small_graph(), num_hosts=2
        )
        session.run()
        n = session.version.edges.num_nodes
        # A one-direction insert between two brand-new vertices...
        batch = MutationBatch(add_nodes=2, insert_src=[n], insert_dst=[n + 1])
        step = session.apply_batch(batch)
        # ...lands as both directions in the symmetric graph.
        assert step.inserted_edges == 2
        pairs = set(
            zip(
                session.version.edges.src.tolist(),
                session.version.edges.dst.tolist(),
            )
        )
        assert (n, n + 1) in pairs
        assert (n + 1, n) in pairs

    def test_replay_applies_in_order(self):
        session = StreamingSession(
            "d-galois", "bfs", small_graph(), num_hosts=2
        )
        session.run()
        rng = np.random.default_rng(4)
        batches = [
            random_mutation_batch(
                session.version.edges, rng,
                delete_fraction=0.02, insert_fraction=0.0,
            )
        ]
        # The second batch must validate against version 1's edges, so
        # build it after peeking at the first application.
        steps = session.replay(batches)
        assert [s.version for s in steps] == [1]
        assert session.version.version == 1
        assert len(session.results) == 2  # cold run + one step

    def test_step_hash_chain_matches_version(self):
        session = StreamingSession(
            "d-galois", "bfs", small_graph(), num_hosts=2
        )
        session.run()
        step = session.apply_batch(one_edge_delete(session))
        assert step.content_hash == session.version.content_hash
        assert step.version == 1
        assert step.to_dict()["rounds"] == step.result.num_rounds


class TestCacheTurnover:
    def test_reuses_plus_invalidations_reconcile_with_hosts(self):
        cache = ServiceCache(metrics=MetricsRegistry())
        session = StreamingSession(
            "d-galois", "bfs", small_graph(), num_hosts=4,
            policy="oec", cache=cache,
        )
        session.run()
        step = session.apply_batch(one_edge_delete(session))
        assert step.cache_reuses == step.hosts_reused
        assert step.cache_invalidations == step.hosts_rebuilt
        assert step.cache_reuses + step.cache_invalidations == 4
        stats = cache.stats()["partition"]
        assert stats["reuses"] == step.cache_reuses
        assert stats["invalidations"] == step.cache_invalidations

    def test_new_signatures_are_cached_after_batch(self):
        cache = ServiceCache(metrics=MetricsRegistry())
        session = StreamingSession(
            "d-galois", "bfs", small_graph(), num_hosts=3,
            policy="iec", cache=cache,
        )
        session.run()
        session.apply_batch(one_edge_delete(session))
        for signature in session._signatures:
            assert cache.get_host_partition(signature) is not None

    def test_cacheless_session_reports_zero_turnover(self):
        session = StreamingSession(
            "d-galois", "bfs", small_graph(), num_hosts=2
        )
        session.run()
        step = session.apply_batch(one_edge_delete(session))
        assert step.cache_reuses == 0
        assert step.cache_invalidations == 0


class TestObservability:
    def test_streaming_spans_and_counters_recorded(self):
        obs = Observability()
        session = StreamingSession(
            "d-galois", "bfs", small_graph(), num_hosts=4,
            policy="oec", observability=obs,
        )
        session.run()
        step = session.apply_batch(one_edge_delete(session))
        assert obs.tracer.spans_named("delta-partition")
        assert obs.tracer.spans_named("affected-frontier")
        assert obs.tracer.spans_named("apply-mutations")
        delta_span = obs.tracer.spans_named("delta-partition")[0]
        assert delta_span.cat == "streaming"
        assert delta_span.tags["reused"] == step.hosts_reused
        assert delta_span.tags["rebuilt"] == step.hosts_rebuilt
        assert obs.metrics.counter_total("streaming_mutations_total") == 1
        assert obs.metrics.counter_total("streaming_resumes_total") == 1
        assert (
            obs.metrics.counter_total("streaming_partitions_reused_total")
            == step.hosts_reused
        )
        assert (
            obs.metrics.counter_total("streaming_partitions_rebuilt_total")
            == step.hosts_rebuilt
        )
        assert (
            obs.metrics.counter_total("streaming_affected_vertices_total")
            == step.affected_count
        )
