"""Unit tests for MutationBatch: validation, hashing, application, JSON."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.edgelist import EdgeList
from repro.streaming.batch import (
    MutationBatch,
    load_batches,
    random_mutation_batch,
    save_batches,
)


def chain_graph(n=6, weighted=False):
    src = np.arange(n - 1, dtype=np.uint32)
    dst = np.arange(1, n, dtype=np.uint32)
    weight = np.full(n - 1, 2, dtype=np.uint32) if weighted else None
    return EdgeList(n, src, dst, weight)


class TestValidation:
    def test_insert_out_of_range_rejected(self):
        batch = MutationBatch(insert_src=[99], insert_dst=[0])
        with pytest.raises(GraphError, match="outside"):
            batch.validate_against(chain_graph())

    def test_add_nodes_extends_insert_range(self):
        batch = MutationBatch(add_nodes=1, insert_src=[6], insert_dst=[0])
        new_edges, effect = batch.apply(chain_graph())
        assert new_edges.num_nodes == 7
        assert effect.new_num_nodes == 7

    def test_delete_missing_edge_rejected(self):
        batch = MutationBatch(delete_src=[0], delete_dst=[5])
        with pytest.raises(GraphError, match="not present"):
            batch.validate_against(chain_graph())

    def test_delete_node_out_of_range_rejected(self):
        batch = MutationBatch(delete_nodes=[6])
        with pytest.raises(GraphError, match="outside"):
            batch.validate_against(chain_graph())

    def test_weighted_base_requires_insert_weight(self):
        batch = MutationBatch(insert_src=[0], insert_dst=[3])
        with pytest.raises(GraphError, match="insert_weight is required"):
            batch.validate_against(chain_graph(weighted=True))

    def test_unweighted_base_rejects_insert_weight(self):
        batch = MutationBatch(
            insert_src=[0], insert_dst=[3], insert_weight=[1]
        )
        with pytest.raises(GraphError, match="must be omitted"):
            batch.validate_against(chain_graph())

    def test_zero_weight_rejected(self):
        batch = MutationBatch(
            insert_src=[0], insert_dst=[3], insert_weight=[0]
        )
        with pytest.raises(GraphError, match=">= 1"):
            batch.validate_against(chain_graph(weighted=True))

    def test_insert_referencing_same_batch_deleted_node_rejected(self):
        batch = MutationBatch(
            insert_src=[2], insert_dst=[4], delete_nodes=[2]
        )
        with pytest.raises(GraphError, match="deleted in the same batch"):
            batch.validate_against(chain_graph())

    def test_duplicate_creating_insert_rejected(self):
        batch = MutationBatch(insert_src=[0], insert_dst=[1])
        with pytest.raises(GraphError, match="duplicate"):
            batch.validate_against(chain_graph())

    def test_non_canonical_base_rejected(self):
        dup = EdgeList(
            3,
            np.array([0, 0], dtype=np.uint32),
            np.array([1, 1], dtype=np.uint32),
        )
        batch = MutationBatch(insert_src=[1], insert_dst=[2])
        with pytest.raises(GraphError, match="deduplicate"):
            batch.validate_against(dup)

    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphError, match="length mismatch"):
            MutationBatch(insert_src=[0, 1], insert_dst=[2])

    def test_negative_add_nodes_rejected(self):
        with pytest.raises(GraphError, match=">= 0"):
            MutationBatch(add_nodes=-1)


class TestApply:
    def test_edge_delete_keeps_order(self):
        edges = chain_graph()
        batch = MutationBatch(delete_src=[2], delete_dst=[3])
        new_edges, effect = batch.apply(edges)
        assert new_edges.num_edges == edges.num_edges - 1
        # Survivors keep their relative order.
        keep = ~((edges.src == 2) & (edges.dst == 3))
        assert np.array_equal(new_edges.src, edges.src[keep])
        assert np.array_equal(new_edges.dst, edges.dst[keep])
        assert effect.deleted_count == 1
        assert set(effect.touched_nodes.tolist()) == {2, 3}

    def test_node_delete_drops_incident_edges(self):
        batch = MutationBatch(delete_nodes=[2])
        new_edges, effect = batch.apply(chain_graph())
        # Edges (1,2) and (2,3) are gone; vertex 2 stays in the ID space.
        assert new_edges.num_nodes == 6
        assert 2 not in new_edges.src
        assert 2 not in new_edges.dst
        assert effect.deleted_count == 2

    def test_inserts_append_at_tail_in_batch_order(self):
        batch = MutationBatch(
            insert_src=[5, 3], insert_dst=[0, 5]
        )
        new_edges, effect = batch.apply(chain_graph())
        assert new_edges.src[-2:].tolist() == [5, 3]
        assert new_edges.dst[-2:].tolist() == [0, 5]
        assert effect.inserted_count == 2

    def test_empty_batch_is_identity(self):
        edges = chain_graph()
        batch = MutationBatch()
        assert batch.is_empty
        new_edges, effect = batch.apply(edges)
        assert np.array_equal(new_edges.src, edges.src)
        assert np.array_equal(new_edges.dst, edges.dst)
        assert effect.deleted_count == 0
        assert effect.inserted_count == 0

    def test_weighted_apply_carries_weights(self):
        batch = MutationBatch(
            insert_src=[0], insert_dst=[3], insert_weight=[7],
            delete_src=[0], delete_dst=[1],
        )
        new_edges, _ = batch.apply(chain_graph(weighted=True))
        assert new_edges.weight is not None
        assert int(new_edges.weight[-1]) == 7
        assert new_edges.num_edges == 5


class TestHash:
    def test_deterministic(self):
        a = MutationBatch(insert_src=[1], insert_dst=[2], delete_nodes=[0])
        b = MutationBatch(insert_src=[1], insert_dst=[2], delete_nodes=[0])
        assert a.batch_hash() == b.batch_hash()

    def test_sensitive_to_every_field(self):
        base = MutationBatch(insert_src=[1], insert_dst=[2])
        variants = [
            MutationBatch(insert_src=[1], insert_dst=[3]),
            MutationBatch(insert_src=[2], insert_dst=[2]),
            MutationBatch(add_nodes=1, insert_src=[1], insert_dst=[2]),
            MutationBatch(
                insert_src=[1], insert_dst=[2], delete_nodes=[0]
            ),
            MutationBatch(
                insert_src=[1], insert_dst=[2], insert_weight=[1]
            ),
        ]
        hashes = {base.batch_hash()} | {v.batch_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_field_boundary_not_ambiguous(self):
        # Same concatenated bytes, different field split.
        a = MutationBatch(insert_src=[1, 2], insert_dst=[3, 4])
        b = MutationBatch(insert_src=[1], insert_dst=[3])
        assert a.batch_hash() != b.batch_hash()


class TestJson:
    def test_round_trip(self, tmp_path):
        batches = [
            MutationBatch(
                add_nodes=2,
                insert_src=[0, 6],
                insert_dst=[3, 0],
                delete_src=[1],
                delete_dst=[2],
                delete_nodes=[4],
            ),
            MutationBatch(),
            MutationBatch(
                insert_src=[1], insert_dst=[5], insert_weight=[9]
            ),
        ]
        path = tmp_path / "stream.json"
        save_batches(batches, path)
        loaded = load_batches(path)
        assert len(loaded) == len(batches)
        for original, restored in zip(batches, loaded):
            assert original.batch_hash() == restored.batch_hash()

    def test_bare_list_accepted(self, tmp_path):
        path = tmp_path / "stream.json"
        path.write_text('[{"insert": [[0, 1]]}]')
        loaded = load_batches(path)
        assert len(loaded) == 1
        assert loaded[0].num_inserts == 1

    def test_unknown_keys_rejected(self):
        with pytest.raises(GraphError, match="unknown batch keys"):
            MutationBatch.from_dict({"inserts": [[0, 1]]})

    def test_mixed_insert_widths_rejected(self):
        with pytest.raises(GraphError, match="mix weighted"):
            MutationBatch.from_dict({"insert": [[0, 1], [2, 3, 4]]})

    def test_malformed_stream_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"wrong": true}')
        with pytest.raises(GraphError, match="expected a list"):
            load_batches(path)


class TestRandomBatch:
    @pytest.mark.parametrize("weighted", [False, True])
    def test_random_batch_is_valid(self, weighted):
        rng = np.random.default_rng(7)
        n = 64
        src = rng.integers(0, n, size=300, dtype=np.uint32)
        dst = rng.integers(0, n, size=300, dtype=np.uint32)
        weight = (
            rng.integers(1, 50, size=300, dtype=np.uint32)
            if weighted
            else None
        )
        edges = EdgeList(n, src, dst, weight).deduplicate()
        for _ in range(5):
            batch = random_mutation_batch(
                edges,
                rng,
                delete_fraction=0.05,
                insert_fraction=0.05,
                add_nodes=2,
                delete_node_count=1,
            )
            edges, _ = batch.apply(edges)  # apply() validates
        assert edges.num_nodes == n + 10
