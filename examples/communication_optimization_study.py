#!/usr/bin/env python
"""The Figure 10 experiment in miniature: what each optimization buys.

Runs pagerank at the four optimization levels of §5.6:

* UNOPT — gather-apply-scatter with (global-ID, value) messages;
* OSI   — + structural invariants (restricted reduce/broadcast sets);
* OTI   — + temporal invariance (memoized addresses, adaptive metadata);
* OSTI  — both (standard Gluon).

Shows execution time split into computation and communication, the exact
communication volume, and the number of address translations eliminated.

Run:  python examples/communication_optimization_study.py
"""

from repro import OptimizationLevel, generators, run_app
from repro.analysis.tables import format_table
from repro.network.cost_model import LCI_PARAMETERS, scaled_fabric


def main() -> None:
    edges = generators.rmat(scale=13, edge_factor=16, seed=7)
    print(f"input: {edges.num_nodes} nodes, {edges.num_edges} edges; "
          "pagerank on 16 hosts (CVC)\n")

    rows = []
    times = {}
    for level in OptimizationLevel:
        result = run_app(
            "d-galois",
            "pr",
            edges,
            num_hosts=16,
            policy="cvc",
            level=level,
            network=scaled_fabric(LCI_PARAMETERS),
        )
        times[level] = result.total_time
        rows.append(
            {
                "level": level.value,
                "time_ms": round(result.total_time * 1e3, 2),
                "comp_ms": round(result.computation_time * 1e3, 2),
                "comm_ms": round(result.communication_time * 1e3, 2),
                "comm_MB": round(result.communication_volume / 1e6, 3),
                "translations": result.translations,
            }
        )
    print(format_table(rows, "pagerank under each optimization level"))
    speedup = times[OptimizationLevel.UNOPT] / times[OptimizationLevel.OSTI]
    print(f"OSTI speedup over UNOPT: {speedup:.2f}x "
          "(the paper reports ~2.6x geomean across its panels)")


if __name__ == "__main__":
    main()
