#!/usr/bin/env python
"""Mid-run repartitioning (§4.1's footnote).

Gluon's memoization assumes the partition never changes — and when it
does, "memoization can be done soon after partitioning to amortize the
communication costs until the next re-partitioning."  This example starts
pagerank under one policy (OEC), pauses after a few rounds, re-partitions
to CVC — migrating all state and re-running the memoization exchange —
and resumes to convergence.

The final ranks match the sequential oracle exactly, demonstrating that
state migration plus re-memoization preserves correctness while the
communication profile (replication factor, per-round bytes) switches to
the new policy's.

Run:  python examples/repartitioning.py
"""

import numpy as np

from repro.apps import make_app
from repro.engines import make_engine
from repro.graph.generators import web_like
from repro.partition import make_partitioner
from repro.runtime.executor import DistributedExecutor
from repro.systems import prepare_input
from repro.verify import verify_run

HOSTS = 8
SWITCH_AFTER = 5


def main() -> None:
    edges = web_like(scale=12, seed=3)
    prep = prepare_input("pr", edges)
    print(f"input: {edges.num_nodes} nodes, {edges.num_edges} edges "
          f"(in-skewed web graph); pagerank on {HOSTS} hosts\n")

    partitioned = make_partitioner("oec").partition(prep.edges, HOSTS)
    executor = DistributedExecutor(
        partitioned, make_engine("galois"), make_app("pr"), prep.ctx
    )
    executor.run(max_rounds=SWITCH_AFTER)
    before = executor._result.rounds[-1]
    print(f"round {SWITCH_AFTER} on OEC : "
          f"{before.comm_bytes/1e3:8.1f} KB shipped, "
          f"replication {executor.partitioned.replication_factor():.2f}")

    executor.repartition(make_partitioner("cvc").partition(prep.edges, HOSTS))
    result = executor.run()
    after = result.rounds[SWITCH_AFTER]
    print(f"round {SWITCH_AFTER + 1} on CVC : "
          f"{after.comm_bytes/1e3:8.1f} KB shipped, "
          f"replication {executor.partitioned.replication_factor():.2f}")
    print(f"\nconverged in {result.num_rounds} rounds total "
          f"(construction bytes include both memoization exchanges: "
          f"{result.construction_bytes/1e3:.1f} KB)")

    result.executor = executor  # verify_run reads it from the result
    assert verify_run(result, edges).matched
    print("final ranks verified against the sequential oracle.")


if __name__ == "__main__":
    main()
