#!/usr/bin/env python
"""Tour of the partitioning strategies (§3 of the Gluon paper).

Runs sssp on the same graph under OEC, IEC, CVC, and HVC partitions and
shows what the paper's §3.2 predicts:

* the answers are identical — applications are policy-oblivious;
* OEC synchronizes with *reduce only*, IEC with *broadcast only*, and the
  vertex cuts use both;
* replication factor and communication volume differ per policy, which is
  why Gluon exposes the policy as a runtime flag (auto-tuning, §3.3).

Run:  python examples/partition_policy_tour.py
"""

import numpy as np

from repro import generators, run_app
from repro.analysis.tables import format_table

POLICIES = ("oec", "iec", "cvc", "hvc")


def main() -> None:
    edges = generators.rmat(scale=13, edge_factor=16, seed=42)
    print(f"input: {edges.num_nodes} nodes, {edges.num_edges} edges; "
          "sssp on 16 hosts\n")

    rows = []
    baseline = None
    for policy in POLICIES:
        result = run_app(
            "d-galois", "sssp", edges, num_hosts=16, policy=policy
        )
        dist = result.executor.gather_result("dist")
        if baseline is None:
            baseline = dist
        assert np.array_equal(dist, baseline), "policies must agree!"
        rows.append(
            {
                "policy": policy,
                "replication": round(result.replication_factor, 2),
                "comm_KB": round(result.communication_volume / 1e3, 1),
                "messages": result.communication_messages,
                "rounds": result.num_rounds,
                "time_ms": round(result.total_time * 1e3, 3),
            }
        )
    print(format_table(rows, "sssp under each partitioning policy"))
    print("all four policies computed identical shortest-path distances.")
    best = min(rows, key=lambda r: r["time_ms"])
    print(f"best policy for this (app, input, host count): {best['policy']}")


if __name__ == "__main__":
    main()
