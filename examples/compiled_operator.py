#!/usr/bin/env python
"""The Gluon sync compiler in action (§3.3).

The paper's applications never write communication code: a compiler
extracts the synchronized fields, reductions, and sync points from the
operator and generates everything else.  Here the whole of sssp is six
declarative lines; the compiler reports the per-strategy synchronization
plan it inferred, and the generated program runs on any engine and policy.

Run:  python examples/compiled_operator.py
"""

import numpy as np

from repro import generators
from repro.compiler import compile_operator
from repro.compiler.analysis import data_flow_description
from repro.compiler.spec import FieldDecl, Init, OperatorSpec
from repro.engines import make_engine
from repro.partition import make_partitioner
from repro.partition.strategy import OperatorClass
from repro.runtime.executor import DistributedExecutor
from repro.systems import prepare_input, run_app


def main() -> None:
    # The entire application, declaratively:
    spec = OperatorSpec(
        name="sssp",
        style=OperatorClass.PUSH,
        field=FieldDecl(
            "dist", np.uint32, reduce="min",
            init=Init.infinity_except_source(),
        ),
        edge_kernel=lambda source_values, weights: source_values + weights,
        source_guard=lambda values: values != np.iinfo(np.uint32).max,
        needs_weights=True,
    )

    # What the compiler's static analysis derived (§3.2's table):
    print(data_flow_description(spec))
    print()

    program = compile_operator(spec)
    edges = generators.rmat(scale=12, edge_factor=16, seed=21)
    prep = prepare_input("sssp", edges)

    # The generated program runs on every engine and policy unchanged.
    reference = None
    for engine_name, policy in (
        ("galois", "oec"),
        ("ligra", "cvc"),
        ("irgl", "hvc"),
    ):
        partitioned = make_partitioner(policy).partition(prep.edges, 8)
        executor = DistributedExecutor(
            partitioned, make_engine(engine_name), program, prep.ctx
        )
        result = executor.run()
        dist = executor.gather_result("dist")
        if reference is None:
            reference = dist
        assert np.array_equal(dist, reference)
        print(f"  {engine_name:>6} + {policy}: {result.num_rounds} rounds, "
              f"{result.communication_volume/1e3:.1f} KB -> identical result")

    # And it matches the hand-written sssp application byte for byte.
    handwritten = run_app("d-ligra", "sssp", edges, num_hosts=8, policy="cvc")
    assert np.array_equal(
        handwritten.executor.gather_result("dist"), reference
    )
    print("\ncompiled sssp == hand-written sssp; zero communication code "
          "was written.")


if __name__ == "__main__":
    main()
