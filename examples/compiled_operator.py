#!/usr/bin/env python
"""The Gluon sync compiler in action (§3.3).

The paper's applications never write communication code: a compiler
extracts the synchronized fields, reductions, and sync points from the
program and generates everything else.  Here the whole of sssp is one
declarative :class:`ProgramSpec` — a field, a phase, a sync wire.  The
compiler *derives* the sync endpoints from the phase's access sets,
renders real Python source for the vertex program, and the generated
code runs on any engine and policy, byte-for-byte equal to the
handwritten application.

Run:  python examples/compiled_operator.py
"""

import numpy as np

from repro import generators
from repro.compiler import (
    FieldDecl,
    PhaseSpec,
    ProgramSpec,
    SyncDecl,
    compile_program,
    describe_program,
    verify_compiled,
)
from repro.engines import make_engine
from repro.partition import make_partitioner
from repro.runtime.executor import DistributedExecutor
from repro.systems import prepare_input, run_app

_INFINITY = np.uint32(np.iinfo(np.uint32).max)


def main() -> None:
    # The entire application, declaratively: one uint32 min-field, one
    # weighted relaxation phase, one sync wire.  No endpoints anywhere —
    # they are derived from what the kernel reads and writes.
    spec = ProgramSpec(
        name="sssp-demo",
        fields=(
            FieldDecl(
                "dist", np.uint32, reduce="min",
                init="np.full(n, INFINITY, dtype=np.uint32)",
                source_value="0",
            ),
        ),
        phases=(
            PhaseSpec(
                name="relax",
                kind="frontier_push",
                target="dist",
                kernel=(
                    "np.minimum({src.dist}.astype(np.int64) + {w}, "
                    "int(INFINITY)).astype(np.uint32)"
                ),
                guard="{dist} != INFINITY",
                uses_weights=True,
            ),
        ),
        sync=(SyncDecl(field="dist"),),
        constants=(("INFINITY", _INFINITY),),
        frontier="source",
        needs_weights=True,
    )

    # What the compiler's static analysis derived: the phase pipeline,
    # the per-wire endpoints, and §3.2's per-strategy sync plan.
    print(describe_program(spec))
    print()

    # compile_program renders real Python source and executes it as a
    # module — inspectable, lintable, debuggable.
    program = compile_program(spec)
    source = type(program).generated_source
    print(f"generated {len(source.splitlines())} lines; excerpt:")
    for line in source.splitlines():
        if "np.minimum.at" in line or "FieldSpec(" in line:
            print(f"    {line.strip()}")
    print()

    # The same GL001-GL011 lint pass the handwritten apps go through
    # verifies the generated code.
    findings = verify_compiled(type(program))
    errors = [f for f in findings if f.severity == "error"]
    assert not errors, errors
    print(f"lint over the generated code: {len(errors)} error(s)")
    print()

    edges = generators.rmat(scale=12, edge_factor=16, seed=21)
    prep = prepare_input("sssp", edges)

    # The generated program runs on every engine and policy unchanged.
    reference = None
    for engine_name, policy in (
        ("galois", "oec"),
        ("ligra", "cvc"),
        ("irgl", "hvc"),
    ):
        partitioned = make_partitioner(policy).partition(prep.edges, 8)
        executor = DistributedExecutor(
            partitioned, make_engine(engine_name), program, prep.ctx
        )
        result = executor.run()
        dist = executor.gather_result("dist")
        if reference is None:
            reference = dist
        assert np.array_equal(dist, reference)
        print(f"  {engine_name:>6} + {policy}: {result.num_rounds} rounds, "
              f"{result.communication_volume/1e3:.1f} KB -> identical result")

    # And it matches the hand-written sssp application byte for byte.
    handwritten = run_app("d-ligra", "sssp", edges, num_hosts=8, policy="cvc")
    assert np.array_equal(
        handwritten.executor.gather_result("dist"), reference
    )

    # Every migrated app is also registered as <app>@compiled — the
    # registry twin runs through run_app/verify/CLI like any other app.
    registered = run_app(
        "d-ligra", "sssp@compiled", edges, num_hosts=8, policy="cvc"
    )
    assert np.array_equal(
        registered.executor.gather_result("dist"), reference
    )
    print("\ncompiled sssp == hand-written sssp; zero communication code "
          "was written.")


if __name__ == "__main__":
    main()
