#!/usr/bin/env python
"""Writing a new vertex program against the Gluon API (§3.3).

Implements *widest path* (maximum-bottleneck path) from a source: the
label of a node is the largest bottleneck capacity over all paths from
the source, where a path's bottleneck is its minimum edge weight.

The point of the exercise: a new application only declares

* its label array and initialization,
* a push step (pure local numpy), and
* one FieldSpec — here a MAX reduction —

and it immediately runs on every engine, partitioning policy, and
optimization level.  No communication code is written.

Run:  python examples/custom_algorithm.py
"""

from typing import Dict, List

import numpy as np

from repro import generators
from repro.apps.base import (
    AppContext,
    StepOutcome,
    VertexProgram,
    gather_frontier_edges,
)
from repro.core.sync_structures import MAX, FieldSpec
from repro.engines import make_engine
from repro.partition import make_partitioner
from repro.partition.base import LocalPartition
from repro.partition.strategy import OperatorClass
from repro.runtime.executor import DistributedExecutor
from repro.runtime.timing import WorkStats
from repro.systems import prepare_input
from repro.utils.rng import make_rng


class WidestPath(VertexProgram):
    """Push-style maximum-bottleneck-path with a MAX reduction."""

    name = "widest-path"
    needs_weights = True
    operator_class = OperatorClass.PUSH

    def make_state(self, part: LocalPartition, ctx: AppContext) -> Dict:
        capacity = np.zeros(part.num_nodes, dtype=np.uint32)
        if part.has_proxy(ctx.source):
            # The source reaches itself with unbounded capacity.
            capacity[part.to_local(ctx.source)] = np.iinfo(np.uint32).max
        return {"capacity": capacity}

    def make_fields(self, part: LocalPartition, state: Dict) -> List[FieldSpec]:
        return [
            FieldSpec(name="capacity", values=state["capacity"], reduce_op=MAX)
        ]

    def initial_frontier(self, part, state, ctx):
        frontier = np.zeros(part.num_nodes, dtype=bool)
        if part.has_proxy(ctx.source):
            frontier[part.to_local(ctx.source)] = True
        return frontier

    def step(self, part, state, frontier, direction="push"):
        capacity = state["capacity"]
        usable = frontier & (capacity > 0)
        src_rep, dst, positions = gather_frontier_edges(part.graph, usable)
        updated = np.zeros(part.num_nodes, dtype=bool)
        work = WorkStats(len(dst), int(usable.sum()))
        if len(dst) == 0:
            return StepOutcome(updated=updated, work=work)
        weights = part.graph.weights[positions].astype(np.uint32)
        candidate = np.minimum(capacity[src_rep], weights)
        before = capacity.copy()
        np.maximum.at(capacity, dst, candidate)
        updated = capacity != before
        return StepOutcome(updated=updated, work=work)


def reference_widest_path(edges, source):
    """Oracle: Dijkstra-style max-bottleneck search."""
    import heapq

    capacity = np.zeros(edges.num_nodes, dtype=np.uint64)
    capacity[source] = np.iinfo(np.uint32).max
    adjacency = [[] for _ in range(edges.num_nodes)]
    for s, d, w in zip(
        edges.src.tolist(), edges.dst.tolist(), edges.weight.tolist()
    ):
        adjacency[s].append((d, w))
    heap = [(-int(capacity[source]), source)]
    while heap:
        neg_cap, node = heapq.heappop(heap)
        if -neg_cap < capacity[node]:
            continue
        for neighbor, weight in adjacency[node]:
            through = min(-neg_cap, weight)
            if through > capacity[neighbor]:
                capacity[neighbor] = through
                heapq.heappush(heap, (-through, neighbor))
    return capacity


def main() -> None:
    raw = generators.rmat(scale=12, edge_factor=8, seed=9)
    edges = raw.with_random_weights(make_rng(5), low=1, high=50)
    prep = prepare_input("bfs", edges)  # reuse source selection
    source = prep.ctx.source
    print(f"input: {edges.num_nodes} nodes, {edges.num_edges} edges, "
          f"source {source}\n")

    app = WidestPath()
    ctx = AppContext(num_global_nodes=edges.num_nodes, source=source)
    expected = reference_widest_path(edges, source)

    for policy in ("oec", "cvc", "hvc"):
        partitioned = make_partitioner(policy).partition(edges, 8)
        executor = DistributedExecutor(
            partitioned, make_engine("galois"), app, ctx
        )
        result = executor.run()
        got = executor.gather_result("capacity").astype(np.uint64)
        assert np.array_equal(got, expected), f"{policy} diverged!"
        print(f"  {policy}: {result.num_rounds} rounds, "
              f"{result.communication_volume/1e3:.1f} KB shipped -> correct")
    print("\nwidest-path matches the oracle under every policy; the only "
          "Gluon-specific code was one FieldSpec with a MAX reduction.")


if __name__ == "__main__":
    main()
