#!/usr/bin/env python
"""Quickstart: distributed BFS with Gluon in five lines.

Generates a scale-free RMAT graph, partitions it with the Cartesian
vertex cut across 8 simulated hosts, runs D-Galois bfs on it, and checks
the distributed answer against a single-host run.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import generators, run_app, verify_run


def main() -> None:
    # 1. An input graph: 2^14 nodes, graph500 RMAT parameters.
    edges = generators.rmat(scale=14, edge_factor=16, seed=1)
    print(f"input: {edges.num_nodes} nodes, {edges.num_edges} edges")

    # 2. Distributed BFS: D-Galois = Galois engine + the Gluon substrate.
    #    The partitioning policy is a runtime choice (here: CVC).
    result = run_app("d-galois", "bfs", edges, num_hosts=8, policy="cvc")
    print("\ndistributed run:")
    for key, value in result.summary().items():
        print(f"  {key:>10}: {value}")
    print(f"  {'replication':>10}: {result.replication_factor:.2f}")

    # 3. Verify two ways: against a single-host run, and against the
    #    library's sequential oracle (repro.verify_run).
    single = run_app("d-galois", "bfs", edges, num_hosts=1)
    distributed_dist = result.executor.gather_result("dist")
    single_dist = single.executor.gather_result("dist")
    assert np.array_equal(distributed_dist, single_dist)
    outcome = verify_run(result, edges)
    assert outcome.matched
    reached = int((distributed_dist != np.iinfo(np.uint32).max).sum())
    print(f"\nverified: 8-host == 1-host == sequential oracle "
          f"({reached} nodes reached)")


if __name__ == "__main__":
    main()
