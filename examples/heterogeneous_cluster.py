#!/usr/bin/env python
"""Heterogeneity tour: one application, five systems (Figure 1's promise).

Gluon's architecture decouples the compute engine from communication, so
the *same* pagerank runs on:

* D-Galois  — asynchronous-within-host CPU engine + Gluon,
* D-Ligra   — level-synchronous CPU engine + Gluon,
* D-IrGL    — bulk-synchronous GPU engine + Gluon (first multi-GPU
  distributed graph analytics system),
* Gemini    — the monolithic CPU baseline (edge cut only, gid messages),
* Gunrock   — the single-node multi-GPU baseline (4 GPUs max).

All five produce identical ranks; their performance profiles differ the
way §5.3 reports.

Run:  python examples/heterogeneous_cluster.py
"""

import numpy as np

from repro import generators, run_app
from repro.analysis.experiments import bench_network
from repro.analysis.tables import format_table

CONFIGS = (
    ("d-galois", 16, "cvc"),
    ("d-ligra", 16, "cvc"),
    ("d-irgl", 16, "cvc"),
    # Figure 1's mixed cluster: alternating CPU (Galois) and GPU (IrGL)
    # hosts behind the same Gluon substrate.
    ("d-hybrid", 16, "cvc"),
    ("gemini", 16, None),
    ("gunrock", 4, None),
)


def main() -> None:
    edges = generators.rmat(scale=13, edge_factor=16, seed=3)
    print(f"input: {edges.num_nodes} nodes, {edges.num_edges} edges; "
          "pagerank everywhere\n")

    rows = []
    baseline = None
    for system, hosts, policy in CONFIGS:
        result = run_app(
            system,
            "pr",
            edges,
            num_hosts=hosts,
            policy=policy,
            network=bench_network(system, hosts),
        )
        rank = np.round(result.executor.gather_result("rank"), 9)
        if baseline is None:
            baseline = rank
        assert np.array_equal(rank, baseline), f"{system} diverged!"
        rows.append(
            {
                "system": system,
                "hosts/GPUs": hosts,
                "policy": result.policy,
                "rounds": result.num_rounds,
                "time_ms": round(result.total_time * 1e3, 2),
                "comm_MB": round(result.communication_volume / 1e6, 3),
                "replication": round(result.replication_factor, 2),
            }
        )
    print(format_table(rows, "pagerank across heterogeneous systems"))
    print("all five systems computed identical pageranks.")


if __name__ == "__main__":
    main()
