"""Setup shim: enables editable installs on environments without `wheel`.

All project metadata lives in pyproject.toml; this file exists so that
`pip install -e . --no-use-pep517` (and plain `python setup.py develop`)
work on minimal offline toolchains.
"""

from setuptools import setup

setup()
